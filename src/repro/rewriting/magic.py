"""Magic Sets rewriting — the selection-pushing counterpart.

The paper's framing (sections 1 and 3): pushing *selections* into
recursion was solved by Magic Sets / Counting, and those rewritings are
*orthogonal* to the projection-pushing optimizations — "the trimmed
adorned program can be further transformed using rewriting algorithms
such as Magic Sets or Counting".  This module implements the standard
Magic Sets rewriting (Bancilhon et al. 1986 style, full left-to-right
sideways information passing) so the benchmark suite can measure the
composition claim.

The bound/free (``b``/``f``) adornments used here are the classical
ones and deliberately distinct from the paper's needed/don't-care
(``n``/``d``) adornments — the paper stresses the difference (footnote
in section 2).  Mangled names use the same ``@`` convention but with
``b``/``f`` suffixes, which :func:`repro.core.adornment.split_adorned`
does not mistake for existential adornments.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..datalog.ast import Atom, Program, Rule
from ..datalog.errors import TransformError
from ..datalog.terms import Constant, Variable

__all__ = ["magic_sets", "bf_adornment", "MagicResult"]


def bf_adornment(atom: Atom, bound_vars: frozenset[Variable]) -> str:
    """The bound/free adornment of *atom* given already-bound variables."""
    return "".join(
        "b" if isinstance(a, Constant) or a in bound_vars else "f" for a in atom.args
    )


def _bf_name(predicate: str, adornment: str) -> str:
    return f"{predicate}@{adornment}"


def _magic_name(predicate: str, adornment: str) -> str:
    return f"magic_{predicate}@{adornment}"


def _bound_args(atom: Atom, adornment: str) -> tuple:
    return tuple(a for a, c in zip(atom.args, adornment) if c == "b")


@dataclass(frozen=True)
class MagicResult:
    """The rewritten program plus bookkeeping for tests/benchmarks."""

    program: Program
    #: adorned predicate name of the query
    query_predicate: str
    #: number of magic rules generated (seed fact included)
    magic_rules: int

    @property
    def changed(self) -> bool:
        return self.magic_rules > 0


def magic_sets(program: Program) -> MagicResult:
    """Apply the Magic Sets rewriting for the program's query.

    The query must bind at least one argument to a constant; with no
    bindings there is nothing for magic to restrict and the program is
    returned unchanged (``magic_rules == 0``).

    The rewriting:

    1. adorn derived predicates with ``b``/``f`` from the query using
       full left-to-right SIPS (a body literal, once evaluated, binds
       all its variables);
    2. guard every adorned rule with a magic literal on its head's
       bound arguments;
    3. for each derived body literal, emit a magic rule passing the
       bindings available at that point;
    4. seed the query's magic predicate with the query constants.
    """
    if program.query is None:
        raise TransformError("magic sets requires a query")
    if program.has_negation():
        raise TransformError("magic sets is implemented for negation-free programs")
    from ..datalog.builtins import has_builtins

    if has_builtins(program):
        raise TransformError("magic sets is implemented for built-in-free programs")
    program.validate()
    query = program.query
    idb = program.idb_predicates()
    if query.predicate not in idb:
        raise TransformError("query predicate has no rules; nothing to rewrite")

    query_ad = "".join("b" if isinstance(a, Constant) else "f" for a in query.args)
    if "b" not in query_ad:
        return MagicResult(program, query.predicate, 0)

    new_rules: list[Rule] = []
    magic_count = 0
    worklist: list[tuple[str, str]] = [(query.predicate, query_ad)]
    done: set[tuple[str, str]] = set()

    while worklist:
        pred, ad = worklist.pop()
        if (pred, ad) in done:
            continue
        done.add((pred, ad))
        head_name = _bf_name(pred, ad)
        magic_head = _magic_name(pred, ad)
        for rule in program.rules_for(pred):
            bound: set[Variable] = {
                a
                for a, c in zip(rule.head.args, ad)
                if c == "b" and isinstance(a, Variable)
            }
            magic_guard = Atom(magic_head, _bound_args(rule.head, ad))
            new_body: list[Atom] = [magic_guard]
            for literal in rule.body:
                lit_ad = bf_adornment(literal, frozenset(bound))
                if literal.predicate in idb:
                    if "b" in lit_ad:
                        # magic rule: pass the bindings available so far
                        magic_count += 1
                        new_rules.append(
                            Rule(
                                Atom(
                                    _magic_name(literal.predicate, lit_ad),
                                    _bound_args(literal, lit_ad),
                                ),
                                tuple(new_body),
                            )
                        )
                        worklist.append((literal.predicate, lit_ad))
                        new_body.append(
                            Atom(_bf_name(literal.predicate, lit_ad), literal.args)
                        )
                    else:
                        # No bindings reach this literal: use the
                        # unrestricted original predicate (no magic).
                        worklist.append((literal.predicate, lit_ad))
                        new_body.append(
                            Atom(_bf_name(literal.predicate, lit_ad), literal.args)
                        )
                else:
                    new_body.append(literal)
                bound.update(v for v in literal.variables())
            new_rules.append(Rule(Atom(head_name, rule.head.args), tuple(new_body)))

    # Rules for all-free adorned versions carry a nullary magic guard
    # that is never seeded; strip guards of predicates with no 'b'.
    def strip_unseeded(rule: Rule) -> Rule:
        body = tuple(
            a
            for a in rule.body
            if not (a.predicate.startswith("magic_") and a.arity == 0)
        )
        return Rule(rule.head, body)

    new_rules = [strip_unseeded(r) for r in new_rules]
    # drop magic rules that became guards for nothing (empty-bodied
    # non-ground heads cannot arise: seed below is the only fact rule)
    new_rules = [r for r in new_rules if r.body or r.head.is_ground()]

    seed = Rule(
        Atom(
            _magic_name(query.predicate, query_ad),
            tuple(a for a in query.args if isinstance(a, Constant)),
        ),
        (),
    )
    magic_count += 1
    new_rules.append(seed)

    new_query = Atom(_bf_name(query.predicate, query_ad), query.args)
    return MagicResult(
        Program(tuple(new_rules), new_query), new_query.predicate, magic_count
    )
