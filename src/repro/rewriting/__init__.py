"""Orthogonal rewritings: Magic Sets and Counting (selection pushing).

The paper positions its projection-pushing framework as complementary
to the selection-pushing rewritings ("Magic Sets, and Counting",
sections 1 and 3); this package provides both so benchmarks can compose
them with the existential optimizer.  Magic Sets is general; Counting
is the classic restricted variant for linear recursion over acyclic
data (see :mod:`repro.rewriting.counting` for the exact scope).
"""

from .counting import CountingResult, counting, counting_support, evaluate_counting
from .magic import MagicResult, bf_adornment, magic_sets

__all__ = [
    "CountingResult",
    "counting",
    "counting_support",
    "evaluate_counting",
    "MagicResult",
    "bf_adornment",
    "magic_sets",
]
