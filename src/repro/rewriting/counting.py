"""The Counting rewriting — the second selection-pushing method the
paper names (sections 1 and 3: "rewriting algorithms such as Magic
Sets or Counting").

Counting specializes Magic Sets for *linear* recursions with a bound
argument: instead of remembering **which** bindings reach the recursion
(the magic set), it remembers only **how many** recursion levels were
descended, then replays that count on the way out.  For the classic
same-generation shape::

    p(X, Y) :- up(X, U), p(U, V), down(V, Y).
    p(X, Y) :- flat(X, Y).
    ?- p(c, Y).

the rewriting produces::

    cnt(0, c).
    cnt(J, U)  :- cnt(I, X), up(X, U), succ(I, J).
    ans(I, Y)  :- cnt(I, X), flat(X, Y).
    ans(I, Y)  :- ans(J, V), down(V, Y), succ(I, J).
    query(Y)   :- ans(0, Y).

**Scope and restrictions.**  Pure Datalog has no arithmetic, so level
counters use a reserved binary EDB relation ``succ`` (``succ(i, i+1)``)
that :func:`counting_support` generates up to a depth bound; and
counting is classically sound only when the ``up`` part of the data is
acyclic (on cyclic data the level count diverges — here the bounded
``succ`` relation forces termination but may then lose answers).  The
rewriting therefore *requires* the caller to pick a bound no smaller
than the longest ``up``-path; :func:`evaluate_counting` derives a safe
bound from the database.  These restrictions are the textbook ones —
counting trades Magic Sets' generality for a smaller memo.

Accepted input shape: one linear recursive rule
``p(X, Y) :- up-literal, p(U, V), down-literal`` (each side one base
literal linking the bound/free argument through the recursion), any
number of non-recursive exit rules over base predicates, and a query
binding the first argument.  Everything else raises
:class:`TransformError` — use Magic Sets instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.ast import Atom, Program, Rule
from ..datalog.database import Database
from ..datalog.errors import TransformError
from ..datalog.terms import Constant, Variable
from ..engine.evaluator import EngineOptions, EvalResult, evaluate

__all__ = ["counting", "counting_support", "evaluate_counting", "CountingResult"]

SUCC = "succ"


@dataclass(frozen=True)
class CountingResult:
    """The counting-rewritten program plus its reserved names."""

    program: Program
    count_predicate: str
    answer_predicate: str
    #: the EDB predicate holding the level successor relation
    succ_predicate: str


def _split_recursive_rule(rule: Rule, pred: str):
    """Decompose ``p(X,Y) :- up(X,U), p(U,V), down(V,Y)`` (allowing the
    literals in any order); returns (up_literal, down_literal)."""
    rec = [i for i, a in enumerate(rule.body) if a.predicate == pred]
    if len(rec) != 1:
        raise TransformError("counting requires exactly one recursive literal")
    rec_atom = rule.body[rec[0]]
    others = [a for i, a in enumerate(rule.body) if i != rec[0]]
    if len(others) != 2:
        raise TransformError(
            "counting requires exactly one literal on each side of the recursion"
        )
    head = rule.head
    if head.arity != 2 or rec_atom.arity != 2:
        raise TransformError("counting requires a binary recursive predicate")
    x, y = head.args
    u, v = rec_atom.args
    if not all(isinstance(t, Variable) for t in (x, y, u, v)):
        raise TransformError("counting requires variable arguments")
    if len({x, y, u, v}) != 4:
        raise TransformError("counting requires distinct chain variables")

    def links(atom: Atom, a: Variable, b: Variable) -> bool:
        return set(atom.variables()) == {a, b}

    up = next((a for a in others if links(a, x, u)), None)
    down = next((a for a in others if links(a, v, y)), None)
    if up is None or down is None or up is down:
        raise TransformError(
            "counting requires an up-literal linking the bound argument and a "
            "down-literal linking the free argument"
        )
    return x, y, u, v, up, down


def counting(program: Program) -> CountingResult:
    """Apply the counting rewriting to a bound-first-argument query
    over a linear binary recursion (shape documented above)."""
    if program.query is None:
        raise TransformError("counting requires a query")
    if program.has_negation():
        raise TransformError("counting is implemented for negation-free programs")
    from ..datalog.builtins import has_builtins

    if has_builtins(program):
        raise TransformError("counting is implemented for built-in-free programs")
    program.validate()
    query = program.query
    pred = query.predicate
    if pred in (SUCC,):
        raise TransformError(f"{SUCC!r} is reserved by the counting rewriting")
    if query.arity != 2 or not isinstance(query.args[0], Constant):
        raise TransformError(
            "counting requires a binary query with a bound first argument"
        )
    rules = program.rules_for(pred)
    if not rules or rules != program.rules:
        extra = [r for r in program.rules if r.head.predicate != pred]
        if extra:
            raise TransformError(
                "counting handles single-predicate programs; other rules present"
            )
    recursive = [r for r in rules if any(a.predicate == pred for a in r.body)]
    exits = [r for r in rules if r not in recursive]
    if len(recursive) != 1 or not exits:
        raise TransformError(
            "counting requires exactly one recursive rule and at least one exit rule"
        )
    for r in exits:
        if any(a.predicate == pred for a in r.body):
            raise TransformError("exit rules must be non-recursive")

    # Rename the source rules apart from the reserved level variables.
    rec_rule = recursive[0].rename_apart("_c")
    exits = [r.rename_apart("_c") for r in exits]
    x, y, u, v, up, down = _split_recursive_rule(rec_rule, pred)

    cnt = f"cnt_{pred}"
    ans = f"ans_{pred}"
    out = f"count_query_{pred}"
    i, j = Variable("I"), Variable("J")
    zero = Constant(0)
    c = query.args[0]

    new_rules: list[Rule] = [
        Rule(Atom(cnt, (zero, c)), ()),
        Rule(
            Atom(cnt, (j, u)),
            (Atom(cnt, (i, x)), up, Atom(SUCC, (i, j))),
        ),
    ]
    for r in exits:
        ex, ey = r.head.args
        new_rules.append(Rule(Atom(ans, (i, ey)), (Atom(cnt, (i, ex)), *r.body)))
    new_rules.append(
        Rule(
            Atom(ans, (i, y)),
            (Atom(ans, (j, v)), down, Atom(SUCC, (i, j))),
        )
    )
    new_rules.append(Rule(Atom(out, (Variable("Y"),)), (Atom(ans, (zero, Variable("Y"))),)))

    rewritten = Program(tuple(new_rules), Atom(out, (Variable("Y"),)))
    return CountingResult(rewritten, cnt, ans, SUCC)


def counting_support(max_depth: int) -> Database:
    """The ``succ`` relation for levels ``0..max_depth``."""
    db = Database()
    rel = db.ensure(SUCC, 2)
    rel.update((i, i + 1) for i in range(max_depth))
    return db


def evaluate_counting(
    result: CountingResult,
    db: Database,
    max_depth: int | None = None,
    options: EngineOptions | None = None,
) -> EvalResult:
    """Evaluate a counting-rewritten program, supplying ``succ``.

    *max_depth* defaults to the number of distinct constants in the
    database — an upper bound on the longest simple ``up``-path, hence
    safe for acyclic data (the soundness domain of counting).
    """
    if max_depth is None:
        max_depth = max(len(db.active_domain()), 1)
    merged = db.merged_with(counting_support(max_depth))
    return evaluate(result.program, merged, options or EngineOptions())
