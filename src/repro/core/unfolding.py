"""Unfolding: splice single-rule non-recursive predicates into their
consumers.

Section 6 of the paper invites "more general transformations that
possibly add literals to (or delete literals from) the rule bodies".
Unfolding is the classic such transformation: when a derived predicate
``p`` is defined by exactly one non-recursive rule, every occurrence of
``p`` in other rule bodies can be replaced by that rule's body (after
unifying the occurrence with the head), making ``p``'s materialization
unnecessary.  In the pipeline it runs after rule deletion, where it
removes the residual cost of adornment forking a predicate into
several query forms (e.g. a surviving ``p@nn`` whose only rule is a
copy of a base relation).

Guards (all conservative; violating occurrences leave the program
unchanged):

- ``p`` has exactly one defining rule, and ``p`` is not reachable from
  that rule's own body (no direct or mutual recursion);
- ``p`` is not the query predicate (query-level projection inlining is
  the pipeline's separate, final step);
- ``p`` never occurs under ``not`` (¬p is not ¬body);
- the defining body has at most *max_body* relational literals
  (unfolding duplicates the body per consumer — small bodies only).

The transformation is answer-preserving: the consuming rule's new body
is satisfiable by exactly the instantiations that previously satisfied
it through a ``p`` fact, because ``p``'s single rule is the only way a
``p`` fact arises.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.terms import FreshVariables
from ..datalog.unify import unify
from .adornment import AdornedLiteral, AdornedProgram, AdornedRule

__all__ = ["UnfoldReport", "unfold_nonrecursive"]


@dataclass(frozen=True)
class UnfoldReport:
    """The unfolded program plus the predicates that were eliminated."""

    program: AdornedProgram
    unfolded: tuple[str, ...]


def _reaches(program: AdornedProgram, start: str, target: str) -> bool:
    """Is *target* reachable from predicate *start* through rule bodies?"""
    seen = {start}
    stack = [start]
    while stack:
        pred = stack.pop()
        for rule in program.rules_for(pred):
            for lit in (*rule.body, *rule.negative):
                p = lit.atom.predicate
                if p == target:
                    return True
                if lit.derived and p not in seen:
                    seen.add(p)
                    stack.append(p)
    return False


def _candidate(program: AdornedProgram, max_body: int):
    """The first predicate eligible for unfolding, or None."""
    query_pred = program.query.atom.predicate
    negated = {
        lit.atom.predicate for r in program.rules for lit in r.negative
    }
    used_somewhere = {
        lit.atom.predicate
        for r in program.rules
        for lit in r.body
        if lit.derived
    }
    for pred in sorted(program.derived_predicates()):
        if pred == query_pred or pred in negated:
            continue
        if pred in program.boolean_predicates:
            # boolean guards exist precisely to be materialized once
            # and retired by the cut; unfolding would undo section 3.1
            continue
        if pred not in used_somewhere:
            continue  # dead predicate: the cascade's job, not ours
        defining = program.rules_for(pred)
        if len(defining) != 1:
            continue
        (rule,) = defining
        if rule.head.atom.arity == 0 or len(rule.body) > max_body:
            continue
        if any(
            lit.derived and _reaches(program, lit.atom.predicate, pred)
            for lit in rule.body
        ) or any(lit.atom.predicate == pred for lit in (*rule.body, *rule.negative)):
            continue
        return pred, rule
    return None


def _splice(
    consumer: AdornedRule, body_index: int, definition: AdornedRule
) -> AdornedRule | None:
    """Replace occurrence *body_index* of *consumer* by *definition*'s
    body; returns None when the occurrence cannot match the head (the
    occurrence could then never fire — left for other passes)."""
    consumer_vars = set(consumer.to_rule().variables())
    def_vars = definition.to_rule().variables()
    fresh = FreshVariables(avoid=set(def_vars) | consumer_vars, prefix="_U")
    # freshen only the definition variables that collide with the
    # consumer, so spliced bodies keep their readable names
    mapping = {v: fresh.take() for v in def_vars if v in consumer_vars}
    def_head = definition.head.atom.substitute(mapping)
    def_body = tuple(
        AdornedLiteral(lit.atom.substitute(mapping), lit.adornment, lit.derived)
        for lit in definition.body
    )
    def_negative = tuple(
        AdornedLiteral(lit.atom.substitute(mapping), lit.adornment, lit.derived)
        for lit in definition.negative
    )

    occurrence = consumer.body[body_index].atom
    # orient the unifier to prefer the consumer's variable names
    theta = unify(def_head, occurrence)
    if theta is None:
        return None

    def apply(lit: AdornedLiteral) -> AdornedLiteral:
        return AdornedLiteral(lit.atom.substitute(theta), lit.adornment, lit.derived)

    new_body = (
        tuple(apply(lit) for lit in consumer.body[:body_index])
        + tuple(apply(lit) for lit in def_body)
        + tuple(apply(lit) for lit in consumer.body[body_index + 1 :])
    )
    new_negative = tuple(apply(lit) for lit in consumer.negative) + tuple(
        apply(lit) for lit in def_negative
    )
    head = AdornedLiteral(
        consumer.head.atom.substitute(theta),
        consumer.head.adornment,
        consumer.head.derived,
    )
    return AdornedRule(head, new_body, new_negative)


def unfold_nonrecursive(
    program: AdornedProgram, max_body: int = 2, max_rounds: int = 20
) -> UnfoldReport:
    """Unfold eligible predicates to a fixpoint (see module docstring)."""
    unfolded: list[str] = []
    for _ in range(max_rounds):
        found = _candidate(program, max_body)
        if found is None:
            break
        pred, definition = found
        new_rules: list[AdornedRule] = []
        ok = True
        for rule in program.rules:
            if rule is definition:
                continue
            while ok:
                index = next(
                    (
                        i
                        for i, lit in enumerate(rule.body)
                        if lit.atom.predicate == pred
                    ),
                    None,
                )
                if index is None:
                    break
                spliced = _splice(rule, index, definition)
                if spliced is None:
                    ok = False
                    break
                rule = spliced
            new_rules.append(rule)
        if not ok:
            # an occurrence could not match the head; leave this
            # predicate alone entirely (conservative) and stop trying —
            # rarer passes (cascade) may still clean up.
            break
        program = program.with_rules(new_rules)
        unfolded.append(pred)
    return UnfoldReport(program, tuple(unfolded))
