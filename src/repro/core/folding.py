"""Folding: the "guessed rewrite" of Example 11 (and section 6).

The summary-based deletion tests only reason through *unit* rules.  The
paper's Example 11 shows the workaround for a rule like::

    p@nd(X) :- p@nn(X, Y), g3(Y, Z, U).

— introduce a new predicate for the body and rewrite other rule bodies
that contain an instance of it::

    p@nd(X)            :- qq@nnnn(X, Y, Z, U).        (now a unit rule)
    qq@nnnn(X, Y, Z, U) :- p@nn(X, Y), g3(Y, Z, U).

after which Lemma 5.1 applies where it previously could not.  The paper
calls the choice of what to fold "essentially a guess"; this module
provides the mechanical part: :func:`define_view` introduces the view
predicate, and :func:`fold_program` replaces embeddings of the view
body in other rules.

The fold is the classic Tamaki–Sato-style fold restricted to the safe
case: an embedding must map the view's *local* variables (body-only
variables of the definition) injectively to variables that occur
nowhere else in the target rule, so replacing the matched literals
cannot lose join constraints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..datalog.ast import Atom
from ..datalog.errors import TransformError
from ..datalog.terms import Constant, Term, Variable
from .adornment import Adornment, AdornedLiteral, AdornedProgram, AdornedRule

__all__ = ["FoldResult", "define_view", "fold_program"]


@dataclass(frozen=True)
class FoldResult:
    """Program after folding, plus what was done."""

    program: AdornedProgram
    view_rule: AdornedRule
    folded_rules: tuple[int, ...]  # indexes (in the input program) of rewritten rules


def define_view(
    program: AdornedProgram,
    rule_index: int,
    body_indexes: Sequence[int],
    view_name: str,
) -> tuple[AdornedRule, AdornedLiteral]:
    """Build the view rule for a subset of one rule's body.

    The view head collects, in order of first occurrence, every
    variable of the selected literals; its adornment is all-``n``
    (every argument is exported).  Returns the view's defining rule and
    the literal that replaces the selected body literals in the source
    rule.
    """
    if not program.projected:
        raise TransformError("folding operates on projected programs")
    rule = program.rules[rule_index]
    if not body_indexes:
        raise TransformError("cannot fold an empty literal set")
    chosen = [rule.body[i] for i in body_indexes]
    head_vars: dict[Variable, None] = {}
    for lit in chosen:
        for v in lit.atom.variables():
            head_vars.setdefault(v)
    args = tuple(head_vars)
    adornment = Adornment("n" * len(args))
    head = AdornedLiteral(Atom(view_name, args), adornment, derived=True)
    view_rule = AdornedRule(head, tuple(chosen))
    return view_rule, head


def _embedding(
    view: AdornedRule,
    target: AdornedRule,
) -> Optional[tuple[tuple[int, ...], dict[Variable, Term]]]:
    """Find an embedding of the view body into the target rule body.

    Returns the matched body indexes and the substitution from view
    variables to target terms, or ``None``.  Local view variables (not
    exported in the view head) must map injectively to variables with
    exactly one occurrence in the target (outside the matched
    literals), which for the safe fold means: variables that occur only
    inside the matched literals, exactly where the view's local
    variable does.
    """
    view_body = view.body
    target_body = target.body
    n = len(view_body)
    if n > len(target_body):
        return None
    candidates: list[list[int]] = []
    for vlit in view_body:
        matches = [
            ti
            for ti, tlit in enumerate(target_body)
            if tlit.atom.predicate == vlit.atom.predicate
            and tlit.atom.arity == vlit.atom.arity
        ]
        if not matches:
            return None
        candidates.append(matches)

    # occurrence counts of variables across the whole target rule
    counts: dict[Variable, int] = {}
    for atom_ in (target.head.atom, *(lit.atom for lit in target_body)):
        for a in atom_.args:
            if isinstance(a, Variable):
                counts[a] = counts.get(a, 0) + 1

    exported = set(view.head.atom.variables())

    def try_assignment(assignment: tuple[int, ...]) -> Optional[dict[Variable, Term]]:
        subst: dict[Variable, Term] = {}
        for vlit, ti in zip(view_body, assignment):
            tlit = target_body[ti]
            for va, ta in zip(vlit.atom.args, tlit.atom.args):
                if isinstance(va, Constant):
                    if va != ta:
                        return None
                else:
                    bound = subst.get(va)
                    if bound is None:
                        subst[va] = ta
                    elif bound != ta:
                        return None
        # Local (non-exported) view variables: their images must be
        # variables private to the matched literals, and distinct.
        local_images = []
        matched_occurrences: dict[Variable, int] = {}
        for ti in assignment:
            for a in target_body[ti].atom.args:
                if isinstance(a, Variable):
                    matched_occurrences[a] = matched_occurrences.get(a, 0) + 1
        for v in set(v for lit in view_body for v in lit.atom.variables()):
            if v in exported:
                continue
            image = subst[v]
            if not isinstance(image, Variable):
                return None
            if counts.get(image, 0) != matched_occurrences.get(image, 0):
                return None  # image leaks outside the matched literals
            local_images.append(image)
        if len(set(local_images)) != len(local_images):
            return None
        return subst

    # Enumerate injective assignments (bodies are short in practice).
    def search(i: int, used: set[int], acc: list[int]):
        if i == n:
            yield tuple(acc)
            return
        for ti in candidates[i]:
            if ti in used:
                continue
            used.add(ti)
            acc.append(ti)
            yield from search(i + 1, used, acc)
            acc.pop()
            used.discard(ti)

    for assignment in search(0, set(), []):
        subst = try_assignment(assignment)
        if subst is not None:
            return assignment, subst
    return None


def fold_program(
    program: AdornedProgram,
    rule_index: int,
    body_indexes: Sequence[int],
    view_name: Optional[str] = None,
) -> FoldResult:
    """Introduce a view for part of one rule's body and fold every rule
    whose body embeds it (including the source rule).

    The result is query-equivalent to the input: unfolding the view in
    every folded rule gives back a variable-renamed original.
    """
    if view_name is None:
        base = "view"
        taken = {r.head.atom.predicate for r in program.rules}
        k = 1
        while f"{base}{k}" in taken:
            k += 1
        view_name = f"{base}{k}"
    if any(r.head.atom.predicate == view_name for r in program.rules):
        raise TransformError(f"predicate {view_name!r} already defined")

    view_rule, _view_head = define_view(program, rule_index, body_indexes, view_name)

    new_rules: list[AdornedRule] = []
    folded: list[int] = []
    for ri, rule in enumerate(program.rules):
        found = _embedding(view_rule, rule)
        if found is None:
            new_rules.append(rule)
            continue
        assignment, subst = found
        matched = set(assignment)
        replacement_atom = view_rule.head.atom.substitute(subst)
        replacement = AdornedLiteral(
            replacement_atom, view_rule.head.adornment, derived=True
        )
        body = [lit for ti, lit in enumerate(rule.body) if ti not in matched]
        insert_at = min(matched)
        kept_before = sum(1 for ti in range(insert_at) if ti not in matched)
        body.insert(kept_before, replacement)
        new_rules.append(AdornedRule(rule.head, tuple(body)))
        folded.append(ri)

    new_rules.append(view_rule)
    return FoldResult(
        program.with_rules(new_rules), view_rule, tuple(folded)
    )
