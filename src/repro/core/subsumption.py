"""Rule subsumption — a section-6 research direction, implemented.

The paper closes with: "the problem is to devise techniques to detect
subsumption of a rule by other rules.  Whereas we have restricted our
attention to the case of subsumption by a set of (unit) rules, the
generalization to the case where a rule is subsumed by a set of
(arbitrary) rules is an interesting open question."

This module provides the classical decidable building block,
θ-subsumption: rule ``r1`` subsumes rule ``r2`` iff some substitution
``θ`` maps ``head(r1)`` onto ``head(r2)`` and ``body(r1)θ`` into
``body(r2)`` (as a subset).  A subsumed rule derives only facts its
subsumer also derives — from the *same* body facts — so deleting it
preserves the fixpoint on every input: uniform equivalence, hence also
uniform query equivalence and query equivalence.  It is the cheap
syntactic special case of Sagiv's chase (no fixpoint evaluation
needed), and it directly captures single-rule redundancy like Example
9's fourth rule being covered by the first.

:func:`delete_subsumed` removes every rule θ-subsumed by another rule
of the program (with a canonical-form guard so that two identical
rules don't eliminate each other).
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..datalog.ast import Atom, Program, Rule
from ..datalog.terms import Constant, Term, Variable

__all__ = ["theta_subsumes", "subsumed_by_some", "delete_subsumed"]


def _match_atom(
    pattern: Atom, target: Atom, subst: dict[Variable, Term]
) -> Optional[dict[Variable, Term]]:
    """One-way matching of a (non-ground) pattern atom onto a target
    atom, extending *subst*; target terms are treated as constants
    (its variables are 'frozen')."""
    if pattern.predicate != target.predicate or pattern.arity != target.arity:
        return None
    out = dict(subst)
    for p, t in zip(pattern.args, target.args):
        if isinstance(p, Constant):
            if p != t:
                return None
        else:
            bound = out.get(p)
            if bound is None:
                out[p] = t
            elif bound != t:
                return None
    return out


def theta_subsumes(r1: Rule, r2: Rule) -> bool:
    """Does *r1* θ-subsume *r2*?

    ∃θ with ``head(r1)θ == head(r2)`` and every literal of
    ``body(r1)θ`` occurring in ``body(r2)``.  The rules are renamed
    apart first, and r2's variables are frozen (matching is one-way).
    """
    r1 = r1.rename_apart("_s1")
    subst = _match_atom(r1.head, r2.head, {})
    if subst is None:
        return False

    body2 = list(r2.body)
    neg2 = list(r2.negative)
    literals1 = list(r1.body) + list(r1.negative)
    split = len(r1.body)

    def search(i: int, subst: dict[Variable, Term]) -> bool:
        if i == len(literals1):
            return True
        # positive literals of r1 match into r2's positive body;
        # negated literals of r1 match into r2's negated literals (r2
        # checks at least the negations r1 does, so it fires no more
        # often).
        targets = body2 if i < split else neg2
        for target in targets:
            extended = _match_atom(literals1[i], target, subst)
            if extended is not None and search(i + 1, extended):
                return True
        return False

    return search(0, subst)


def subsumed_by_some(
    rule: Rule, others: Iterable[Rule]
) -> Optional[Rule]:
    """The first rule of *others* that properly θ-subsumes *rule*."""
    for candidate in others:
        if candidate is rule:
            continue
        if theta_subsumes(candidate, rule):
            return candidate
    return None


def delete_subsumed(program: Program) -> tuple[Program, list[tuple[Rule, Rule]]]:
    """Remove every rule θ-subsumed by another rule of the program.

    Returns the trimmed program and the list of
    ``(deleted_rule, subsuming_rule)`` pairs.  When two rules subsume
    each other (they are variants), the later one is deleted.  Sound
    for uniform equivalence, hence for every weaker notion.
    """
    kept: list[Rule] = []
    deleted: list[tuple[Rule, Rule]] = []
    for rule in program.rules:
        # a rule may be subsumed by an already-kept rule or by a
        # not-yet-processed one; checking against kept + remaining
        # while breaking variant ties by order:
        winner = subsumed_by_some(rule, kept)
        if winner is None:
            later = [
                r
                for r in program.rules
                if r is not rule and r not in kept
            ]
            for candidate in later:
                if theta_subsumes(candidate, rule) and not theta_subsumes(
                    rule, candidate
                ):
                    winner = candidate
                    break
        if winner is not None:
            deleted.append((rule, winner))
        else:
            kept.append(rule)
    return program.with_rules(kept), deleted
