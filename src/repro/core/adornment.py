"""Existential adornments — section 2 of the paper.

An *adornment* is a string of ``n`` (needed) and ``d`` (don't-care /
existential) characters, one per argument position.  ``p@nd`` denotes
the query form of ``p`` in which all first-argument values are needed
and the second argument is existential: only the existence of a value
matters.

Detecting existential arguments exactly is undecidable (Lemma 2.1), so
the paper gives a syntactic sufficient test, the *adornment algorithm*:

    In choosing an adornment for a literal in the body, an argument is
    existential (d) if the variable in it does not occur anywhere else
    in the rule, except possibly in an existential argument of the head
    predicate.  All other arguments are adorned as n.

Starting from the query's adornment, the algorithm generates adorned
versions of every reachable derived predicate (several per predicate if
different query forms arise) until no unmarked adorned predicate
remains; termination is guaranteed because the number of adorned
versions is finite.  Lemma 2.2: the algorithm adorns an argument ``d``
only if it really is existential.

The adorned program is represented by :class:`AdornedProgram`; derived
predicates are renamed ``base@adornment`` so the adorned program is
itself an ordinary Datalog program (evaluable, analyzable), while the
adornment metadata stays available to the later phases.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Mapping, Optional

from ..datalog.ast import Atom, Program, Rule
from ..datalog.errors import TransformError, ValidationError
from ..datalog.terms import Constant, Variable

__all__ = [
    "ADORN_SEP",
    "Adornment",
    "AdornedLiteral",
    "AdornedRule",
    "AdornedProgram",
    "adorned_name",
    "split_adorned",
    "query_adornment",
    "adorn",
]

ADORN_SEP = "@"


@dataclass(frozen=True, slots=True)
class Adornment:
    """An ``n``/``d`` string, e.g. ``Adornment("nd")``."""

    text: str

    def __post_init__(self):
        if not set(self.text) <= {"n", "d"}:
            raise ValidationError(f"invalid adornment {self.text!r}")

    def __str__(self) -> str:
        return self.text

    def __len__(self) -> int:
        return len(self.text)

    def __iter__(self) -> Iterator[str]:
        return iter(self.text)

    def __getitem__(self, i: int) -> str:
        return self.text[i]

    @classmethod
    def all_needed(cls, arity: int) -> "Adornment":
        return cls("n" * arity)

    @property
    def needed_positions(self) -> tuple[int, ...]:
        """Positions adorned ``n``, in order."""
        return tuple(i for i, c in enumerate(self.text) if c == "n")

    @property
    def existential_positions(self) -> tuple[int, ...]:
        """Positions adorned ``d``, in order."""
        return tuple(i for i, c in enumerate(self.text) if c == "d")

    @property
    def is_all_needed(self) -> bool:
        return "d" not in self.text

    def covers(self, other: "Adornment") -> bool:
        """The *covers* relation of section 5: ``a1.covers(a)`` iff they
        have the same arity and every ``n`` in *a* (other) is ``n`` in
        *a1* (self).  Intuitively any tuple of ``q^a1`` is also a tuple
        of ``q^a``, so a unit rule ``q^a :- q^a1`` may be added.
        """
        if len(self.text) != len(other.text):
            return False
        return all(c1 == "n" for c1, c in zip(self.text, other.text) if c == "n")


def adorned_name(base: str, adornment: Adornment) -> str:
    """The mangled predicate name of an adorned version, e.g. ``a@nd``."""
    return f"{base}{ADORN_SEP}{adornment}"


def split_adorned(name: str) -> tuple[str, Optional[Adornment]]:
    """Invert :func:`adorned_name`; returns ``(name, None)`` for plain names."""
    base, sep, suffix = name.rpartition(ADORN_SEP)
    if not sep or not suffix or not set(suffix) <= {"n", "d"}:
        return name, None
    return base, Adornment(suffix)


@dataclass(frozen=True, slots=True)
class AdornedLiteral:
    """An atom plus the adornment of its predicate occurrence.

    ``atom.predicate`` is the mangled ``base@adornment`` name for
    derived predicates and the plain base name for EDB predicates; in
    both cases the adornment of the occurrence is stored.  Before
    projection pushing, ``len(adornment) == atom.arity``; afterwards the
    atom retains only the ``n`` positions (and
    :attr:`AdornedProgram.projected` is True).
    """

    atom: Atom
    adornment: Adornment
    derived: bool

    @property
    def base(self) -> str:
        return split_adorned(self.atom.predicate)[0]

    def __str__(self) -> str:
        return str(self.atom)


@dataclass(frozen=True, slots=True)
class AdornedRule:
    """A rule whose head and body occurrences carry adornments.

    ``negative`` holds negated literals (section-6 extension).  They
    are always adorned all-``n``: projecting a column out of a negated
    occurrence would change which tuples the negation excludes, so the
    optimizer treats every negated argument as needed.
    """

    head: AdornedLiteral
    body: tuple[AdornedLiteral, ...]
    negative: tuple[AdornedLiteral, ...] = ()

    def to_rule(self) -> Rule:
        return Rule(
            self.head.atom,
            tuple(lit.atom for lit in self.body),
            tuple(lit.atom for lit in self.negative),
        )

    def __str__(self) -> str:
        return str(self.to_rule())


@dataclass(frozen=True)
class AdornedProgram:
    """The adorned program ``P^e,ad`` of section 2.

    ``projected`` records whether phase 2 (Lemma 3.2) has dropped the
    existential argument positions; several phase-3 operations require
    the projected form.  ``boolean_predicates`` names the arity-0
    predicates introduced by the phase-1 component rewriting; the engine
    retires their rules once satisfied (the bottom-up cut).
    """

    rules: tuple[AdornedRule, ...]
    query: AdornedLiteral
    projected: bool = False
    boolean_predicates: frozenset[str] = frozenset()

    def to_program(self) -> Program:
        """The plain Datalog program (engine-ready)."""
        return Program(tuple(r.to_rule() for r in self.rules), self.query.atom)

    def adornment_of(self, predicate: str) -> Optional[Adornment]:
        """The adornment of an adorned (mangled) predicate name."""
        return split_adorned(predicate)[1]

    def derived_predicates(self) -> frozenset[str]:
        return frozenset(r.head.atom.predicate for r in self.rules)

    def rules_for(self, predicate: str) -> tuple[AdornedRule, ...]:
        return tuple(r for r in self.rules if r.head.atom.predicate == predicate)

    def with_rules(self, rules: Iterable[AdornedRule]) -> "AdornedProgram":
        return replace(self, rules=tuple(rules))

    def without_rules(self, indexes: Iterable[int]) -> "AdornedProgram":
        drop = set(indexes)
        return replace(
            self, rules=tuple(r for i, r in enumerate(self.rules) if i not in drop)
        )

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> Iterator[AdornedRule]:
        return iter(self.rules)

    def __str__(self) -> str:
        lines = [str(r) for r in self.rules]
        lines.append(f"?- {self.query}.")
        return "\n".join(lines)


def query_adornment(query: Atom) -> Adornment:
    """The adornment the user's query atom denotes.

    Constants and named variables are needed (``n``); anonymous
    variables (parser-generated ``_``-prefixed names) are existential
    (``d``) — asking ``?- q(X, _)`` means "all X such that some second
    value exists".
    """
    chars = []
    for arg in query.args:
        if isinstance(arg, Variable) and arg.name.startswith("_"):
            chars.append("d")
        else:
            chars.append("n")
    return Adornment("".join(chars))


def _adorn_body_literal(
    literal: Atom,
    body_counts: Mapping[Variable, int],
    head_needed: frozenset[Variable],
) -> Adornment:
    """Adorn one body literal per the algorithm of section 2.

    A position is ``d`` iff it holds a variable occurring nowhere else
    in the rule except possibly at existential head positions: exactly
    one occurrence in the whole body, and no occurrence at a needed
    (``n``) head position.  Occurrences at existential (``d``) head
    positions are permitted.
    """
    chars = []
    for arg in literal.args:
        if isinstance(arg, Constant):
            chars.append("n")
        elif body_counts[arg] == 1 and arg not in head_needed:
            chars.append("d")
        else:
            chars.append("n")
    return Adornment("".join(chars))


def adorn(program: Program, query_ad: Optional[Adornment] = None) -> AdornedProgram:
    """Construct the adorned program ``P^e,ad`` (section 2).

    Starting from the query predicate with adornment *query_ad*
    (defaulting to :func:`query_adornment` of the program's query atom),
    process each unmarked adorned predicate: for every rule defining its
    base predicate, adorn the body literals, rename derived body
    predicates to their adorned versions and enqueue any new ones.

    Raises :class:`TransformError` if the program has no query.
    """
    if program.query is None:
        raise TransformError("cannot adorn a program without a query")
    program.validate()

    arities = program.arities()
    idb = program.idb_predicates()
    query_base = program.query.predicate
    if query_base not in idb:
        raise TransformError(
            f"query predicate {query_base!r} has no defining rules; nothing to adorn"
        )
    q_ad = query_ad if query_ad is not None else query_adornment(program.query)
    if len(q_ad) != program.query.arity:
        raise TransformError(
            f"query adornment {q_ad} does not match query arity {program.query.arity}"
        )

    adorned_rules: list[AdornedRule] = []
    worklist: list[tuple[str, Adornment]] = [(query_base, q_ad)]
    marked: set[tuple[str, Adornment]] = set()

    while worklist:
        base, ad = worklist.pop()
        if (base, ad) in marked:
            continue
        marked.add((base, ad))
        head_name = adorned_name(base, ad)
        for r in program.rules_for(base):
            # A head variable is "needed" if it occurs at any n position
            # of the head; occurrences at d positions alone do not make
            # it needed.
            head_needed = frozenset(
                r.head.args[i]
                for i in ad.needed_positions
                if isinstance(r.head.args[i], Variable)
            )
            body_counts: dict[Variable, int] = {}
            for atom_ in (*r.body, *r.negative):
                for arg in atom_.args:
                    if isinstance(arg, Variable):
                        body_counts[arg] = body_counts.get(arg, 0) + 1
            head_lit = AdornedLiteral(
                Atom(head_name, r.head.args, span=r.head.span), ad, derived=True
            )
            body_lits: list[AdornedLiteral] = []
            for literal in r.body:
                lit_ad = _adorn_body_literal(literal, body_counts, head_needed)
                if literal.predicate in idb:
                    new_name = adorned_name(literal.predicate, lit_ad)
                    body_lits.append(
                        AdornedLiteral(
                            Atom(new_name, literal.args, span=literal.span),
                            lit_ad,
                            derived=True,
                        )
                    )
                    if (literal.predicate, lit_ad) not in marked:
                        worklist.append((literal.predicate, lit_ad))
                else:
                    body_lits.append(AdornedLiteral(literal, lit_ad, derived=False))
            # Negated literals are adorned all-needed: their arguments
            # can never be projected out (see AdornedRule docstring).
            negative_lits: list[AdornedLiteral] = []
            for literal in r.negative:
                lit_ad = Adornment.all_needed(literal.arity)
                if literal.predicate in idb:
                    new_name = adorned_name(literal.predicate, lit_ad)
                    negative_lits.append(
                        AdornedLiteral(Atom(new_name, literal.args), lit_ad, derived=True)
                    )
                    if (literal.predicate, lit_ad) not in marked:
                        worklist.append((literal.predicate, lit_ad))
                else:
                    negative_lits.append(AdornedLiteral(literal, lit_ad, derived=False))
            adorned_rules.append(
                AdornedRule(head_lit, tuple(body_lits), tuple(negative_lits))
            )

    query_lit = AdornedLiteral(
        Atom(adorned_name(query_base, q_ad), program.query.args), q_ad, derived=True
    )
    return AdornedProgram(tuple(adorned_rules), query_lit)
