"""Sagiv's decidable uniform-equivalence tests (section 3.3, Example 4).

Two programs are *uniformly equivalent* when they compute the same
least fixpoint over every input database instance — where, unlike plain
equivalence, the input may already contain facts for derived (IDB)
predicates (section 4).  Sagiv [Sagiv 87] showed uniform equivalence is
decidable and gave the chase-style test implemented here:

    A rule ``r`` may be deleted from program ``P`` iff ``P - {r}``,
    evaluated on the *frozen* body of ``r`` (each variable replaced by
    a distinct fresh constant) as the input database, derives the
    frozen head of ``r``.

Deleting under this test preserves uniform equivalence, hence also
uniform *query* equivalence and plain query equivalence.  The paper
uses it in Example 4 (the recursive rule of the projected
transitive-closure program is redundant) and shows its limitation in
Example 5 (the left-linear variant admits no uniform-equivalence
deletion at all — that takes the uniform-query-equivalence machinery of
:mod:`repro.core.deletion`).

The same frozen-body chase also yields a decision procedure for uniform
*containment* and hence uniform equivalence of two programs, and the
literal-deletion test of Sagiv's minimization algorithm.
"""

from __future__ import annotations

from ..datalog.ast import Program, Rule
from ..datalog.database import Database
from ..datalog.errors import TransformError
from ..datalog.unify import skolemize
from ..engine.evaluator import EngineOptions, evaluate

__all__ = [
    "rule_deletable_uniform",
    "literal_deletable_uniform",
    "uniformly_contains",
    "uniformly_equivalent",
    "minimize_uniform",
]

_OPTIONS = EngineOptions(max_iterations=10_000)


def _derives_frozen_head(program: Program, rule: Rule) -> bool:
    """Does *program*, run on the frozen body of *rule*, derive the
    frozen head?  The core of every test in this module."""
    from ..datalog.builtins import has_builtins, is_builtin

    if program.has_negation() or rule.negative:
        raise TransformError(
            "uniform-equivalence chase tests require negation-free programs"
        )
    if has_builtins(program) or any(is_builtin(a.predicate) for a in rule.body):
        raise TransformError(
            "uniform-equivalence chase tests cannot evaluate comparison "
            "built-ins over frozen (skolem) constants"
        )
    ground_head, ground_body, _ = skolemize(rule)
    edb = Database.from_facts(ground_body)
    # The head predicate may have no rules left in `program`; make sure
    # its relation exists so the membership check is well-defined.
    edb.ensure(ground_head.predicate, ground_head.arity)
    result = evaluate(program.with_query(None), edb, _OPTIONS)
    return ground_head.as_fact() in result.facts(ground_head.predicate) or (
        ground_head.as_fact() in edb.rows(ground_head.predicate)
    )


def rule_deletable_uniform(program: Program, rule_index: int) -> bool:
    """Sagiv's test: can rule *rule_index* be deleted while preserving
    uniform equivalence?

    Example 4 of the paper walks this test through the projected
    transitive-closure program: the frozen body of
    ``a@nd(x) :- p(x, z), a@nd(z)`` is ``{p(x, z), a@nd(z)}``, and the
    exit rule re-derives ``a@nd(x)`` from ``p(x, z)``.
    """
    rule = program.rules[rule_index]
    rest = program.without_rule(rule_index)
    return _derives_frozen_head(rest, rule)


def literal_deletable_uniform(
    program: Program, rule_index: int, body_index: int
) -> bool:
    """Can a body literal be deleted while preserving uniform
    equivalence?

    Removing a literal makes the rule fire more often, so the direction
    to check is that the *original* program subsumes the generalized
    rule: the original program, on the frozen body of the shortened
    rule, must derive the frozen head.
    """
    rule = program.rules[rule_index]
    if not (0 <= body_index < len(rule.body)):
        raise TransformError(f"rule {rule_index} has no body literal {body_index}")
    shortened = Rule(
        rule.head, rule.body[:body_index] + rule.body[body_index + 1 :]
    )
    if not shortened.is_safe():
        return False
    return _derives_frozen_head(program, shortened)


def uniformly_contains(p1: Program, p2: Program) -> bool:
    """True iff the fixpoint of *p1* contains the fixpoint of *p2* on
    every input database instance.

    By Sagiv's characterization this holds iff *p1* derives the frozen
    head of every rule of *p2* from that rule's frozen body.
    """
    return all(_derives_frozen_head(p1, r) for r in p2.rules)


def uniformly_equivalent(p1: Program, p2: Program) -> bool:
    """Decidable uniform equivalence (section 4, third notion)."""
    return uniformly_contains(p1, p2) and uniformly_contains(p2, p1)


def minimize_uniform(program: Program, drop_literals: bool = True) -> Program:
    """Sagiv's minimization: greedily delete rules (and optionally body
    literals) while the program stays uniformly equivalent to itself.

    The result depends on deletion order (minimization is not unique);
    rules are tried first, in index order, then literals.
    """
    changed = True
    while changed:
        changed = False
        for ri in range(len(program.rules)):
            if rule_deletable_uniform(program, ri):
                program = program.without_rule(ri)
                changed = True
                break
        if changed or not drop_literals:
            continue
        for ri, rule in enumerate(program.rules):
            for bi in range(len(rule.body)):
                if literal_deletable_uniform(program, ri, bi):
                    shortened = Rule(
                        rule.head, rule.body[:bi] + rule.body[bi + 1 :]
                    )
                    rules = list(program.rules)
                    rules[ri] = shortened
                    program = program.with_rules(rules)
                    changed = True
                    break
            if changed:
                break
    return program
