"""Phase 3 — discarding rules under uniform query equivalence
(sections 3.3 and 5).

Deleting an arbitrary rule while preserving (query) equivalence is
undecidable (Theorem 3.4), and remains undecidable under the paper's
*uniform query equivalence* (Lemma 4.2).  This module implements the
paper's sufficient conditions:

- :func:`lemma51_deletable` — the single-unit-rule summary test
  (Lemma 5.1 / Algorithm 5.2): an occurrence ``p.n`` whose every
  query-rooted composite-projection summary equals the projection of a
  unit rule ``q :- p.k`` lets us delete the rule containing ``p.n``.
- :func:`lemma53_deletable` — the multi-unit-rule generalization
  (Lemma 5.3): the summaries must each equal *some* summary generated
  (Algorithm 5.1) from the set of all unit-rule projections.
- :func:`chase_deletable` — the uniform-query-equivalence chase
  demonstrated in Example 6: to delete a rule ``r`` with head predicate
  ``p``, characterize (via query-rooted summaries) how ``p``-facts can
  contribute to query facts, freeze ``r``'s body into a canonical
  database, and check that the remaining program already derives every
  query fact the frozen head could contribute.  This is the test the
  paper applies verbatim ("we test to see if the program without this
  rule, running on the ground instance of the body as input, produces
  ``a^nd(x)`` rather than ``a^nn(x,y)``"); the summary side-condition
  makes the replacement argument of Lemma 5.1's proof sketch go through
  for non-unit rules.
- :func:`cascade` — the clean-ups the paper applies after deletions
  (Examples 7 and 8): drop rules whose body uses a derived predicate
  with no remaining defining rule, and rules defining predicates
  unreachable from the query.

:func:`delete_rules` drives the tests to a fixpoint.  All functions
require a *projected* adorned program (the paper: "Henceforth, we will
assume that this has been done").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..datalog.ast import Rule
from ..datalog.database import Database
from ..datalog.errors import TransformError
from ..datalog.terms import Term, Variable
from ..datalog.unify import skolemize
from ..engine.evaluator import EngineOptions, evaluate
from .adornment import AdornedProgram, AdornedRule
from .argument_projection import (
    ArgumentProjection,
    QueryRootedSummaries,
    head_body_projection,
    identity_projection,
    program_projections,
    query_rooted_summaries,
    summary_closure,
)
from .uniform_equivalence import rule_deletable_uniform
from .unit_rules import is_unit_rule

__all__ = [
    "Deletion",
    "DeletionReport",
    "lemma51_deletable",
    "lemma53_deletable",
    "chase_deletable",
    "cascade",
    "delete_rules",
]


@dataclass(frozen=True)
class Deletion:
    """One deleted rule and the justification used."""

    rule: AdornedRule
    reason: str

    def __str__(self) -> str:
        return f"{self.rule}   [{self.reason}]"


@dataclass(frozen=True)
class DeletionReport:
    """The trimmed program plus the deletion log."""

    program: AdornedProgram
    deleted: tuple[Deletion, ...]

    @property
    def count(self) -> int:
        return len(self.deleted)


def _require_projected(program: AdornedProgram) -> None:
    if not program.projected:
        raise TransformError(
            "rule deletion operates on projected programs (apply Lemma 3.2 first)"
        )


def _require_positive(program: AdornedProgram) -> None:
    """The deletion tests' replacement arguments assume monotone
    programs over stored relations; with negation, removing a rule can
    *add* answers through a negated dependency, and comparison
    built-ins cannot be evaluated over the frozen-body chase's skolem
    constants — in either case the tests refuse."""
    from ..datalog.builtins import is_builtin

    if any(r.negative for r in program.rules):
        raise TransformError(
            "rule deletion under uniform (query) equivalence is not supported "
            "for programs with negation (non-monotonic); see section 6"
        )
    if any(
        is_builtin(lit.atom.predicate) for r in program.rules for lit in r.body
    ):
        raise TransformError(
            "rule deletion under uniform (query) equivalence is not supported "
            "for programs with comparison built-ins; see section 6"
        )


def _unit_candidates(
    program: AdornedProgram,
    body_pred: str,
    exclude_rule: int,
    head_pred: Optional[str] = None,
) -> list[ArgumentProjection]:
    """Projections of unit rules ``head_pred :- body_pred`` (all heads
    when *head_pred* is None), excluding rule *exclude_rule*."""
    out = []
    for ui, urule in enumerate(program.rules):
        if ui == exclude_rule or not is_unit_rule(urule):
            continue
        if head_pred is not None and urule.head.atom.predicate != head_pred:
            continue
        if urule.body[0].atom.predicate != body_pred:
            continue
        out.append(head_body_projection(urule, 0))
    return out


def lemma51_deletable(
    program: AdornedProgram,
    rule_index: int,
    summaries: Optional[QueryRootedSummaries] = None,
) -> Optional[str]:
    """Lemma 5.1: return a reason string if the rule can be deleted.

    The rule is deletable if it contains a derived occurrence ``p.n``
    such that there is a unit rule ``q(t) :- p.k(tk)`` (or the trivial
    identity when ``p`` is the query predicate) whose projection equals
    every summary of composite projections ``(q, ...), ..., (..., p.n)``.
    The unit rule must not be the rule under deletion (the replacement
    tree of the proof sketch must survive the deletion).
    """
    _require_projected(program)
    _require_positive(program)
    if summaries is None:
        summaries = query_rooted_summaries(program)
    query_pred = program.query.atom.predicate
    rule = program.rules[rule_index]
    for bi, lit in enumerate(rule.body):
        if not lit.derived:
            continue
        pred = lit.atom.predicate
        candidates = _unit_candidates(program, pred, rule_index, head_pred=query_pred)
        if pred == query_pred:
            candidates.append(identity_projection(pred, program.query.atom.arity))
        occ_sums = summaries.by_occurrence.get((rule_index, bi), frozenset())
        for unit_proj in candidates:
            if all(s == unit_proj for s in occ_sums):
                return f"lemma5.1 occurrence ({rule_index},{bi}) of {pred}"
    return None


def lemma53_deletable(
    program: AdornedProgram,
    rule_index: int,
    summaries: Optional[QueryRootedSummaries] = None,
) -> Optional[str]:
    """Lemma 5.3: the multi-unit-rule generalization of Lemma 5.1.

    ``S1`` is the set of projections of all unit rules in the program
    (other than the rule under deletion) together with the identity on
    the query predicate; ``S2`` its Algorithm-5.1 summary closure.  The
    rule is deletable if it contains a derived occurrence whose every
    query-rooted summary is identical to some member of ``S2``.
    """
    _require_projected(program)
    _require_positive(program)
    if summaries is None:
        summaries = query_rooted_summaries(program)
    query_pred = program.query.atom.predicate
    s1 = [
        head_body_projection(urule, 0)
        for ui, urule in enumerate(program.rules)
        if ui != rule_index and is_unit_rule(urule)
    ]
    s1.append(identity_projection(query_pred, program.query.atom.arity))
    s2 = summary_closure(s1)

    rule = program.rules[rule_index]
    for bi, lit in enumerate(rule.body):
        if not lit.derived:
            continue
        occ_sums = summaries.by_occurrence.get((rule_index, bi), frozenset())
        if not occ_sums:
            continue  # unreachable occurrences are the cascade's job
        if all(s in s2 for s in occ_sums):
            return f"lemma5.3 occurrence ({rule_index},{bi}) of {lit.atom.predicate}"
    return None


def _contribution_substitution(
    rule: Rule, sigma: ArgumentProjection, query_arity: int
) -> Optional[tuple[dict, tuple[int, ...]]]:
    """For the chase test: the substitution that makes *rule*'s head
    satisfy the equality constraints of summary *sigma*, plus one
    representative head position per query position.

    Returns ``None`` when some query position is not covered by
    *sigma* (the contributed query fact is then underdetermined and the
    rule cannot be deleted via this summary); raises
    :class:`_Unrealizable` when the constraints conflict with the
    head's constants (no instance contributes through *sigma*, so it
    imposes no obligation).
    """
    subst: dict[Variable, Term] = {}

    def resolve(t: Term) -> Term:
        while isinstance(t, Variable) and t in subst:
            t = subst[t]
        return t

    representatives = []
    for i in range(query_arity):
        js = sorted(sigma.maps_position(i))
        if not js:
            return None
        t0 = resolve(rule.head.args[js[0]])
        for j in js[1:]:
            tj = resolve(rule.head.args[j])
            if t0 == tj:
                continue
            if isinstance(t0, Variable):
                subst[t0] = tj
                t0 = tj
            elif isinstance(tj, Variable):
                subst[tj] = t0
            else:
                raise _Unrealizable()
        representatives.append(js[0])
    flat = {v: resolve(t) for v, t in subst.items()}
    return flat, tuple(representatives)


class _Unrealizable(Exception):
    """A summary's equality constraints conflict with the rule head's
    constants; no instance of the rule contributes through it."""


def chase_deletable(
    program: AdornedProgram,
    rule_index: int,
    summaries: Optional[QueryRootedSummaries] = None,
    max_iterations: int = 10_000,
) -> Optional[str]:
    """The Example-6 uniform-query-equivalence chase test.

    Let ``r`` be the candidate rule and ``p`` its head predicate.  The
    query-rooted summaries ending at occurrences of ``p`` (plus the
    identity when ``p`` is the query itself) characterize every way a
    ``p``-fact can determine a query fact.  For each such summary
    ``σ``:

    1. if some query position is not connected by ``σ``, fail — the
       contribution is underdetermined;
    2. apply the equality constraints ``σ`` imposes on the head
       arguments (conflicting constants mean ``σ`` contributes nothing
       for this rule and is skipped);
    3. freeze the constrained rule's body into a canonical database and
       require the program *without* ``r`` to derive the query fact the
       frozen head determines through ``σ``.

    If every summary passes, deleting ``r`` preserves uniform query
    equivalence: in any derivation, the subtree rooted at an application
    of ``r`` can be replaced — by the homomorphic image of the chase
    derivation — without changing the query fact at the root.
    """
    _require_projected(program)
    _require_positive(program)
    if summaries is None:
        summaries = query_rooted_summaries(program)
    query_pred = program.query.atom.predicate
    query_arity = program.query.atom.arity
    rule = program.rules[rule_index]
    head_pred = rule.head.atom.predicate
    if not rule.body:
        return None  # fact rules are data, not deletable by this test

    sigma_set: set[ArgumentProjection] = set()
    projections = program_projections(program)
    for occ, proj in projections.items():
        if proj.right == head_pred:
            sigma_set.update(summaries.by_occurrence.get(occ, frozenset()))
    if head_pred == query_pred:
        sigma_set.add(identity_projection(query_pred, query_arity))
    if not sigma_set:
        return None  # unreachable; the cascade removes it more cheaply

    remaining = program.without_rules([rule_index]).to_program()
    plain_rule = rule.to_rule()
    options = EngineOptions(max_iterations=max_iterations)

    for sigma in sigma_set:
        try:
            constrained = _contribution_substitution(plain_rule, sigma, query_arity)
        except _Unrealizable:
            continue
        if constrained is None:
            return None
        subst, representatives = constrained
        instance = plain_rule.substitute(subst)
        ground_head, ground_body, _ = skolemize(instance)
        edb = Database.from_facts(ground_body)
        result = evaluate(remaining, edb, options)
        required = tuple(ground_head.args[j].value for j in representatives)  # type: ignore[union-attr]
        if required not in result.facts(query_pred):
            return None
    return f"uniform-query-equivalence chase (head {head_pred}, {len(sigma_set)} summaries)"


def cascade(program: AdornedProgram) -> DeletionReport:
    """Post-deletion clean-up (Examples 7 and 8).

    Repeatedly drop (a) rules whose body mentions an *unproductive*
    derived predicate — one that can never hold a fact because it has
    no defining rules (Example 7: "there are now no rules defining
    p1") or only rules that recurse through unproductive predicates
    (Example 8: "the fourth rule can now be dropped since there is no
    exit rule") — and (b) rules whose head predicate is not reachable
    from the query.

    Note on equivalence strength: unlike the Lemma 5.1/5.3 deletions,
    the cascade assumes derived predicates start *empty*, so it
    preserves (plain) query equivalence, the section-2 notion the
    optimizer's end-to-end guarantee is stated in — not uniform
    equivalence, whose inputs may pre-populate IDB predicates.
    """
    rules = list(program.rules)
    query_pred = program.query.atom.predicate
    deleted: list[Deletion] = []
    changed = True
    while changed:
        changed = False
        # Productive predicates: least fixpoint of "some rule's derived
        # body literals are all productive" (base literals can always
        # be satisfied by some EDB).
        productive: set[str] = set()
        grew = True
        while grew:
            grew = False
            for r in rules:
                head = r.head.atom.predicate
                if head in productive:
                    continue
                if all(
                    (not lit.derived) or lit.atom.predicate in productive
                    for lit in r.body
                ):
                    productive.add(head)
                    grew = True
        kept: list[AdornedRule] = []
        for r in rules:
            dead = next(
                (
                    lit.atom.predicate
                    for lit in r.body
                    if lit.derived and lit.atom.predicate not in productive
                ),
                None,
            )
            if dead is not None:
                deleted.append(Deletion(r, f"unproductive predicate {dead}"))
                changed = True
            else:
                kept.append(r)
        rules = kept

        reachable = {query_pred}
        frontier = [query_pred]
        by_head: dict[str, list[AdornedRule]] = {}
        for r in rules:
            by_head.setdefault(r.head.atom.predicate, []).append(r)
        while frontier:
            pred = frontier.pop()
            for r in by_head.get(pred, ()):
                for lit in (*r.body, *r.negative):
                    if lit.derived and lit.atom.predicate not in reachable:
                        reachable.add(lit.atom.predicate)
                        frontier.append(lit.atom.predicate)
        kept = []
        for r in rules:
            if r.head.atom.predicate not in reachable:
                deleted.append(Deletion(r, "unreachable from query"))
                changed = True
            else:
                kept.append(r)
        rules = kept
    return DeletionReport(program.with_rules(rules), tuple(deleted))


def delete_rules(
    program: AdornedProgram,
    method: str = "lemma53",
    use_chase: bool = True,
    use_sagiv: bool = True,
) -> DeletionReport:
    """Drive the deletion tests to a fixpoint (Algorithm 5.2 + chase).

    *method* selects the summary test: ``"lemma51"`` or ``"lemma53"``
    (the default; it subsumes 5.1).  Per candidate rule the tests run
    cheapest-first: Sagiv's uniform-equivalence chase (*use_sagiv*,
    Example 4 — the paper notes its algorithm "complements Sagiv's"),
    then the summary test, then the Example-6 uniform-query-equivalence
    chase (*use_chase*).  After every deletion the cascade clean-up runs
    and all summaries are recomputed.
    """
    _require_projected(program)
    _require_positive(program)
    if method not in ("lemma51", "lemma53"):
        raise TransformError(f"unknown deletion method {method!r}")
    test = lemma51_deletable if method == "lemma51" else lemma53_deletable

    deleted: list[Deletion] = []
    report = cascade(program)
    deleted.extend(report.deleted)
    program = report.program

    progress = True
    while progress:
        progress = False
        summaries = query_rooted_summaries(program)
        plain = program.to_program()
        for ri in range(len(program.rules)):
            reason = None
            if use_sagiv and program.rules[ri].body and rule_deletable_uniform(plain, ri):
                reason = "sagiv uniform equivalence"
            if reason is None:
                reason = test(program, ri, summaries)
            if reason is None and use_chase:
                reason = chase_deletable(program, ri, summaries)
            if reason is not None:
                deleted.append(Deletion(program.rules[ri], reason))
                program = program.without_rules([ri])
                report = cascade(program)
                deleted.extend(report.deleted)
                program = report.program
                progress = True
                break
    return DeletionReport(program, tuple(deleted))
