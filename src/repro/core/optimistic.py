"""Optimistic derivations and the Theorem 5.2 test (section 5).

The paper defines an *optimistic derivation*: starting from the EDB, a
rule may fire as soon as **one** body literal is instantiated to a
known fact — the remaining literals are assumed.  The *optimistic
answer* is the set of query facts derivable this way.  Theorem 5.2:
with ``EDB_r`` the frozen body of a candidate rule ``r`` and
``IDB2 ⊆ IDB1 - {r}``, if the optimistic answer of
``(Q, EDB_r, IDB1)`` is contained in the ordinary answer of
``(Q, EDB_r, IDB2)``, then deleting ``r`` preserves uniform query
equivalence.

**Finite abstraction.**  A literal optimistic fixpoint ranges over all
ground instances of the assumed variables, which is unbounded.  We
follow the standard abstraction: every unconstrained variable is
instantiated to a single *wildcard* value ``★`` that unifies with
anything (a labelled "any value" null).  This over-approximates the
optimistic fact set (it forgets correlations between two wildcards and
widens repeated-variable matches), so the containment test remains a
*sound* sufficient condition — merely more conservative than the
theorem's ideal.  In particular an optimistic query fact containing
``★`` can never be contained in a concrete answer, so it fails the
test, which is exactly the conservative behaviour we want.

The test is noticeably weaker than the summary+chase combination in
:mod:`repro.core.deletion` (e.g. it rejects Example 6's deletions
because the recursive query rule optimistically fires from its EDB
literal alone, producing a wildcard answer); it is provided because the
paper states it, and serves as a comparison point in the benchmarks.
"""

from __future__ import annotations

from typing import Optional

from ..datalog.ast import Atom, Program, Rule
from ..datalog.database import Database
from ..datalog.errors import TransformError
from ..datalog.terms import Constant, Variable
from ..datalog.unify import skolemize
from ..engine.evaluator import EngineOptions, evaluate

__all__ = ["WILDCARD", "optimistic_fixpoint", "optimistic_answer", "theorem52_deletable"]


class _Wildcard:
    """The ``★`` value: matches any constant during optimistic firing."""

    _instance: Optional["_Wildcard"] = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "★"


WILDCARD = _Wildcard()


def _match_optimistic(literal: Atom, row: tuple) -> Optional[dict]:
    """Match one body literal against a known (possibly wildcarded)
    fact; ``★`` in the fact unifies with anything.

    Repeated variables: a variable first bound to ``★`` is refined by a
    later concrete position; a concrete binding absorbs a later ``★``.
    """
    if literal.arity != len(row):
        return None
    subst: dict[Variable, object] = {}
    for term_, value in zip(literal.args, row):
        if isinstance(term_, Constant):
            if value is not WILDCARD and value != term_.value:
                return None
        else:
            bound = subst.get(term_, _UNSET)
            if bound is _UNSET or bound is WILDCARD:
                subst[term_] = value
            elif value is not WILDCARD and bound != value:
                return None
    return subst


_UNSET = object()


def optimistic_fixpoint(
    program: Program, edb: Database, max_facts: int = 200_000
) -> dict[str, frozenset[tuple]]:
    """All optimistically derivable facts, per predicate.

    Facts live over the input's active domain extended with ``★``; the
    fixpoint is therefore finite.  *max_facts* is a defensive cap.
    """
    known: dict[str, set[tuple]] = {}
    for pred, row in edb.facts():
        known.setdefault(pred, set()).add(tuple(row))

    def head_fact(rule: Rule, subst: dict) -> tuple:
        return tuple(
            a.value
            if isinstance(a, Constant)
            else subst.get(a, WILDCARD)
            for a in rule.head.args
        )

    total = sum(len(s) for s in known.values())
    changed = True
    while changed:
        changed = False
        for rule in program.rules:
            if not rule.body:
                fact = head_fact(rule, {})
                bucket = known.setdefault(rule.head.predicate, set())
                if fact not in bucket:
                    bucket.add(fact)
                    total += 1
                    changed = True
                continue
            for literal in rule.body:
                for row in list(known.get(literal.predicate, ())):
                    subst = _match_optimistic(literal, row)
                    if subst is None:
                        continue
                    fact = head_fact(rule, subst)
                    bucket = known.setdefault(rule.head.predicate, set())
                    if fact not in bucket:
                        bucket.add(fact)
                        total += 1
                        if total > max_facts:
                            raise TransformError("optimistic fixpoint exceeded cap")
                        changed = True
    return {p: frozenset(s) for p, s in known.items()}


def optimistic_answer(program: Program, edb: Database) -> frozenset[tuple]:
    """The optimistic answer for the program's query.

    Returns the full fact set of the query predicate (selections from
    constants in the query atom are applied; a ``★`` position matches a
    query constant, conservatively).
    """
    if program.query is None:
        raise TransformError("program has no query")
    facts = optimistic_fixpoint(program, edb).get(program.query.predicate, frozenset())
    q = program.query
    out = set()
    for row in facts:
        ok = True
        for term_, value in zip(q.args, row):
            if isinstance(term_, Constant) and value is not WILDCARD and value != term_.value:
                ok = False
                break
        if ok:
            out.add(row)
    return frozenset(out)


def theorem52_deletable(
    program: Program,
    rule_index: int,
    idb2_indexes: Optional[frozenset[int]] = None,
) -> bool:
    """The Theorem 5.2 sufficient condition (wildcard abstraction).

    *idb2_indexes* selects the subset ``IDB2 ⊆ IDB1 - {r}`` used for
    the concrete evaluation; by default the whole remainder.  Returns
    True when the (abstracted) optimistic answer over the frozen body
    of the candidate rule is contained in the concrete answer of the
    remainder — deleting the rule then preserves uniform query
    equivalence.
    """
    if program.query is None:
        raise TransformError("theorem 5.2 requires a query")
    rule = program.rules[rule_index]
    if not rule.body:
        return False
    _, ground_body, _ = skolemize(rule)
    edb = Database.from_facts(ground_body)

    optimistic = optimistic_answer(program, edb)
    if any(WILDCARD in row for row in optimistic):
        return False

    if idb2_indexes is None:
        remainder = program.without_rule(rule_index)
    else:
        if rule_index in idb2_indexes:
            raise TransformError("IDB2 must not contain the candidate rule")
        remainder = program.with_rules(
            [r for i, r in enumerate(program.rules) if i in idb2_indexes]
        )
    result = evaluate(
        remainder.with_query(None), edb, EngineOptions(max_iterations=10_000)
    )
    concrete = result.facts(program.query.predicate) | edb.rows(program.query.predicate)
    return optimistic <= concrete
