"""Argument projections and summaries (section 5).

An *argument projection* ``(p^a, p1^a1)`` is an undirected bipartite
graph whose nodes are the needed (``n``) argument positions of the two
adorned literals, with an edge ``(i, j)`` whenever the same variable
occurs at the i-th needed position of ``p^a`` and the j-th needed
position of ``p1^a1``.  For every rule there is one projection from the
head to each derived body-literal occurrence.

Projections compose by merging the shared middle literal's nodes; the
*summary* of a composite keeps an edge between two end nodes iff a path
connects them in the composite.  Because the positions of each predicate
are finite, the set of possible summaries is finite even when the
program is recursive — this is what makes the deletion tests of
Lemma 5.1/5.3 effective (Algorithm 5.1 saturates the summary set).

Everything here operates on *projected* adorned programs (Lemma 3.2
applied), so the argument positions of every atom are exactly its
needed positions; the position indexes below are therefore plain
``0..arity-1`` indexes of the projected atoms, matching the paper's
convention of "ignoring the d's" when indexing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

from ..datalog.errors import TransformError
from ..datalog.terms import Variable
from .adornment import AdornedProgram, AdornedRule

__all__ = [
    "ArgumentProjection",
    "Occurrence",
    "identity_projection",
    "head_body_projection",
    "program_projections",
    "summary_closure",
    "QueryRootedSummaries",
    "query_rooted_summaries",
]

#: A body-literal occurrence: (rule index, body index).  This is the
#: paper's "occurrence number" ``p.n`` in positional form.
Occurrence = tuple[int, int]


class _UnionFind:
    """Minimal union-find over hashable nodes."""

    def __init__(self):
        self._parent: dict = {}

    def find(self, x):
        parent = self._parent
        parent.setdefault(x, x)
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, x, y) -> None:
        rx, ry = self.find(x), self.find(y)
        if rx != ry:
            self._parent[rx] = ry

    def connected(self, x, y) -> bool:
        return self.find(x) == self.find(y)


def _endpoint_summary(
    uf: "_UnionFind", left_nodes: set, right_nodes: set
) -> tuple[frozenset, frozenset, frozenset]:
    """Summarize a composite's connectivity onto its end literals.

    Returns ``(edges, left_links, right_links)``: the left–right
    connected pairs, plus the *hidden* same-side connected pairs — pairs
    the bipartite edge graph alone does not reconnect (their only paths
    run through middle nodes no end node reaches).  Hidden links are
    exactly what pairwise summarization used to lose; storing only the
    hidden ones keeps the representation canonical (a pure function of
    the composite's end-to-end connectivity).
    """
    edges = frozenset(
        (i, k)
        for i in left_nodes
        for k in right_nodes
        if uf.connected(("L", i), ("R", k))
    )
    implied = _UnionFind()
    for i, k in edges:
        implied.union(("L", i), ("R", k))

    def hidden(nodes: set, tag: str) -> frozenset:
        ordered = sorted(nodes)
        return frozenset(
            (a, b)
            for x, a in enumerate(ordered)
            for b in ordered[x + 1 :]
            if uf.connected((tag, a), (tag, b))
            and not implied.connected((tag, a), (tag, b))
        )

    return edges, hidden(left_nodes, "L"), hidden(right_nodes, "R")


@dataclass(frozen=True, slots=True)
class ArgumentProjection:
    """An argument projection between two adorned predicate names.

    ``edges`` relates argument positions of ``left`` to positions of
    ``right`` (0-based, over projected atoms).  The occurrence numbers
    the paper attaches to literals are kept *outside* the projection
    (see :func:`program_projections`), matching the remark that
    numbering "does not affect the way argument projections are
    composed".

    ``left_links`` / ``right_links`` record *hidden* same-side
    connectivity: pairs of left (resp. right) positions that the
    underlying composite connects, but only through middle nodes that
    reach no node of the opposite end — so the bipartite ``edges``
    alone cannot reconstruct the connection.  Without them, summarizing
    a prefix of a composition chain would forget that two middle
    positions were merged, and a later factor could silently lose
    end-to-end edges (summaries would no longer be lossless for
    connectivity).  Pairs already implied by ``edges`` (two positions
    sharing a partner on the other side) are never stored, keeping the
    representation canonical and the common no-hidden-links case
    identical to the plain bipartite form.
    """

    left: str
    right: str
    edges: frozenset[tuple[int, int]]
    left_links: frozenset[tuple[int, int]] = frozenset()
    right_links: frozenset[tuple[int, int]] = frozenset()

    def left_nodes(self) -> set:
        return {i for i, _ in self.edges} | {a for pair in self.left_links for a in pair}

    def right_nodes(self) -> set:
        return {k for _, k in self.edges} | {a for pair in self.right_links for a in pair}

    def compose(self, other: "ArgumentProjection") -> "ArgumentProjection":
        """The summary of the composite ``self ∘ other``.

        Requires ``self.right == other.left``.  The composite identifies
        the middle literal's nodes; the summary has an edge ``(i, k)``
        iff a path connects left node *i* to right node *k* — note paths
        may zig-zag (left–mid–left–mid–right), so this is genuine graph
        connectivity, not relational composition.  Hidden same-side
        links of both factors participate in (and are reproduced by)
        the connectivity computation, which is what makes pairwise
        composition agree with merging a whole chain at once.
        """
        if self.right != other.left:
            raise TransformError(
                f"cannot compose ({self.left},{self.right}) with "
                f"({other.left},{other.right})"
            )
        # Union-find over nodes tagged L/M/R.
        uf = _UnionFind()
        for i, j in self.edges:
            uf.union(("L", i), ("M", j))
        for a, b in self.left_links:
            uf.union(("L", a), ("L", b))
        for a, b in self.right_links:
            uf.union(("M", a), ("M", b))
        for j, k in other.edges:
            uf.union(("M", j), ("R", k))
        for a, b in other.left_links:
            uf.union(("M", a), ("M", b))
        for a, b in other.right_links:
            uf.union(("R", a), ("R", b))
        # End nodes of the composite are self's left side (tag L) and
        # other's right side (tag R) — exactly the tags the union-find
        # above used, so the summary reads connectivity off directly.
        edges, left_links, right_links = _endpoint_summary(
            uf, self.left_nodes(), other.right_nodes()
        )
        return ArgumentProjection(
            self.left, other.right, edges, left_links, right_links
        )

    def maps_position(self, i: int) -> frozenset[int]:
        """Right positions connected to left position *i*."""
        return frozenset(k for left, k in self.edges if left == i)

    def __str__(self) -> str:
        pairs = ", ".join(f"{i}~{j}" for i, j in sorted(self.edges))
        return f"({self.left} -> {self.right}: {pairs})"


def identity_projection(predicate: str, arity: int) -> ArgumentProjection:
    """The identity projection of a predicate onto itself.

    Corresponds to the paper's "trivial rule p(X) :- p(X)" used in
    Example 7 and to the empty composition chain.
    """
    return ArgumentProjection(
        predicate, predicate, frozenset((i, i) for i in range(arity))
    )


def head_body_projection(rule: AdornedRule, body_index: int) -> ArgumentProjection:
    """The projection from the rule head to one derived body literal.

    Besides the cross edges (same variable at a head and a body
    position), a variable repeated within one atom but absent from the
    other contributes a hidden same-side link: the positions are merged
    by the variable, yet no edge records it — precisely the information
    pairwise summarization needs to stay lossless (see
    :class:`ArgumentProjection`).
    """
    head, lit = rule.head, rule.body[body_index]
    uf = _UnionFind()
    left_nodes: set[int] = set()
    right_nodes: set[int] = set()
    by_var: dict[Variable, list] = {}
    for i, harg in enumerate(head.atom.args):
        if isinstance(harg, Variable):
            by_var.setdefault(harg, []).append(("L", i))
            left_nodes.add(i)
    for j, barg in enumerate(lit.atom.args):
        if isinstance(barg, Variable):
            by_var.setdefault(barg, []).append(("R", j))
            right_nodes.add(j)
    for nodes in by_var.values():
        for node in nodes[1:]:
            uf.union(nodes[0], node)
    edges, left_links, right_links = _endpoint_summary(uf, left_nodes, right_nodes)
    return ArgumentProjection(
        head.atom.predicate, lit.atom.predicate, edges, left_links, right_links
    )


def program_projections(
    program: AdornedProgram,
) -> dict[Occurrence, ArgumentProjection]:
    """One projection per derived body-literal occurrence.

    Requires the program to be projected (all positions needed).
    """
    if not program.projected:
        raise TransformError("argument projections require a projected program")
    out: dict[Occurrence, ArgumentProjection] = {}
    for ri, rule in enumerate(program.rules):
        for bi, lit in enumerate(rule.body):
            if lit.derived:
                out[(ri, bi)] = head_body_projection(rule, bi)
    return out


def summary_closure(
    projections: Iterable[ArgumentProjection],
    max_summaries: int = 100_000,
) -> frozenset[ArgumentProjection]:
    """Algorithm 5.1: the set of all summaries of composite argument
    projections generated from *projections*.

    1. every argument projection is a summary;
    2. the summary of a composition of summaries is a summary;
    until no new summaries can be generated.  Termination is guaranteed
    because summaries over a finite set of predicates/positions form a
    finite set; *max_summaries* is a defensive cap.
    """
    summaries: set[ArgumentProjection] = set(projections)
    by_left: dict[str, set[ArgumentProjection]] = {}
    for s in summaries:
        by_left.setdefault(s.left, set()).add(s)
    worklist = list(summaries)
    while worklist:
        s = worklist.pop()
        for t in list(by_left.get(s.right, ())):
            c = s.compose(t)
            if c not in summaries:
                summaries.add(c)
                by_left.setdefault(c.left, set()).add(c)
                worklist.append(c)
                if len(summaries) > max_summaries:
                    raise TransformError("summary closure exceeded cap")
        # compositions where s is the right factor
        for t in list(summaries):
            if t.right == s.left:
                c = t.compose(s)
                if c not in summaries:
                    summaries.add(c)
                    by_left.setdefault(c.left, set()).add(c)
                    worklist.append(c)
                    if len(summaries) > max_summaries:
                        raise TransformError("summary closure exceeded cap")
    return frozenset(summaries)


@dataclass(frozen=True)
class QueryRootedSummaries:
    """All summaries of composite projections that start at the query.

    ``by_predicate[p]`` are the summaries of chains ``(q, ..., p)`` over
    any occurrences; ``by_occurrence[o]`` are the summaries of chains
    whose *last* factor is the projection into occurrence *o* — the set
    Lemma 5.1 quantifies over ("every composite argument projection
    ``(q^a, ...), ..., (..., p.n^c)``").  For occurrences of the query
    predicate itself, the empty chain contributes the identity to
    ``by_predicate`` but not to ``by_occurrence`` (a chain ending *at*
    an occurrence has at least one factor).
    """

    query: str
    by_predicate: Mapping[str, frozenset[ArgumentProjection]]
    by_occurrence: Mapping[Occurrence, frozenset[ArgumentProjection]]


def query_rooted_summaries(
    program: AdornedProgram,
    projections: Optional[dict[Occurrence, ArgumentProjection]] = None,
) -> QueryRootedSummaries:
    """Compute the query-rooted summary sets by fixpoint.

    Start with the identity on the query predicate; repeatedly extend
    every known summary ``(q, H)`` by each projection ``(H, P)`` of an
    occurrence in a rule whose head is ``H``.
    """
    if projections is None:
        projections = program_projections(program)
    query_pred = program.query.atom.predicate
    by_pred: dict[str, set[ArgumentProjection]] = {
        query_pred: {identity_projection(query_pred, program.query.atom.arity)}
    }
    by_occ: dict[Occurrence, set[ArgumentProjection]] = {o: set() for o in projections}

    changed = True
    while changed:
        changed = False
        for occ, proj in projections.items():
            head_pred = proj.left
            for sigma in list(by_pred.get(head_pred, ())):
                ext = sigma.compose(proj)
                if ext not in by_occ[occ]:
                    by_occ[occ].add(ext)
                    changed = True
                if ext not in by_pred.setdefault(proj.right, set()):
                    by_pred[proj.right].add(ext)
                    changed = True
    return QueryRootedSummaries(
        query=query_pred,
        by_predicate={p: frozenset(s) for p, s in by_pred.items()},
        by_occurrence={o: frozenset(s) for o, s in by_occ.items()},
    )
