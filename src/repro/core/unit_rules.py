"""Unit rules and the *covers* relation (section 5, preliminaries).

A *unit rule* is a rule of the form ``p^a(t) :- p1^a1(t1)`` — a single
derived literal as the whole body.  The rule-deletion optimization
exploits unit rules: Lemma 5.1 uses one, Lemma 5.3 a set of them.

``q^a1`` *covers* ``q^a`` if both adornments have the same length and
each ``n`` of ``a`` corresponds to an ``n`` of ``a1`` (so don't-care
positions of ``a`` may be needed in ``a1``).  Intuitively every tuple
of ``q^a1`` is also a tuple of ``q^a`` (after dropping the extra
columns), so the unit rule ``q^a(t) :- q^a1(t1)`` may always be added —
the paper notes that with such rules added, the deletion algorithm
"often captures the essence of pushing projections" (it is what lets
Example 6's recursive rules be discarded).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.ast import Atom
from ..datalog.errors import TransformError
from ..datalog.terms import Variable
from .adornment import (
    Adornment,
    AdornedLiteral,
    AdornedProgram,
    AdornedRule,
    split_adorned,
)

__all__ = [
    "is_unit_rule",
    "covering_unit_rule",
    "add_covering_unit_rules",
    "canonical_rule_key",
    "UnitRuleReport",
]


def is_unit_rule(rule: AdornedRule) -> bool:
    """True iff the rule body is a single derived literal (and no
    negated literals)."""
    return len(rule.body) == 1 and rule.body[0].derived and not rule.negative


def covering_unit_rule(
    target: str, target_ad: Adornment, source: str, source_ad: Adornment
) -> AdornedRule:
    """Build the unit rule ``target@a(t) :- source@a1(t1)`` in projected
    form, where ``a1`` covers ``a`` and both adorned predicates share a
    base predicate.

    Shared needed positions use the same variable; positions needed in
    the source but existential in the target become fresh distinct
    variables on the source side only (they are projected away by the
    head).
    """
    if not source_ad.covers(target_ad):
        raise TransformError(f"{source_ad} does not cover {target_ad}")
    names = {i: Variable(f"V{i+1}") for i in source_ad.needed_positions}
    head_args = tuple(names[i] for i in target_ad.needed_positions)
    body_args = tuple(names[i] for i in source_ad.needed_positions)
    head = AdornedLiteral(Atom(target, head_args), target_ad, derived=True)
    body = AdornedLiteral(Atom(source, body_args), source_ad, derived=True)
    return AdornedRule(head, (body,))


def canonical_rule_key(rule: AdornedRule) -> str:
    """A renaming-invariant key for rule identity.

    Variables are renumbered in order of first occurrence, so two rules
    that differ only in variable names get the same key.
    """
    mapping: dict[Variable, Variable] = {}
    plain = rule.to_rule()
    for v in plain.variables():
        mapping[v] = Variable(f"C{len(mapping)}")
    return str(plain.substitute(mapping))


@dataclass(frozen=True)
class UnitRuleReport:
    """Result of :func:`add_covering_unit_rules`."""

    program: AdornedProgram
    added: tuple[AdornedRule, ...]


def add_covering_unit_rules(
    adorned: AdornedProgram, only_query: bool = False
) -> UnitRuleReport:
    """Add every missing covering unit rule between adorned versions of
    the same base predicate (projected programs only).

    With ``only_query=True``, only unit rules *defining the query
    predicate* are added — the form Lemma 5.1 consumes.  The default
    adds all covering pairs, which is what Lemma 5.3 can exploit.

    Unit rules that are already present (up to variable renaming, which
    the canonical construction makes syntactic) are not duplicated, and
    a predicate never gets the trivial rule ``p :- p``.
    """
    if not adorned.projected:
        raise TransformError("add unit rules after projection pushing (Lemma 3.2)")

    # Collect the adorned versions present, grouped by base predicate.
    versions: dict[str, dict[str, Adornment]] = {}

    def note(lit: AdornedLiteral) -> None:
        if lit.derived:
            base, ad = split_adorned(lit.atom.predicate)
            if ad is not None:
                versions.setdefault(base, {})[lit.atom.predicate] = ad

    for r in adorned.rules:
        note(r.head)
        for lit in r.body:
            note(lit)
    note(adorned.query)

    existing = {canonical_rule_key(r) for r in adorned.rules}
    query_pred = adorned.query.atom.predicate
    added: list[AdornedRule] = []
    for base, preds in versions.items():
        for target, target_ad in preds.items():
            if only_query and target != query_pred:
                continue
            for source, source_ad in preds.items():
                if source == target:
                    continue
                if not source_ad.covers(target_ad):
                    continue
                unit = covering_unit_rule(target, target_ad, source, source_ad)
                key = canonical_rule_key(unit)
                if key not in existing:
                    existing.add(key)
                    added.append(unit)

    if not added:
        return UnitRuleReport(adorned, ())
    return UnitRuleReport(adorned.with_rules(adorned.rules + tuple(added)), tuple(added))
