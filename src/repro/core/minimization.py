"""Conjunctive body minimization: drop redundant body literals.

Unfolding (and, less often, projection pushing) can leave a rule body
with literals that constrain nothing, e.g. after splicing ``s(X) :-
e(X, Y)`` and ``q(X, X) :- e(X, Y)`` into their consumer::

    r@nd(X) :- e(X, _U3), e(X, _U2), e(X, Y).

All three literals assert the same thing — "X has an e-successor" —
but the engine pays the full cross product of their matches, so the
"optimized" program can do *more* duplicate-elimination work than the
original (the failure mode of the random-program work-bound test).

A body literal ``L`` is redundant when some other literal ``L'`` of the
same body subsumes it: there is a substitution θ, defined only on the
variables *private* to ``L`` (occurring in no other literal, nor in the
head, negated literals, or built-ins), with ``Lθ = L'``.  Dropping
``L`` is then answer-preserving on every database: the identity
extended by θ is a homomorphism from the old body onto the new one
fixing every shared variable, so for each assignment of the non-private
variables the old body is satisfiable iff the new one is — and heads,
negated literals and built-ins only see non-private variables.  (This
is the classical conjunctive-query minimization step of Chandra and
Merlin, restricted to the head-preserving homomorphisms that make it
sound for rules.)

The pass iterates to a fixpoint per rule, so chains of redundant
literals collapse; it never touches negated or built-in literals.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.builtins import is_builtin
from ..datalog.terms import Constant, Variable
from .adornment import AdornedProgram, AdornedRule

__all__ = ["MinimizationReport", "minimize_rule_bodies"]


@dataclass(frozen=True)
class MinimizationReport:
    """The minimized program plus ``(before, after)`` per changed rule."""

    program: AdornedProgram
    changed: tuple[tuple[AdornedRule, AdornedRule], ...]

    @property
    def removed_literals(self) -> int:
        return sum(
            len(before.body) - len(after.body) for before, after in self.changed
        )


def _private_variables(rule: AdornedRule, index: int) -> frozenset[Variable]:
    """Variables occurring in body literal *index* and nowhere else.

    "Elsewhere" spans the head, every other body literal (including
    built-ins, which live in ``body``), and every negated literal — any
    context that could observe the variable's value.
    """
    own = {a for a in rule.body[index].atom.args if isinstance(a, Variable)}
    others = set()
    for i, lit in enumerate(rule.body):
        if i != index:
            others.update(a for a in lit.atom.args if isinstance(a, Variable))
    others.update(a for a in rule.head.atom.args if isinstance(a, Variable))
    for lit in rule.negative:
        others.update(a for a in lit.atom.args if isinstance(a, Variable))
    return frozenset(own - others)


def _subsumed_by(rule: AdornedRule, index: int) -> bool:
    """Is body literal *index* subsumed by another literal of the body
    via a substitution on its private variables only?"""
    literal = rule.body[index]
    if is_builtin(literal.atom.predicate):
        return False
    private = _private_variables(rule, index)
    for j, other in enumerate(rule.body):
        if j == index or other.atom.predicate != literal.atom.predicate:
            continue
        if other.atom.arity != literal.atom.arity:
            continue
        theta: dict[Variable, object] = {}
        for mine, theirs in zip(literal.atom.args, other.atom.args):
            if isinstance(mine, Constant):
                if mine != theirs:
                    break
            elif mine in private:
                if mine in theta:
                    if theta[mine] != theirs:
                        break
                else:
                    theta[mine] = theirs
            elif mine != theirs:
                # a shared variable must stay fixed: the homomorphism
                # may only move private variables
                break
        else:
            return True
    return False


def _minimize_rule(rule: AdornedRule) -> AdornedRule:
    current = rule
    while True:
        drop = next(
            (
                i
                for i in range(len(current.body))
                if len(current.body) > 1 and _subsumed_by(current, i)
            ),
            None,
        )
        if drop is None:
            return current
        current = AdornedRule(
            current.head,
            current.body[:drop] + current.body[drop + 1 :],
            current.negative,
        )


def minimize_rule_bodies(program: AdornedProgram) -> MinimizationReport:
    """Minimize every rule body of *program* (see module docstring)."""
    changed: list[tuple[AdornedRule, AdornedRule]] = []
    rules: list[AdornedRule] = []
    for rule in program.rules:
        minimized = _minimize_rule(rule)
        if minimized is not rule:
            changed.append((rule, minimized))
        rules.append(minimized)
    if not changed:
        return MinimizationReport(program, ())
    return MinimizationReport(program.with_rules(rules), tuple(changed))
