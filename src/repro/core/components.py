"""Phase 1 — connected components and boolean subqueries (section 3.1).

Within an adorned rule body, two variables are *connected* if they occur
in the same predicate occurrence (extended transitively), and two
predicate occurrences are connected if they share a pair of connected
variables — with the constraint that a connection through the *head*
only counts via variables at needed (``n``) head positions.

The body therefore splits into connected components.  Components that do
not contain the head are existential subqueries solved independently of
any head bindings; each such component ``C_i`` is replaced by an arity-0
*boolean* literal ``B_i`` and a new rule ``B_i :- C_i`` is added
(Lemma 3.1: the transformation preserves query equivalence, and
afterwards every rule has a single connected component).

At run time, a boolean rule is retired from the fixpoint as soon as it
fires once — the bottom-up analogue of Prolog's cut; see
``EngineOptions.cut_predicates``.

Two modes are provided:

``paper_mode=True`` (default; used by the pipeline)
    Exactly the paper's Example 2: components are anchored only by
    *needed* head variables.  A head variable at an existential (``d``)
    position whose component is extracted loses its binding and is
    replaced by a fresh variable (the paper writes ``_``); the resulting
    rule is *unsafe* at that head position and only becomes a valid
    Datalog program after projection pushing drops the position.

``paper_mode=False``
    A conservative variant anchored by *all* head variables.  Output is
    always a safe, directly evaluable program (useful when projection
    pushing is not applied).
"""

from __future__ import annotations

from dataclasses import dataclass
from ..datalog.ast import Atom
from ..datalog.terms import FreshVariables, Variable
from .adornment import Adornment, AdornedLiteral, AdornedProgram, AdornedRule

__all__ = ["ComponentSplit", "split_components", "rule_components"]


class _UnionFind:
    def __init__(self):
        self._parent: dict = {}

    def find(self, x):
        parent = self._parent.setdefault(x, x)
        if parent is x or parent == x:
            return x
        root = self.find(parent)
        self._parent[x] = root
        return root

    def union(self, x, y) -> None:
        rx, ry = self.find(x), self.find(y)
        if rx != ry:
            self._parent[rx] = ry

    def same(self, x, y) -> bool:
        return self.find(x) == self.find(y)


def rule_components(rule: AdornedRule) -> list[list[int]]:
    """Partition the body literal indexes of *rule* into connected
    components; the component containing (or anchored to) the head is
    not distinguished here — see :func:`split_components`.

    Literals with no variables (ground or arity-0) are each their own
    component.  Negated literals contribute to variable connectivity
    (their bindings come from the positive literals around them) but
    are not listed — :func:`split_components` keeps each negated
    literal with the component its variables belong to.
    """
    uf = _UnionFind()
    for lit in (*rule.body, *rule.negative):
        vars_ = lit.atom.variables()
        for v in vars_[1:]:
            uf.union(vars_[0], v)
    groups: dict = {}
    singles: list[list[int]] = []
    for i, lit in enumerate(rule.body):
        vars_ = lit.atom.variables()
        if not vars_:
            singles.append([i])
        else:
            groups.setdefault(uf.find(vars_[0]), []).append(i)
    return list(groups.values()) + singles


@dataclass(frozen=True)
class ComponentSplit:
    """Result of the phase-1 rewriting."""

    program: AdornedProgram
    #: Boolean predicate names introduced (pass to the engine as cut
    #: predicates).
    booleans: frozenset[str]
    #: Number of source rules whose body was actually split.
    rules_split: int


def split_components(
    adorned: AdornedProgram, paper_mode: bool = True
) -> ComponentSplit:
    """Apply the section-3.1 rewriting to every rule of *adorned*."""
    from .adornment import split_adorned

    existing: set[str] = set()
    for r in adorned.rules:
        for lit in (r.head, *r.body):
            existing.add(lit.atom.predicate)
            existing.add(split_adorned(lit.atom.predicate)[0])
    counter = 1

    def fresh_boolean() -> str:
        nonlocal counter
        while True:
            name = f"bool{counter}"
            counter += 1
            if name not in existing:
                existing.add(name)
                return name

    new_rules: list[AdornedRule] = []
    boolean_rules: list[AdornedRule] = []
    booleans: set[str] = set(adorned.boolean_predicates)
    rules_split = 0

    for rule in adorned.rules:
        head = rule.head
        if head.atom.arity == 0:
            # Boolean heads (including previously generated B_i rules):
            # the whole body already computes a single existence check,
            # so re-splitting would only wrap booleans in booleans.
            new_rules.append(rule)
            continue
        if paper_mode:
            anchor_positions = head.adornment.needed_positions
        else:
            anchor_positions = tuple(range(len(head.atom.args)))
        anchor_vars = {
            head.atom.args[i]
            for i in anchor_positions
            if i < len(head.atom.args) and isinstance(head.atom.args[i], Variable)
        }

        components = rule_components(rule)
        kept: set[int] = set()
        extracted: list[list[int]] = []
        for comp in components:
            comp_vars = {
                v for i in comp for v in rule.body[i].atom.variables()
            }
            if comp_vars & anchor_vars:
                kept.update(comp)
            elif len(comp) == 1 and rule.body[comp[0]].atom.arity == 0:
                # An arity-0 literal is already a boolean guard.
                kept.update(comp)
            else:
                extracted.append(comp)

        if not extracted:
            new_rules.append(rule)
            continue
        rules_split += 1

        def negatives_of(indexes: set[int]) -> tuple:
            """Negated literals whose variables live in the given
            positive component (safety puts every negated variable in
            some positive literal); ground negations stay in the main
            rule."""
            comp_vars = {
                v
                for i in indexes
                for v in rule.body[i].atom.variables()
            }
            return tuple(
                lit
                for lit in rule.negative
                if lit.atom.variables()
                and set(lit.atom.variables()) <= comp_vars
            )

        extracted_vars: set[Variable] = set()
        new_body: list[AdornedLiteral] = [
            lit for i, lit in enumerate(rule.body) if i in kept
        ]
        moved_negatives: set = set()
        for comp in extracted:
            name = fresh_boolean()
            booleans.add(name)
            comp_lits = tuple(rule.body[i] for i in comp)
            comp_negs = negatives_of(set(comp))
            moved_negatives.update(comp_negs)
            extracted_vars.update(v for lit in comp_lits for v in lit.atom.variables())
            boolean_head = AdornedLiteral(Atom(name, ()), Adornment(""), derived=True)
            boolean_rules.append(AdornedRule(boolean_head, comp_lits, comp_negs))
            new_body.append(AdornedLiteral(Atom(name, ()), Adornment(""), derived=True))
        remaining_negatives = tuple(
            lit for lit in rule.negative if lit not in moved_negatives
        )

        # In paper mode a head variable at a d position may have lost
        # its binding to an extracted component; replace it by a fresh
        # variable (the paper's "_").  The resulting head position is
        # unsafe until projection pushing removes it.
        new_head = head
        lost = extracted_vars - {
            v for lit in new_body for v in lit.atom.variables()
        }
        if paper_mode and lost:
            fresh = FreshVariables(avoid=rule.to_rule().variables())
            new_args = tuple(
                fresh.take() if isinstance(a, Variable) and a in lost else a
                for a in head.atom.args
            )
            new_head = AdornedLiteral(
                Atom(head.atom.predicate, new_args), head.adornment, head.derived
            )
        new_rules.append(AdornedRule(new_head, tuple(new_body), remaining_negatives))

    program = AdornedProgram(
        tuple(new_rules + boolean_rules),
        adorned.query,
        projected=adorned.projected,
        boolean_predicates=frozenset(booleans),
    )
    return ComponentSplit(program, frozenset(booleans), rules_split)
