"""Phase 2 — pushing projections by dropping existential arguments
(section 3.2, Lemma 3.2).

Every occurrence of an adorned literal ``p^a(t)`` — in rule heads, rule
bodies and the query — is consistently replaced by ``p^a(t↓)`` where
``t↓`` drops the argument positions adorned ``d``.  Lemma 3.2: the new
program computes the same answers for the query.

Only *derived* predicates are rewritten; base (EDB) literals keep their
stored arity, their ``d`` positions simply remaining as anonymous
variables.  The adornment string keeps its original length, so the
correspondence "k-th argument of the projected atom = k-th ``n`` of the
adornment" (the paper's convention after Lemma 3.2) is recoverable via
:attr:`~repro.core.adornment.Adornment.needed_positions`.

This is the transformation that turns the binary transitive-closure
recursion of Example 1 into the unary recursion of Example 3::

    query@n(X) :- a@nd(X).
    a@nd(X) :- p(X, Z), a@nd(Z).
    a@nd(X) :- p(X, Z).

Reducing the arity of a recursive predicate is the headline performance
lever (the paper cites [Bancilhon and Ramakrishnan 87]); Theorem 3.3
shows the general "can recursion be made monadic" question is
undecidable, which is why the syntactic d-dropping is the workhorse.
"""

from __future__ import annotations

from ..datalog.ast import Atom
from ..datalog.errors import TransformError
from .adornment import AdornedLiteral, AdornedProgram, AdornedRule

__all__ = ["push_projections", "project_literal"]


def project_literal(lit: AdornedLiteral) -> AdornedLiteral:
    """Drop the ``d`` argument positions of a derived adorned literal.

    Base literals are returned unchanged (their relations are stored at
    full arity).
    """
    if not lit.derived or lit.adornment.is_all_needed:
        return lit
    if len(lit.adornment) != lit.atom.arity:
        raise TransformError(
            f"literal {lit.atom} already projected (adornment {lit.adornment})"
        )
    args = tuple(lit.atom.args[i] for i in lit.adornment.needed_positions)
    return AdornedLiteral(
        Atom(lit.atom.predicate, args, span=lit.atom.span), lit.adornment, lit.derived
    )


def push_projections(adorned: AdornedProgram) -> AdornedProgram:
    """Apply Lemma 3.2 to the whole adorned program.

    Idempotent in effect but guarded: re-applying to an already
    projected program raises :class:`TransformError` to catch pipeline
    mistakes.
    """
    if adorned.projected:
        raise TransformError("program is already projected")
    rules = tuple(
        AdornedRule(
            project_literal(r.head),
            tuple(project_literal(lit) for lit in r.body),
            r.negative,  # adorned all-n; nothing to drop
        )
        for r in adorned.rules
    )
    query = project_literal(adorned.query)
    return AdornedProgram(
        rules,
        query,
        projected=True,
        boolean_predicates=adorned.boolean_predicates,
    )
