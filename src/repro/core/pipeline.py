"""The full optimization pipeline of the paper.

The phases, in the order the paper presents them:

1. **Adorn** (section 2): propagate ``n``/``d`` adornments from the
   query, producing the adorned program ``P^e,ad``.
2. **Split connected components** (section 3.1): disconnected body
   components become boolean subqueries ``B_i``, whose rules the engine
   retires once satisfied (bottom-up cut).
3. **Push projections** (section 3.2, Lemma 3.2): drop every
   existential argument position of every derived predicate.
4. **Add covering unit rules** (section 5): between adorned versions of
   the same predicate, enabling the deletion phase.
5. **Delete rules** (sections 3.3, 5): Sagiv's uniform-equivalence test,
   the Lemma 5.1/5.3 summary tests, and the Example-6
   uniform-query-equivalence chase, iterated with cascade clean-up.

The paper notes (end of section 1.2) that Magic Sets / Counting
rewritings are orthogonal and can be applied to the result; see
:mod:`repro.rewriting.magic`.

:func:`optimize` returns an :class:`OptimizationResult` carrying every
intermediate program, the deletion log, and the engine options (cut
predicates) the final program should be run with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..datalog.ast import Atom, Program
from ..datalog.database import Database
from ..datalog.terms import Variable
from ..engine.evaluator import EngineOptions, EvalResult, evaluate
from .adornment import Adornment, AdornedLiteral, AdornedProgram, adorn
from .components import ComponentSplit, split_components
from .deletion import DeletionReport, delete_rules
from .projection import push_projections
from .unit_rules import UnitRuleReport, add_covering_unit_rules

__all__ = ["OptimizationResult", "optimize"]


def _project_answers(query: Atom, adornment: Adornment, answers) -> frozenset[tuple]:
    """Project answer tuples (bindings of the query's distinct
    variables, first-occurrence order) onto the needed positions of
    *adornment*."""
    needed = set(adornment.needed_positions)
    keep: list[int] = []
    seen: set[str] = set()
    var_index = 0
    for pos, arg in enumerate(query.args):
        name = getattr(arg, "name", None)
        if name is None or name in seen:
            continue
        seen.add(name)
        if pos in needed:
            keep.append(var_index)
        var_index += 1
    return frozenset(tuple(row[i] for i in keep) for row in answers)


@dataclass(frozen=True)
class OptimizationResult:
    """Everything the pipeline produced.

    ``program`` is the final optimized plain Datalog program; run it
    with :meth:`engine_options` so boolean cut rules are retired, or use
    :meth:`evaluate` / :meth:`answers` directly.

    ``answer_positions``, when set, records that the final query atom is
    a *wider* predicate than the user's query (the pipeline inlined a
    pure-projection unit rule rather than paying a materialization pass
    for it); :meth:`answers` projects the result tuples onto these
    positions.
    """

    original: Program
    adorned: AdornedProgram
    split: Optional[ComponentSplit]
    projected: Optional[AdornedProgram]
    unit_rules: Optional[UnitRuleReport]
    deletion: Optional[DeletionReport]
    final: AdornedProgram
    answer_positions: Optional[tuple[int, ...]] = None
    #: rules removed by the θ-subsumption pre-pass (deleted, subsumer)
    subsumed: tuple = ()
    #: predicates eliminated by the unfolding post-pass
    unfolded: tuple = ()
    #: rules whose bodies lost redundant literals to conjunctive
    #: minimization, as (before, after) pairs
    minimized: tuple = ()

    @property
    def program(self) -> Program:
        return self.final.to_program()

    @property
    def cut_predicates(self) -> frozenset[str]:
        """Boolean predicates still defined in the final program."""
        defined = self.final.derived_predicates()
        return frozenset(p for p in self.final.boolean_predicates if p in defined)

    @property
    def deleted_count(self) -> int:
        return len(self.deletion.deleted) if self.deletion else 0

    def engine_options(self, **overrides) -> EngineOptions:
        return EngineOptions(cut_predicates=self.cut_predicates, **overrides)

    def evaluate(self, edb: Database, **overrides) -> EvalResult:
        """Evaluate the optimized program (with cut) over *edb*."""
        return evaluate(self.program, edb, self.engine_options(**overrides))

    def answers(self, edb: Database, **overrides) -> frozenset[tuple]:
        """Answers of the optimized program — the bindings of the
        original query's *needed* variables (existential positions were
        projected out, which is the point).

        When the pipeline ran without projection, the final query atom
        still carries its existential variables; the answer tuples are
        projected here so the result is comparable either way.
        *overrides* are forwarded to :class:`EngineOptions` (the oracle
        suite re-runs the optimized program under every strategy).
        """
        raw = self.evaluate(edb, **overrides).answers()
        if self.answer_positions is not None:
            return frozenset(
                tuple(row[i] for i in self.answer_positions) for row in raw
            )
        if self.final.projected:
            return raw
        return _project_answers(self.final.query.atom, self.final.query.adornment, raw)

    def reference_answers(self, edb: Database, **overrides) -> frozenset[tuple]:
        """Answers of the *original* program projected onto the needed
        query positions — the baseline the optimized program must
        match.  Used pervasively by the differential tests.
        """
        result = evaluate(self.original, edb, EngineOptions(**overrides))
        q = self.original.query
        assert q is not None
        return _project_answers(q, self.adorned.query.adornment, result.answers())

    def report_dict(self) -> dict:
        """A JSON-serializable summary of the run (CLI ``--json``)."""
        return {
            "original_rules": [str(r) for r in self.original.rules],
            "query": str(self.original.query) if self.original.query else None,
            "adorned_rules": [str(r) for r in self.adorned.rules],
            "boolean_predicates": sorted(self.cut_predicates),
            "unit_rules_added": [str(r) for r in self.unit_rules.added]
            if self.unit_rules
            else [],
            "deleted_rules": [
                {"rule": str(d.rule), "reason": d.reason}
                for d in (self.deletion.deleted if self.deletion else ())
            ]
            + [
                {"rule": str(rule), "reason": f"theta-subsumed by {winner}"}
                for rule, winner in self.subsumed
            ],
            "minimized_bodies": [
                {"before": str(before), "after": str(after)}
                for before, after in self.minimized
            ],
            "final_rules": [str(r) for r in self.final.rules],
            "final_query": str(self.final.query.atom),
            "answer_positions": list(self.answer_positions)
            if self.answer_positions is not None
            else None,
            "unfolded_predicates": list(self.unfolded),
        }

    def describe(self) -> str:
        """A multi-line report of what each phase did."""
        lines = [
            "== original ==",
            str(self.original),
            "",
            "== adorned (section 2) ==",
            str(self.adorned),
        ]
        if self.split is not None:
            lines += [
                "",
                f"== components split (section 3.1; {self.split.rules_split} rules split) ==",
                str(self.split.program),
            ]
        if self.projected is not None:
            lines += ["", "== projections pushed (section 3.2) ==", str(self.projected)]
        if self.unfolded:
            lines += [
                "",
                "== predicates unfolded into their consumers (section 6) ==",
                ", ".join(self.unfolded),
            ]
        if self.subsumed:
            lines += [
                "",
                "== rules removed by theta-subsumption (section 6) ==",
                *(f"{rule}   [subsumed by {winner}]" for rule, winner in self.subsumed),
            ]
        if self.minimized:
            lines += [
                "",
                "== redundant body literals minimized away ==",
                *(f"{before}   ->   {after}" for before, after in self.minimized),
            ]
        if self.unit_rules is not None and self.unit_rules.added:
            lines += [
                "",
                "== unit rules added (section 5) ==",
                *(str(r) for r in self.unit_rules.added),
            ]
        if self.deletion is not None and self.deletion.deleted:
            lines += [
                "",
                "== rules deleted (sections 3.3/5) ==",
                *(str(d) for d in self.deletion.deleted),
            ]
        lines += ["", "== final ==", str(self.final)]
        return "\n".join(lines)


def optimize(
    program: Program,
    query_ad: Optional[Adornment] = None,
    split: bool = True,
    paper_mode: bool = True,
    project: bool = True,
    unit_rules: bool = True,
    deletion: Optional[str] = "lemma53",
    use_chase: bool = True,
    use_sagiv: bool = True,
    subsumption: bool = True,
    unfold: bool = True,
    minimize_bodies: bool = True,
    validate: bool = False,
) -> OptimizationResult:
    """Run the paper's optimization pipeline on *program*.

    Phases can be switched off individually for ablation studies (the
    benchmark suite does this).  ``deletion=None`` skips phase 3
    entirely; ``paper_mode=False`` uses the conservative component
    split, which is only meaningful with ``project=False`` (the paper's
    split may leave heads unsafe until projection runs).

    ``validate=True`` arms the pass-contract sanitizer
    (:mod:`repro.analysis.validate`): after every pass its published
    invariant is asserted over the pass's output, and a violation
    raises :class:`~repro.analysis.validate.InvariantViolation` naming
    the pass and the broken rule.
    """
    if validate:
        from ..analysis.validate import check_compiled_program, check_pass

        def _check(pass_name: str, prog: AdornedProgram) -> None:
            check_pass(pass_name, prog, paper_mode=paper_mode)

    else:

        def _check(pass_name: str, prog: AdornedProgram) -> None:
            return None

    adorned = adorn(program, query_ad=query_ad)
    current = adorned
    _check("adorn", current)

    split_report: Optional[ComponentSplit] = None
    if split:
        split_report = split_components(current, paper_mode=paper_mode)
        current = split_report.program
        _check("split_components", current)

    projected: Optional[AdornedProgram] = None
    if project:
        projected = push_projections(current)
        current = projected
        _check("push_projections", current)

    subsumed: list = []
    if subsumption and project:
        # Cheap syntactic pre-pass (section 6 direction): drop rules
        # θ-subsumed by another rule — sound for uniform equivalence.
        from .subsumption import theta_subsumes

        kept: list = []
        for arule in current.rules:
            plain = arule.to_rule()
            winner = next(
                (
                    other
                    for other in current.rules
                    if other is not arule
                    and theta_subsumes(other.to_rule(), plain)
                    and (
                        not theta_subsumes(plain, other.to_rule())
                        or other in kept
                    )
                ),
                None,
            )
            if winner is not None:
                subsumed.append((arule, winner))
                continue
            kept.append(arule)
        if subsumed:
            current = current.with_rules(kept)
            _check("theta_subsumption", current)

    unit_report: Optional[UnitRuleReport] = None
    deletion_report: Optional[DeletionReport] = None
    from ..datalog.builtins import has_builtins

    if program.has_negation() or has_builtins(program):
        # Rule deletion under uniform (query) equivalence assumes
        # monotone programs over stored relations; with stratified
        # negation or comparison built-ins the pipeline stops after
        # projection (the paper lists both as future work).
        deletion = None
    if deletion is not None and project:
        # First pass: delete with the program's own unit rules only.
        deletion_report = delete_rules(
            current, method=deletion, use_chase=use_chase, use_sagiv=use_sagiv
        )
        current = deletion_report.program
        if unit_rules:
            # Second pass: add covering unit rules (section 5 — "we can
            # always add such unit rules") and retry; keep the result
            # only if it is strictly smaller, since otherwise the added
            # rules are dead weight.
            unit_report = add_covering_unit_rules(current)
            if unit_report.added:
                retry = delete_rules(
                    unit_report.program,
                    method=deletion,
                    use_chase=use_chase,
                    use_sagiv=use_sagiv,
                )
                if len(retry.program) < len(current):
                    current = retry.program
                    deletion_report = DeletionReport(
                        current, deletion_report.deleted + retry.deleted
                    )
                else:
                    unit_report = None
        _check("delete_rules", current)

    unfolded: tuple[str, ...] = ()
    if unfold and project:
        # Section-6-style literal transformation: splice single-rule
        # non-recursive predicates into their consumers, removing the
        # residual materialization cost when adornment forked a
        # predicate into several query forms.
        from .unfolding import unfold_nonrecursive

        unfold_report = unfold_nonrecursive(current)
        if unfold_report.unfolded:
            current = unfold_report.program
            unfolded = unfold_report.unfolded
            # unfolding may strand unreachable definitions
            from .deletion import cascade

            current = cascade(current).program
            _check("unfold_nonrecursive", current)

    minimized: tuple = ()
    if minimize_bodies and project:
        # Unfolding (and projection) can leave a body with literals
        # that only repeat an existential condition another literal
        # already states; evaluating them multiplies duplicate
        # derivations, defeating the section-3.2 work reduction.  Drop
        # them (sound conjunctive-query minimization; see
        # repro.core.minimization).
        from .minimization import minimize_rule_bodies

        min_report = minimize_rule_bodies(current)
        if min_report.changed:
            current = min_report.program
            minimized = min_report.changed
            _check("minimize_rule_bodies", current)

    current, answer_positions = _inline_projection_query(current)
    _check("inline_projection_query", current)
    if validate:
        check_compiled_program(current.to_program(), "inline_projection_query")
        if answer_positions is not None:
            width = current.query.atom.arity
            if any(not 0 <= i < width for i in answer_positions):
                from ..analysis.validate import InvariantViolation

                raise InvariantViolation(
                    "inline_projection_query",
                    "answer-positions",
                    f"answer positions {answer_positions} index outside the "
                    f"final query arity {width}",
                )

    return OptimizationResult(
        original=program,
        adorned=adorned,
        split=split_report,
        projected=projected,
        unit_rules=unit_report,
        deletion=deletion_report,
        final=current,
        answer_positions=answer_positions,
        subsumed=tuple(subsumed),
        unfolded=unfolded,
        minimized=minimized,
    )


def _inline_projection_query(
    program: AdornedProgram,
) -> tuple[AdornedProgram, Optional[tuple[int, ...]]]:
    """Inline a pure-projection unit rule defining the query predicate.

    When the *only* rule for the query predicate is
    ``q(Xi...) :- p(Y1, ..., Yk)`` with the head variables a subset of
    the distinct body variables, materializing ``q`` costs a linear
    pass over ``p`` for nothing: the same answers are obtained by
    querying ``p`` directly and projecting the result tuples.  Returns
    the program with the rule dropped and the projection positions, or
    the input unchanged.

    Only applied when the query atom consists of distinct variables
    (constant selections are left to the magic-sets rewriting).
    """
    from dataclasses import replace

    if not program.projected:
        # Unprojected query atoms still carry existential columns whose
        # removal is the projection phase's job; inlining would tangle
        # the two projections.
        return program, None
    query_pred = program.query.atom.predicate
    defining = program.rules_for(query_pred)
    if len(defining) != 1:
        return program, None
    rule = defining[0]
    if len(rule.body) != 1 or not rule.body[0].derived or rule.negative:
        return program, None
    if any(
        lit.atom.predicate == query_pred for r in program.rules for lit in r.body
    ):
        return program, None
    query_args = program.query.atom.args
    head_args = rule.head.atom.args
    body_args = rule.body[0].atom.args
    all_vars = (*query_args, *head_args, *body_args)
    if not all(isinstance(a, Variable) for a in all_vars):
        return program, None
    if len(set(query_args)) != len(query_args) or len(set(body_args)) != len(body_args):
        return program, None
    if len(set(head_args)) != len(head_args):
        return program, None
    try:
        positions = tuple(body_args.index(a) for a in head_args)
    except ValueError:
        return program, None
    new_query = AdornedLiteral(
        rule.body[0].atom, rule.body[0].adornment, derived=True
    )
    rules = tuple(r for r in program.rules if r is not rule)
    return replace(program, rules=rules, query=new_query), positions
