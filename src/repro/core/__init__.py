"""The paper's contribution: optimizing existential Datalog queries.

Sub-modules follow the paper's structure:

- :mod:`~repro.core.adornment` — section 2 (existential adornments);
- :mod:`~repro.core.components` — section 3.1 (boolean subqueries / cut);
- :mod:`~repro.core.projection` — section 3.2 (projection pushing);
- :mod:`~repro.core.unit_rules`, :mod:`~repro.core.argument_projection`,
  :mod:`~repro.core.deletion` — section 5 (rule deletion under uniform
  query equivalence);
- :mod:`~repro.core.uniform_equivalence` — Sagiv's decidable baseline;
- :mod:`~repro.core.optimistic` — Theorem 5.2 (optimistic derivations);
- :mod:`~repro.core.pipeline` — the phases composed end-to-end.
"""

from .adornment import (
    Adornment,
    AdornedLiteral,
    AdornedProgram,
    AdornedRule,
    adorn,
    adorned_name,
    query_adornment,
    split_adorned,
)
from .argument_projection import (
    ArgumentProjection,
    head_body_projection,
    identity_projection,
    program_projections,
    query_rooted_summaries,
    summary_closure,
)
from .components import ComponentSplit, rule_components, split_components
from .deletion import (
    Deletion,
    DeletionReport,
    cascade,
    chase_deletable,
    delete_rules,
    lemma51_deletable,
    lemma53_deletable,
)
from .optimistic import (
    WILDCARD,
    optimistic_answer,
    optimistic_fixpoint,
    theorem52_deletable,
)
from .pipeline import OptimizationResult, optimize
from .projection import project_literal, push_projections
from .subsumption import delete_subsumed, subsumed_by_some, theta_subsumes
from .uniform_equivalence import (
    literal_deletable_uniform,
    minimize_uniform,
    rule_deletable_uniform,
    uniformly_contains,
    uniformly_equivalent,
)
from .unit_rules import (
    UnitRuleReport,
    add_covering_unit_rules,
    canonical_rule_key,
    covering_unit_rule,
    is_unit_rule,
)

__all__ = [
    "Adornment",
    "AdornedLiteral",
    "AdornedProgram",
    "AdornedRule",
    "adorn",
    "adorned_name",
    "query_adornment",
    "split_adorned",
    "ArgumentProjection",
    "head_body_projection",
    "identity_projection",
    "program_projections",
    "query_rooted_summaries",
    "summary_closure",
    "ComponentSplit",
    "rule_components",
    "split_components",
    "Deletion",
    "DeletionReport",
    "cascade",
    "chase_deletable",
    "delete_rules",
    "lemma51_deletable",
    "lemma53_deletable",
    "WILDCARD",
    "optimistic_answer",
    "optimistic_fixpoint",
    "theorem52_deletable",
    "OptimizationResult",
    "optimize",
    "project_literal",
    "push_projections",
    "delete_subsumed",
    "subsumed_by_some",
    "theta_subsumes",
    "literal_deletable_uniform",
    "minimize_uniform",
    "rule_deletable_uniform",
    "uniformly_contains",
    "uniformly_equivalent",
    "UnitRuleReport",
    "add_covering_unit_rules",
    "canonical_rule_key",
    "covering_unit_rule",
    "is_unit_rule",
]
