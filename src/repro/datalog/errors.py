"""Exception hierarchy for the Datalog substrate.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch one type to handle anything the library signals.  The
subclasses mirror the stages of the processing pipeline: parsing, static
(schema / safety) validation, and evaluation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParseError(ReproError):
    """Raised when Datalog source text cannot be parsed.

    Carries the source position so tooling can point at the offending
    token.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class ValidationError(ReproError):
    """Raised when a structurally well-formed program violates a static
    constraint: inconsistent predicate arity, an unsafe rule (a head
    variable that does not occur in the body), or a query over a
    predicate the program never defines.
    """


class ArityError(ValidationError):
    """Raised when a predicate is used with two different arities."""


class SafetyError(ValidationError):
    """Raised for range-restriction violations (unsafe rules)."""


class EvaluationError(ReproError):
    """Raised when fixpoint evaluation cannot proceed, e.g. a rule body
    references a predicate with no facts and no defining rules when the
    engine is configured to treat that as an error.
    """


class DurabilityError(ReproError):
    """Raised on the *write* side of the durable session runtime: an
    invalid durability configuration, a value the WAL/snapshot codec
    cannot round-trip, or a snapshot that failed to serialize.  Always
    raised before any partial record reaches the log, so a
    ``DurabilityError`` never leaves the WAL inconsistent.
    """


class RecoveryError(ReproError):
    """Raised when crash recovery **refuses** to rebuild a session from
    its WAL and snapshots: a mid-log checksum mismatch, a batch
    sequence gap, a program or engine-flag signature drift, or no valid
    snapshot to anchor replay.  Structured: :attr:`reason` is a stable
    machine-readable code and :attr:`record` names the offending WAL
    sequence number (or snapshot path) when one exists.  Refusal is the
    point — recovery never silently returns a state it cannot prove
    equal to a from-scratch evaluation.
    """

    def __init__(self, reason: str, message: str, record=None):
        #: stable reason code, e.g. ``"checksum-mismatch"``,
        #: ``"sequence-gap"``, ``"flag-drift"``, ``"program-drift"``,
        #: ``"no-valid-snapshot"``, ``"bad-header"``
        self.reason = reason
        #: the WAL record sequence number / snapshot path involved
        self.record = record
        where = f" (record {record})" if record is not None else ""
        super().__init__(f"recovery refused [{reason}]{where}: {message}")


class TransformError(ReproError):
    """Raised when an optimizer phase is applied to a program that does
    not satisfy the phase's preconditions (e.g. projection pushing on a
    program that has not been adorned).
    """
