"""Datalog substrate: terms, AST, parser, storage, and static analysis.

This package implements everything the paper assumes as background
(section 1.1): function-free Horn rules, programs ``P = (Q, EDB, IDB)``,
and the structural notions (chain programs, derivation trees live in
:mod:`repro.engine.provenance`) the optimizations are stated over.
"""

from .ast import Atom, Program, Rule, Span, atom, rule
from .database import Database, Relation
from .errors import (
    ArityError,
    DurabilityError,
    EvaluationError,
    ParseError,
    RecoveryError,
    ReproError,
    SafetyError,
    TransformError,
    ValidationError,
)
from .parser import parse, parse_atom, parse_rule, split_facts
from .terms import Constant, FreshVariables, Term, Variable, fresh_variable, term
from .unify import Substitution, compose, match, match_args, skolemize, unify

__all__ = [
    "Atom",
    "Program",
    "Rule",
    "Span",
    "atom",
    "rule",
    "Database",
    "Relation",
    "Constant",
    "Variable",
    "Term",
    "term",
    "fresh_variable",
    "FreshVariables",
    "parse",
    "parse_atom",
    "parse_rule",
    "split_facts",
    "Substitution",
    "match",
    "match_args",
    "unify",
    "compose",
    "skolemize",
    "ReproError",
    "ParseError",
    "ValidationError",
    "ArityError",
    "SafetyError",
    "EvaluationError",
    "DurabilityError",
    "RecoveryError",
    "TransformError",
]
