"""Extensional database storage: relations, hash indexes, databases.

A :class:`Relation` is a set of equal-length tuples of plain Python
values (the values of :class:`~repro.datalog.terms.Constant` terms).
Hash indexes over argument-position subsets are built lazily and cached;
the evaluation engine asks for the index matching the bound positions of
each join step.

A :class:`Database` maps predicate names to relations and is the *EDB*
of the paper's program triple ``P = (Q, EDB, IDB)``.  Databases are
mutable (the engine inserts derived facts into a working database), but
:meth:`Database.copy` and value-semantics equality make it cheap to use
them functionally in tests.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from .ast import Atom
from .errors import ArityError, ValidationError

__all__ = ["Relation", "Database"]

Row = Tuple


class Relation:
    """A set of fixed-arity tuples with lazily built hash indexes."""

    __slots__ = ("arity", "_rows", "_indexes", "index_builds", "_build_lock")

    def __init__(self, arity: int, rows: Iterable[Sequence] = ()):
        self.arity = arity
        self._rows: set[Row] = set()
        self._indexes: dict[tuple[int, ...], dict[Row, list[Row]]] = {}
        #: number of hash indexes materialized over this relation's
        #: lifetime (lazy builds only; incremental maintenance on
        #: insert does not count)
        self.index_builds: int = 0
        #: serializes lazy index builds: parallel evaluation units may
        #: probe the same read-only relation concurrently, and exactly
        #: one of them must materialize (and count) each missing index
        self._build_lock = threading.Lock()
        for row in rows:
            self.add(tuple(row))

    # -- mutation ----------------------------------------------------------

    def add(self, row: Row) -> bool:
        """Insert *row*; return True iff it was new.

        Maintains any already-built indexes incrementally.
        """
        if len(row) != self.arity:
            raise ArityError(
                f"row of length {len(row)} inserted into relation of arity {self.arity}"
            )
        if row in self._rows:
            return False
        self._rows.add(row)
        for positions, index in self._indexes.items():
            key = tuple(row[p] for p in positions)
            index.setdefault(key, []).append(row)
        return True

    def update(self, rows: Iterable[Row]) -> int:
        """Insert many rows; return the number actually added."""
        return sum(1 for row in rows if self.add(tuple(row)))

    def discard(self, row: Row) -> bool:
        """Remove *row*; return True iff it was present.

        Maintains any already-built indexes incrementally (the row is
        removed from each posting list; an emptied list is dropped so
        index contents stay equal to a fresh build over the remaining
        rows).
        """
        row = tuple(row)
        if row not in self._rows:
            return False
        self._rows.discard(row)
        for positions, index in self._indexes.items():
            key = tuple(row[p] for p in positions)
            posting = index.get(key)
            if posting is not None:
                try:
                    posting.remove(row)
                except ValueError:  # pragma: no cover - defensive
                    pass
                if not posting:
                    del index[key]
        return True

    # -- lookup -------------------------------------------------------------

    def __contains__(self, row: Row) -> bool:
        return tuple(row) in self._rows

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> frozenset[Row]:
        return frozenset(self._rows)

    def index_for(self, positions: tuple[int, ...]) -> dict[Row, list[Row]]:
        """Return (building if necessary) the hash index on *positions*.

        The index maps a key tuple (the row values at *positions*, in
        that order) to the list of full rows having those values.
        """
        index = self._indexes.get(positions)
        if index is None:
            # Double-checked locking: the unlocked fast path above is
            # safe because dict reads are atomic and a published index
            # is never mutated concurrently with probes (parallel units
            # only probe relations that are read-only at their depth).
            with self._build_lock:
                index = self._indexes.get(positions)
                if index is None:
                    index = {}
                    for row in self._rows:
                        key = tuple(row[p] for p in positions)
                        index.setdefault(key, []).append(row)
                    self._indexes[positions] = index
                    self.index_builds += 1
        return index

    def has_index(self, positions: tuple[int, ...]) -> bool:
        """True iff the index on *positions* is currently materialized."""
        return positions in self._indexes

    def indexed_position_sets(self) -> frozenset[tuple[int, ...]]:
        """The position subsets currently carrying a hash index."""
        return frozenset(self._indexes)

    def invalidate_indexes(self) -> None:
        """Drop every materialized index (they rebuild lazily).

        Inserts normally maintain indexes incrementally, so this is
        only needed when rows are mutated behind the relation's back
        (tests) or to bound memory between evaluation phases.
        """
        self._indexes.clear()

    def lookup(self, positions: tuple[int, ...], key: Row) -> list[Row]:
        """Rows whose values at *positions* equal *key* (empty list if none).

        With empty *positions* this returns all rows.
        """
        if not positions:
            return list(self._rows)
        return self.index_for(positions).get(tuple(key), [])

    def copy(self) -> "Relation":
        """An independent copy carrying the materialized indexes.

        Rows and per-key posting lists are copied (cheap: the tuples
        themselves are shared), so the copy starts with every index the
        original had built instead of rebuilding them lazily from
        scratch.  The copy's ``index_builds`` counter starts at zero —
        carried indexes were not built by the copy.
        """
        out = Relation.__new__(Relation)
        out.arity = self.arity
        out._rows = set(self._rows)
        out._indexes = {
            positions: {key: list(rows) for key, rows in index.items()}
            for positions, index in self._indexes.items()
        }
        out.index_builds = 0
        out._build_lock = threading.Lock()
        return out

    def __eq__(self, other) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.arity == other.arity and self._rows == other._rows

    def __hash__(self):  # relations are mutable containers
        raise TypeError("Relation is unhashable")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sample = sorted(self._rows, key=repr)[:4]
        more = "..." if len(self._rows) > 4 else ""
        return f"Relation(arity={self.arity}, {len(self._rows)} rows: {sample}{more})"


class Database:
    """A mapping from predicate names to :class:`Relation` objects."""

    __slots__ = ("_relations",)

    def __init__(self, relations: Optional[Mapping[str, Relation]] = None):
        self._relations: Dict[str, Relation] = {}
        if relations:
            for name, rel in relations.items():
                self._relations[name] = rel.copy()

    # -- construction helpers --------------------------------------------------

    @classmethod
    def from_dict(cls, data: Mapping[str, Iterable[Sequence]]) -> "Database":
        """Build a database from ``{"pred": [(a, b), ...], ...}``.

        Arity is inferred from the first tuple of each relation; an
        empty iterable is rejected because its arity is unknown (use
        :meth:`ensure` for empty relations).
        """
        db = cls()
        for name, rows in data.items():
            rows = [tuple(r) for r in rows]
            if not rows:
                raise ValidationError(
                    f"cannot infer arity of empty relation {name!r}; use ensure()"
                )
            rel = Relation(len(rows[0]))
            rel.update(rows)
            db._relations[name] = rel
        return db

    @classmethod
    def from_facts(cls, facts: Iterable[Atom]) -> "Database":
        """Build a database from ground atoms."""
        db = cls()
        for fact in facts:
            db.add_fact(fact)
        return db

    def ensure(self, predicate: str, arity: int) -> Relation:
        """Return the relation for *predicate*, creating it empty if absent."""
        rel = self._relations.get(predicate)
        if rel is None:
            rel = Relation(arity)
            self._relations[predicate] = rel
        elif rel.arity != arity:
            raise ArityError(
                f"relation {predicate} has arity {rel.arity}, requested {arity}"
            )
        return rel

    def add_fact(self, fact: Atom) -> bool:
        """Insert a ground atom; returns True iff new."""
        rel = self.ensure(fact.predicate, fact.arity)
        return rel.add(fact.as_fact())

    def add(self, predicate: str, *values) -> bool:
        """Insert a row given as positional values."""
        rel = self.ensure(predicate, len(values))
        return rel.add(tuple(values))

    # -- access --------------------------------------------------------------

    def relation(self, predicate: str) -> Optional[Relation]:
        return self._relations.get(predicate)

    def rows(self, predicate: str) -> frozenset[Row]:
        """All rows of *predicate* (empty frozenset if absent)."""
        rel = self._relations.get(predicate)
        return rel.rows() if rel is not None else frozenset()

    def predicates(self) -> frozenset[str]:
        return frozenset(self._relations)

    def __contains__(self, predicate: str) -> bool:
        return predicate in self._relations

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def facts(self) -> Iterator[tuple[str, Row]]:
        """Iterate over all ``(predicate, row)`` pairs."""
        for name, rel in self._relations.items():
            for row in rel:
                yield name, row

    def fact_count(self) -> int:
        return sum(len(rel) for rel in self._relations.values())

    def relation_sizes(self) -> Dict[str, int]:
        """Current row count per predicate (the planner's selectivity
        input)."""
        return {name: len(rel) for name, rel in self._relations.items()}

    def index_builds(self) -> int:
        """Total lazy index builds across all relations."""
        return sum(rel.index_builds for rel in self._relations.values())

    def active_domain(self) -> frozenset:
        """All constant values occurring anywhere in the database."""
        return frozenset(v for _, row in self.facts() for v in row)

    def copy(self, mutating: Optional[Iterable[str]] = None) -> "Database":
        """An independent copy (indexes carried, see :meth:`Relation.copy`).

        With *mutating* given, only the named relations are copied;
        every other relation object is **shared by reference**.  This
        is the evaluation-engine fast path: the fixpoint loop inserts
        only into rule-head relations, so base relations can be shared
        — and any hash index built lazily on a shared relation during
        one evaluation stays materialized for the next one over the
        same database.  Callers who may mutate arbitrary relations must
        use the default full copy.
        """
        if mutating is None:
            return Database(self._relations)
        mutable = set(mutating)
        out = Database()
        for name, rel in self._relations.items():
            out._relations[name] = rel.copy() if name in mutable else rel
        return out

    def privatize(self, predicate: str) -> Optional[Relation]:
        """Replace *predicate*'s relation with an independent copy and
        return it (None if absent).

        The copy-on-write counterpart of ``copy(mutating=...)``: a
        database holding relations *shared by reference* with another
        database (the evaluation fast path) must privatize a relation
        before mutating it in place — in particular before
        :meth:`Relation.discard` — so retractions in one session can
        never reach the EDB relations other sessions still read.
        """
        rel = self._relations.get(predicate)
        if rel is None:
            return None
        rel = rel.copy()
        self._relations[predicate] = rel
        return rel

    def merged_with(self, other: "Database") -> "Database":
        """A new database containing the facts of both operands."""
        out = self.copy()
        for name, row in other.facts():
            out.ensure(name, len(row)).add(row)
        return out

    def restrict(self, predicates: Iterable[str]) -> "Database":
        """A new database containing only the named relations."""
        keep = set(predicates)
        return Database({n: r for n, r in self._relations.items() if n in keep})

    def __eq__(self, other) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        mine = {n: r for n, r in self._relations.items() if len(r)}
        theirs = {n: r for n, r in other._relations.items() if len(r)}
        return mine == theirs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{n}:{len(r)}" for n, r in sorted(self._relations.items()))
        return f"Database({parts})"
