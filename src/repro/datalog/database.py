"""Extensional database storage: relations, hash indexes, databases.

A :class:`Relation` is a set of equal-length tuples of plain Python
values (the values of :class:`~repro.datalog.terms.Constant` terms).
Hash indexes over argument-position subsets are built lazily and cached;
the evaluation engine asks for the index matching the bound positions of
each join step.

A :class:`Database` maps predicate names to relations and is the *EDB*
of the paper's program triple ``P = (Q, EDB, IDB)``.  Databases are
mutable (the engine inserts derived facts into a working database), but
:meth:`Database.copy` and value-semantics equality make it cheap to use
them functionally in tests.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from .ast import Atom
from .columnar import PACK_LIMIT, PACK_SHIFT, ColumnStore, global_dictionary
from .errors import ArityError, ValidationError

try:  # numpy is optional; the packed fast path needs it
    import numpy as _np
except Exception:  # pragma: no cover - environment without numpy
    _np = None

__all__ = ["Relation", "Database"]

Row = Tuple


def _merge_runs(lo, hi):
    """Merge two sorted, disjoint int64 runs in one linear pass.

    Equivalent to ``np.insert(lo, lo.searchsorted(hi), hi)`` but
    without that function's per-call bookkeeping, which dominates for
    the small merges the log-structured cascade performs every round.
    """
    if lo.size < hi.size:
        lo, hi = hi, lo
    pos = lo.searchsorted(hi) + _np.arange(hi.size)
    out = _np.empty(lo.size + hi.size, dtype=lo.dtype)
    out[pos] = hi
    mask = _np.ones(out.size, dtype=bool)
    mask[pos] = False
    out[mask] = lo
    return out


class Relation:
    """A set of fixed-arity tuples with lazily built hash indexes."""

    __slots__ = (
        "arity",
        "_rows",
        "_indexes",
        "index_builds",
        "_build_lock",
        "_store",
        "_store_shared",
        "_version",
        "_packed_cache",
        "_packed_cache_epoch",
        "_index_dirty",
        "_raw_dirty",
        "_raw_dirty_rows",
    )

    def __init__(self, arity: int, rows: Iterable[Sequence] = ()):
        self.arity = arity
        self._rows: set[Row] = set()
        self._indexes: dict[tuple[int, ...], dict[Row, list[Row]]] = {}
        #: number of hash indexes materialized over this relation's
        #: lifetime (lazy builds only; incremental maintenance on
        #: insert does not count)
        self.index_builds: int = 0
        #: serializes lazy index builds: parallel evaluation units may
        #: probe the same read-only relation concurrently, and exactly
        #: one of them must materialize (and count) each missing index
        self._build_lock = threading.Lock()
        #: lazily built dictionary-encoded columnar image (see
        #: :mod:`repro.datalog.columnar`); None until the batch engine
        #: asks for it, dropped on retraction / epoch change
        self._store: Optional[ColumnStore] = None
        #: True while ``_store`` is shared with a copy — the first
        #: write privatizes it (copy-on-write)
        self._store_shared: bool = False
        #: mutation counter keying the store's encoded scan cache
        self._version: int = 0
        #: raw row → packed-int map filled by the vectorized absorb
        #: path; lets the next round's delta frontier pack without
        #: re-interning (see :meth:`packed_cache`)
        self._packed_cache: Optional[dict] = None
        self._packed_cache_epoch: int = -1
        #: rows inserted by the vectorized absorb path whose hash-index
        #: postings have not been appended yet; folded in by
        #: :meth:`_sync_indexes` the next time an index is consulted
        self._index_dirty: list[Row] = []
        #: packed-row chunks inserted by the vectorized absorb path
        #: whose raw tuples have not been materialized yet; each entry
        #: is ``(int64 ndarray, id → value table)`` — the table is
        #: captured at insert time so a later dictionary epoch change
        #: cannot skew the decode.  Folded into ``_rows`` by
        #: :meth:`_sync` the next time raw rows are consulted.
        self._raw_dirty: list = []
        self._raw_dirty_rows: int = 0
        for row in rows:
            self.add(tuple(row))

    # -- mutation ----------------------------------------------------------

    def add(self, row: Row) -> bool:
        """Insert *row*; return True iff it was new.

        Maintains any already-built indexes incrementally.
        """
        if len(row) != self.arity:
            raise ArityError(
                f"row of length {len(row)} inserted into relation of arity {self.arity}"
            )
        if self._raw_dirty:
            self._sync()
        if row in self._rows:
            return False
        if self._index_dirty:
            self._sync_indexes()
        self._rows.add(row)
        for positions, index in self._indexes.items():
            key = tuple(row[p] for p in positions)
            index.setdefault(key, []).append(row)
        self._version += 1
        store = self._store
        if store is not None:
            if store.epoch != global_dictionary().epoch:
                self._store = None  # stale encoding; rebuilt on demand
            else:
                self._own_store().add_raw(row)
        return True

    def update(self, rows: Iterable[Row]) -> int:
        """Insert many rows; return the number actually added."""
        return sum(1 for row in rows if self.add(tuple(row)))

    def bulk_load(self, rows: Iterable[Row]) -> int:
        """Fill an **empty** relation in one pass — the snapshot-restore
        fast path: rows land directly in the raw set with no per-row
        index or columnar upkeep (nothing derived exists yet to
        maintain; indexes and the columnar image build lazily later).
        """
        if self._rows or self._raw_dirty or self._indexes or self._store is not None:
            raise ValidationError("bulk_load requires an empty relation")
        loaded = set(map(tuple, rows))
        arity = self.arity
        for row in loaded:
            if len(row) != arity:
                raise ArityError(
                    f"row of length {len(row)} bulk-loaded into relation "
                    f"of arity {arity}"
                )
        self._rows = loaded
        self._version += 1
        return len(loaded)

    def discard(self, row: Row) -> bool:
        """Remove *row*; return True iff it was present.

        Maintains any already-built indexes incrementally (the row is
        removed from each posting list; an emptied list is dropped so
        index contents stay equal to a fresh build over the remaining
        rows).
        """
        row = tuple(row)
        if self._raw_dirty:
            self._sync()
        if row not in self._rows:
            return False
        if self._index_dirty:
            self._sync_indexes()
        self._rows.discard(row)
        self._version += 1
        # retraction drops the columnar image entirely (columns are
        # append-only arrays); it rebuilds lazily on next batch use
        self._store = None
        self._store_shared = False
        for positions, index in self._indexes.items():
            key = tuple(row[p] for p in positions)
            posting = index.get(key)
            if posting is not None:
                try:
                    posting.remove(row)
                except ValueError:  # pragma: no cover - defensive
                    pass
                if not posting:
                    del index[key]
        return True

    # -- lookup -------------------------------------------------------------

    def __contains__(self, row: Row) -> bool:
        if self._raw_dirty:
            self._sync()
        return tuple(row) in self._rows

    def __iter__(self) -> Iterator[Row]:
        if self._raw_dirty:
            self._sync()
        return iter(self._rows)

    def __len__(self) -> int:
        # deferred packed rows are already deduplicated, so the count
        # is exact without materializing them
        return len(self._rows) + self._raw_dirty_rows

    def rows(self) -> frozenset[Row]:
        if self._raw_dirty:
            self._sync()
        return frozenset(self._rows)

    def _sync(self) -> None:
        """Materialize raw tuples for every deferred packed chunk.

        Chunks decode in insertion order, so the raw set's insertion
        history — and therefore set iteration order downstream — is
        bit-identical to eager per-row insertion.  Locked: readers at
        the next scheduler depth may hit a completed relation's first
        raw access concurrently.
        """
        with self._build_lock:
            dirty = self._raw_dirty
            if not dirty:
                return
            self._raw_dirty = []
            self._raw_dirty_rows = 0
            arity = self.arity
            mask = PACK_LIMIT - 1
            rows: list = []
            for arr, values in dirty:
                if arity == 0:
                    rows.extend([()] * len(arr))
                    continue
                cols = [
                    ((arr >> (PACK_SHIFT * (arity - 1 - p))) & mask).tolist()
                    for p in range(arity)
                ]
                raw = [list(map(values.__getitem__, cl)) for cl in cols]
                rows.extend(
                    zip(*raw) if arity > 1 else [(v,) for v in raw[0]]
                )
            self._rows.update(rows)
            if self._indexes:
                self._index_dirty.extend(rows)

    def _sync_indexes(self) -> None:
        """Fold rows buffered by the vectorized absorb path into every
        materialized hash index.

        Dirty rows are appended in insertion order, so posting lists
        end up identical to what eager per-insert maintenance would
        have produced — order-dependent consumers (provenance,
        existential scans with repeats) observe no difference.
        """
        dirty = self._index_dirty
        if not dirty:
            return
        self._index_dirty = []
        for positions, index in self._indexes.items():
            get = index.get
            if len(positions) == 1:
                p0 = positions[0]
                for row in dirty:
                    key = (row[p0],)
                    posting = get(key)
                    if posting is None:
                        index[key] = [row]
                    else:
                        posting.append(row)
            else:
                for row in dirty:
                    key = tuple(row[p] for p in positions)
                    posting = get(key)
                    if posting is None:
                        index[key] = [row]
                    else:
                        posting.append(row)

    def index_for(self, positions: tuple[int, ...]) -> dict[Row, list[Row]]:
        """Return (building if necessary) the hash index on *positions*.

        The index maps a key tuple (the row values at *positions*, in
        that order) to the list of full rows having those values.
        """
        if self._raw_dirty:
            self._sync()
        if self._index_dirty:
            with self._build_lock:
                self._sync_indexes()
        index = self._indexes.get(positions)
        if index is None:
            # Double-checked locking: the unlocked fast path above is
            # safe because dict reads are atomic and a published index
            # is never mutated concurrently with probes (parallel units
            # only probe relations that are read-only at their depth).
            with self._build_lock:
                index = self._indexes.get(positions)
                if index is None:
                    index = {}
                    for row in self._rows:
                        key = tuple(row[p] for p in positions)
                        index.setdefault(key, []).append(row)
                    self._indexes[positions] = index
                    self.index_builds += 1
        return index

    def has_index(self, positions: tuple[int, ...]) -> bool:
        """True iff the index on *positions* is currently materialized."""
        return positions in self._indexes

    def indexed_position_sets(self) -> frozenset[tuple[int, ...]]:
        """The position subsets currently carrying a hash index."""
        return frozenset(self._indexes)

    def invalidate_indexes(self) -> None:
        """Drop every materialized index (they rebuild lazily).

        Inserts normally maintain indexes incrementally, so this is
        only needed when rows are mutated behind the relation's back
        (tests) or to bound memory between evaluation phases.
        """
        if self._raw_dirty:
            self._sync()
        self._indexes.clear()
        self._index_dirty.clear()
        # encoded postings are derived from the raw indexes, so the
        # columnar image goes with them (rebuilt lazily)
        self._store = None
        self._store_shared = False
        self._version += 1

    def lookup(self, positions: tuple[int, ...], key: Row) -> list[Row]:
        """Rows whose values at *positions* equal *key* (empty list if none).

        With empty *positions* this returns all rows.
        """
        if not positions:
            if self._raw_dirty:
                self._sync()
            return list(self._rows)
        return self.index_for(positions).get(tuple(key), [])

    # -- columnar image -----------------------------------------------------

    def _own_store(self) -> ColumnStore:
        """The store, privatized if currently shared with a copy."""
        store = self._store
        if self._store_shared:
            store = store.copy()
            self._store = store
            self._store_shared = False
        return store

    def column_store(self) -> ColumnStore:
        """The dictionary-encoded columnar image (built on first use,
        rebuilt when the global dictionary's epoch moved).

        Packed rows the vectorized absorb path buffered are flushed
        into the encoded-tuple structures here, so every consumer of
        ``row_set`` / postings / columns sees a complete image.
        """
        dictionary = global_dictionary()
        store = self._store
        if store is None or store.epoch != dictionary.epoch:
            if self._raw_dirty:
                self._sync()  # re-encode from the complete raw row set
            with self._build_lock:
                store = self._store
                if store is None or store.epoch != dictionary.epoch:
                    store = ColumnStore(dictionary, self.arity, self._rows)
                    self._store = store
                    self._store_shared = False
        if store._pending:
            store.flush()
        return store

    def degree_profile(self) -> tuple[int, tuple[int, ...]]:
        """Measured ``(row count, per-position max degree)`` statistics.

        Degrees are read from whatever structure is already paid for:
        an existing single-position hash index (posting lengths), the
        current-epoch columnar store's dictionary/posting image
        (:meth:`ColumnStore.profile`), or one counting pass over the
        raw rows.  Crucially this never *builds* a store or an index —
        profiling must not intern constants or bump the index-build
        counters, so the engine's work statistics are identical with
        and without profiling.
        """
        store = self._store
        if store is not None and store.epoch == global_dictionary().epoch:
            # a current-epoch store is maintained on every insert, so
            # it is complete even while raw materialization is deferred
            return store.profile()
        if self._raw_dirty:
            self._sync()
        rows = self._rows
        n = len(rows)
        degrees: list[int] = []
        for p in range(self.arity):
            if not self._index_dirty:
                index = self._indexes.get((p,))
                if index is not None:
                    degrees.append(
                        max((len(v) for v in index.values()), default=0)
                    )
                    continue
            counts: dict = {}
            best = 0
            for row in rows:
                v = row[p]
                c = counts.get(v, 0) + 1
                counts[v] = c
                if c > best:
                    best = c
            degrees.append(best)
        return n, tuple(degrees)

    def _store_for_packed(self) -> ColumnStore:
        """The store for the vectorized absorb path: current-epoch and
        privatized, but **without** flushing pending packed rows (the
        whole point of the path is deferring that work)."""
        dictionary = global_dictionary()
        store = self._store
        if store is None or store.epoch != dictionary.epoch:
            return self.column_store()
        if self._store_shared:
            store = self._own_store()
        return store

    def packed_row_set(self) -> Optional[set]:
        """All rows in packed-int form (vectorized dedup), or None when
        any constant id exceeds the packing bound."""
        return self._store_for_packed().packed_set()

    def packed_cache(self) -> dict:
        """The raw-row → packed-int map for frontier packing (reset
        when the dictionary epoch moves)."""
        dictionary = global_dictionary()
        cache = self._packed_cache
        if cache is None or self._packed_cache_epoch != dictionary.epoch:
            cache = {}
            self._packed_cache = cache
            self._packed_cache_epoch = dictionary.epoch
        return cache

    def packed_runs(self) -> Optional[list]:
        """Sorted disjoint int64 runs covering every current row — the
        vectorized absorb path's membership structure — or None when a
        constant id exceeds the packing bound (or numpy is absent).

        Runs live on the column store stamped with the relation version
        they describe; steady-state vectorized rounds extend them
        incrementally (:meth:`add_packed_deferred`), and any mutation
        through another path desynchronizes the stamp, forcing a full
        rebuild here from the packed row set.
        """
        if _np is None:
            return None
        store = self._store_for_packed()
        runs = store._runs
        if runs is not None and store._runs_version == self._version:
            return runs
        pset = store.packed_set()
        if pset is None:
            return None
        arr = _np.fromiter(pset, dtype=_np.int64, count=len(pset))
        arr.sort()
        # the runs supersede the python-level packed set for membership;
        # drop it so steady-state rounds don't pay per-row upkeep
        store._packed = None
        store._runs = runs = [arr] if arr.size else []
        store._runs_version = self._version
        store.bloom_rebuild(runs, arr.size)
        return runs

    def packed_novel_mask(self, uniq):
        """Boolean mask over sorted packed rows *uniq* marking which are
        not yet present in this relation, or None when the packed
        membership structures are unavailable (see :meth:`packed_runs`).

        The Bloom prefilter clears the common case — a genuinely new
        row misses both hash probes — so only the few maybe-present
        candidates pay a searchsorted pass per run.
        """
        runs = self.packed_runs()
        if runs is None:
            return None
        store = self._store_for_packed()
        if store._bloom is None:  # privatized copy: bit table not shared
            store.bloom_rebuild(runs, sum(r.size for r in runs))
        mask = _np.ones(uniq.size, dtype=bool)
        cand = store.bloom_maybe(uniq).nonzero()[0]
        if cand.size:
            vals = uniq.take(cand)
            hit = _np.zeros(cand.size, dtype=bool)
            for run in runs:
                # clip keeps take() in bounds; the clipped last slot can
                # never compare equal for a value beyond the run's max
                idx = _np.minimum(run.searchsorted(vals), run.size - 1)
                hit |= run.take(idx) == vals
            mask[cand[hit]] = False
        return mask

    def add_packed_deferred(self, ordered, sorted_fresh) -> None:
        """Bulk-insert packed rows known to be new, deferring raw work.

        *ordered* is the fresh rows in derivation order (the frontier
        contract), *sorted_fresh* the same values sorted (the run
        extension).  Nothing row-at-a-time happens here: raw tuples
        materialize in :meth:`_sync` when raw structures are next read,
        and the store's encoded-tuple structures flush on their own
        schedule (:meth:`ColumnStore.flush`).
        """
        store = self._store_for_packed()
        n = len(ordered)
        self._raw_dirty.append((ordered, store.dictionary.values_list()))
        self._raw_dirty_rows += n
        store.add_packed_pending(ordered)
        store._packed = None  # rebuilt on demand; runs carry membership
        version = self._version + n
        runs = store._runs
        if runs is not None and store._runs_version == self._version:
            runs.append(sorted_fresh)
            # log-structured merging: keep run sizes geometrically
            # decreasing so membership stays O(log n) searchsorted
            # passes and total merge work stays O(n log n)
            while len(runs) > 1 and 2 * runs[-1].size >= runs[-2].size:
                hi = runs.pop()
                lo = runs.pop()
                runs.append(_merge_runs(lo, hi))
            store._runs_version = version
            if store._bloom is not None:
                total = sum(r.size for r in runs)
                if total << 3 > (1 << store._bloom_log2):
                    store.bloom_rebuild(runs, total)  # keep ≥8 bits/key
                else:
                    store.bloom_add(sorted_fresh)
        self._version = version

    def decode_packed(self, arr) -> list:
        """Decode packed rows (current dictionary epoch) to raw tuples,
        preserving order."""
        arity = self.arity
        if arity == 0:
            return [()] * len(arr)
        values = global_dictionary().values_list()
        mask = PACK_LIMIT - 1
        cols = [
            ((arr >> (PACK_SHIFT * (arity - 1 - p))) & mask).tolist()
            for p in range(arity)
        ]
        raw = [list(map(values.__getitem__, cl)) for cl in cols]
        return list(zip(*raw)) if arity > 1 else [(v,) for v in raw[0]]

    def encoded_index(self, positions: tuple[int, ...]) -> dict:
        """Encoded postings on *positions* for the batch kernels.

        Forces the raw index first — so lazy builds are counted in
        ``index_builds`` exactly when the tuple engine would build
        them, and encoded posting order mirrors raw posting order.
        """
        raw = self.index_for(positions)
        store = self.column_store()
        postings = store._postings.get(positions)
        if postings is None:
            with self._build_lock:
                postings = store.encoded_index(positions, raw)
        return postings

    def encoded_rows(self) -> list:
        """Encoded rows in current ``list(relation)`` order (the batch
        kernels' full-scan path)."""
        if self._raw_dirty:
            self._sync()  # the scan mirrors raw set iteration order
        return self.column_store().scan_rows(self)

    def add_encoded_batch(self, enc_rows: Iterable[tuple]) -> list:
        """Bulk-insert encoded rows known to be new; returns the
        decoded raw rows in input order.

        The batch-kernel counterpart of repeated :meth:`add`: the
        caller has already deduplicated against the store's row set, so
        this maintains the raw row set, the raw indexes and the
        columnar image without re-checking membership.  Input order is
        preserved end-to-end (raw set insertion history and posting
        append order are what downstream order-dependent consumers —
        provenance, existential scans with repeats — observe).
        """
        self.column_store()  # ensure a current-epoch store exists
        store = self._own_store()
        if self._raw_dirty:
            self._sync()
        if self._index_dirty:
            self._sync_indexes()
        values = store.dictionary.values_list()
        rows = self._rows
        indexes = self._indexes
        out = []
        for enc in enc_rows:
            raw = tuple(values[c] for c in enc)
            rows.add(raw)
            for positions, index in indexes.items():
                key = tuple(raw[p] for p in positions)
                posting = index.get(key)
                if posting is None:
                    index[key] = [raw]
                else:
                    posting.append(raw)
            store.add_encoded(enc)
            out.append(raw)
        self._version += len(out)
        return out

    def copy(self) -> "Relation":
        """An independent copy carrying the materialized indexes.

        Rows and per-key posting lists are copied (cheap: the tuples
        themselves are shared), so the copy starts with every index the
        original had built instead of rebuilding them lazily from
        scratch.  The copy's ``index_builds`` counter starts at zero —
        carried indexes were not built by the copy.
        """
        if self._raw_dirty:
            self._sync()
        if self._index_dirty:
            self._sync_indexes()
        out = Relation.__new__(Relation)
        out.arity = self.arity
        out._rows = set(self._rows)
        out._index_dirty = []
        out._raw_dirty = []
        out._raw_dirty_rows = 0
        out._indexes = {
            positions: {key: list(rows) for key, rows in index.items()}
            for positions, index in self._indexes.items()
        }
        out.index_builds = 0
        out._build_lock = threading.Lock()
        # the columnar image is shared copy-on-write: both sides keep
        # reading it for free, and whichever writes first privatizes
        # its own copy (column arrays + row set) via _own_store
        out._store = self._store
        out._store_shared = self._store_shared = self._store is not None
        out._version = self._version
        # the packed encode cache is value-level (raw row → ids) and
        # epoch-guarded, so sharing it by reference is safe
        out._packed_cache = self._packed_cache
        out._packed_cache_epoch = self._packed_cache_epoch
        return out

    def __eq__(self, other) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        if self._raw_dirty:
            self._sync()
        if other._raw_dirty:
            other._sync()
        return self.arity == other.arity and self._rows == other._rows

    def __hash__(self):  # relations are mutable containers
        raise TypeError("Relation is unhashable")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._raw_dirty:
            self._sync()
        sample = sorted(self._rows, key=repr)[:4]
        more = "..." if len(self._rows) > 4 else ""
        return f"Relation(arity={self.arity}, {len(self._rows)} rows: {sample}{more})"


class Database:
    """A mapping from predicate names to :class:`Relation` objects."""

    __slots__ = ("_relations",)

    def __init__(self, relations: Optional[Mapping[str, Relation]] = None):
        self._relations: Dict[str, Relation] = {}
        if relations:
            for name, rel in relations.items():
                self._relations[name] = rel.copy()

    # -- construction helpers --------------------------------------------------

    @classmethod
    def from_dict(cls, data: Mapping[str, Iterable[Sequence]]) -> "Database":
        """Build a database from ``{"pred": [(a, b), ...], ...}``.

        Arity is inferred from the first tuple of each relation; an
        empty iterable is rejected because its arity is unknown (use
        :meth:`ensure` for empty relations).
        """
        db = cls()
        for name, rows in data.items():
            rows = [tuple(r) for r in rows]
            if not rows:
                raise ValidationError(
                    f"cannot infer arity of empty relation {name!r}; use ensure()"
                )
            rel = Relation(len(rows[0]))
            rel.update(rows)
            db._relations[name] = rel
        return db

    @classmethod
    def from_facts(cls, facts: Iterable[Atom]) -> "Database":
        """Build a database from ground atoms."""
        db = cls()
        for fact in facts:
            db.add_fact(fact)
        return db

    def ensure(self, predicate: str, arity: int) -> Relation:
        """Return the relation for *predicate*, creating it empty if absent."""
        rel = self._relations.get(predicate)
        if rel is None:
            rel = Relation(arity)
            self._relations[predicate] = rel
        elif rel.arity != arity:
            raise ArityError(
                f"relation {predicate} has arity {rel.arity}, requested {arity}"
            )
        return rel

    def add_fact(self, fact: Atom) -> bool:
        """Insert a ground atom; returns True iff new."""
        rel = self.ensure(fact.predicate, fact.arity)
        return rel.add(fact.as_fact())

    def add(self, predicate: str, *values) -> bool:
        """Insert a row given as positional values."""
        rel = self.ensure(predicate, len(values))
        return rel.add(tuple(values))

    # -- access --------------------------------------------------------------

    def relation(self, predicate: str) -> Optional[Relation]:
        return self._relations.get(predicate)

    def rows(self, predicate: str) -> frozenset[Row]:
        """All rows of *predicate* (empty frozenset if absent)."""
        rel = self._relations.get(predicate)
        return rel.rows() if rel is not None else frozenset()

    def predicates(self) -> frozenset[str]:
        return frozenset(self._relations)

    def __contains__(self, predicate: str) -> bool:
        return predicate in self._relations

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def facts(self) -> Iterator[tuple[str, Row]]:
        """Iterate over all ``(predicate, row)`` pairs."""
        for name, rel in self._relations.items():
            for row in rel:
                yield name, row

    def fact_count(self) -> int:
        return sum(len(rel) for rel in self._relations.values())

    def relation_sizes(self) -> Dict[str, int]:
        """Current row count per predicate (the planner's selectivity
        input)."""
        return {name: len(rel) for name, rel in self._relations.items()}

    def index_builds(self) -> int:
        """Total lazy index builds across all relations."""
        return sum(rel.index_builds for rel in self._relations.values())

    def active_domain(self) -> frozenset:
        """All constant values occurring anywhere in the database."""
        return frozenset(v for _, row in self.facts() for v in row)

    def copy(self, mutating: Optional[Iterable[str]] = None) -> "Database":
        """An independent copy (indexes carried, see :meth:`Relation.copy`).

        With *mutating* given, only the named relations are copied;
        every other relation object is **shared by reference**.  This
        is the evaluation-engine fast path: the fixpoint loop inserts
        only into rule-head relations, so base relations can be shared
        — and any hash index built lazily on a shared relation during
        one evaluation stays materialized for the next one over the
        same database.  Callers who may mutate arbitrary relations must
        use the default full copy.
        """
        if mutating is None:
            return Database(self._relations)
        mutable = set(mutating)
        out = Database()
        for name, rel in self._relations.items():
            out._relations[name] = rel.copy() if name in mutable else rel
        return out

    def privatize(self, predicate: str) -> Optional[Relation]:
        """Replace *predicate*'s relation with an independent copy and
        return it (None if absent).

        The copy-on-write counterpart of ``copy(mutating=...)``: a
        database holding relations *shared by reference* with another
        database (the evaluation fast path) must privatize a relation
        before mutating it in place — in particular before
        :meth:`Relation.discard` — so retractions in one session can
        never reach the EDB relations other sessions still read.
        """
        rel = self._relations.get(predicate)
        if rel is None:
            return None
        rel = rel.copy()
        self._relations[predicate] = rel
        return rel

    def merged_with(self, other: "Database") -> "Database":
        """A new database containing the facts of both operands."""
        out = self.copy()
        for name, row in other.facts():
            out.ensure(name, len(row)).add(row)
        return out

    def restrict(self, predicates: Iterable[str]) -> "Database":
        """A new database containing only the named relations."""
        keep = set(predicates)
        return Database({n: r for n, r in self._relations.items() if n in keep})

    def __eq__(self, other) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        mine = {n: r for n, r in self._relations.items() if len(r)}
        theirs = {n: r for n, r in other._relations.items() if len(r)}
        return mine == theirs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{n}:{len(r)}" for n, r in sorted(self._relations.items()))
        return f"Database({parts})"
