"""Substitutions, matching and unification over function-free atoms.

Because Datalog terms are flat (no function symbols), unification never
needs an occurs check and substitutions map variables to variables or
constants only.  Three operations cover everything the library needs:

- :func:`match` — one-way matching of a (possibly non-ground) pattern
  atom against a ground fact; this is the engine's inner loop.
- :func:`unify` — two-way unification of atoms, used by analysis code.
- :func:`skolemize` — freeze a rule's variables into fresh constants,
  producing the canonical database used by chase-style equivalence
  tests (Sagiv's uniform-equivalence test, the paper's Example 4/6).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from .ast import Atom, Rule
from .terms import Constant, Term, Variable

__all__ = [
    "Substitution",
    "match",
    "match_args",
    "unify",
    "compose",
    "skolemize",
    "skolem_constant",
]

Substitution = dict[Variable, Term]


def match(pattern: Atom, fact: Atom, subst: Optional[Substitution] = None) -> Optional[Substitution]:
    """Match *pattern* against the ground atom *fact*.

    Returns an extended copy of *subst* binding the pattern's variables,
    or ``None`` if the match fails.  *fact* must be ground.
    """
    if pattern.predicate != fact.predicate or pattern.arity != fact.arity:
        return None
    return match_args(pattern.args, tuple(a.value for a in fact.args), subst)  # type: ignore[union-attr]


def match_args(
    pattern: Sequence[Term],
    values: Sequence,
    subst: Optional[Substitution] = None,
) -> Optional[Substitution]:
    """Match a vector of terms against a tuple of raw constant values.

    This is the form the evaluation engine uses: facts are stored as
    plain value tuples, not :class:`Atom` objects.
    """
    if len(pattern) != len(values):
        return None
    out: Substitution = dict(subst) if subst else {}
    for t, v in zip(pattern, values):
        if isinstance(t, Constant):
            if t.value != v:
                return None
        else:
            bound = out.get(t)
            if bound is None:
                out[t] = Constant(v)
            elif isinstance(bound, Constant):
                if bound.value != v:
                    return None
            else:  # bound to a variable: only in non-ground matching; disallow
                return None
    return out


def unify(a: Atom, b: Atom, subst: Optional[Substitution] = None) -> Optional[Substitution]:
    """Most general unifier of two atoms (flat terms, no occurs check).

    The returned substitution is idempotent: looking a variable up once
    yields its final value.
    """
    if a.predicate != b.predicate or a.arity != b.arity:
        return None
    out: Substitution = dict(subst) if subst else {}

    def resolve(t: Term) -> Term:
        while isinstance(t, Variable) and t in out:
            t = out[t]
        return t

    for x, y in zip(a.args, b.args):
        x, y = resolve(x), resolve(y)
        if x == y:
            continue
        if isinstance(x, Variable):
            out[x] = y
        elif isinstance(y, Variable):
            out[y] = x
        else:  # two distinct constants
            return None
    # Flatten chains so the substitution is idempotent.
    return {v: resolve(t) for v, t in out.items()}


def compose(first: Mapping[Variable, Term], second: Mapping[Variable, Term]) -> Substitution:
    """Compose substitutions: ``compose(f, s)(x) == s(f(x))``."""
    out: Substitution = {}
    for v, t in first.items():
        if isinstance(t, Variable) and t in second:
            out[v] = second[t]
        else:
            out[v] = t
    for v, t in second.items():
        out.setdefault(v, t)
    return out


def skolem_constant(v: Variable) -> Constant:
    """The canonical frozen constant for variable *v*.

    The name is chosen so skolem constants cannot collide with ordinary
    constants appearing in test programs.
    """
    return Constant(f"$sk_{v.name}")


def skolemize(r: Rule) -> tuple[Atom, tuple[Atom, ...], Substitution]:
    """Freeze rule *r*: replace each variable by a fresh constant.

    Returns ``(ground_head, ground_body, substitution)``.  This is the
    "ground instance of the rule" used throughout section 3.3 and
    section 5 of the paper: to decide whether a rule is redundant, its
    frozen body becomes the input database and one asks whether the
    remaining rules can re-derive the frozen head (Sagiv's test) or the
    query-relevant image of the frozen head (the paper's uniform query
    equivalence test).
    """
    subst: Substitution = {v: skolem_constant(v) for v in r.variables()}
    ground = r.substitute(subst)
    return ground.head, ground.body, subst
