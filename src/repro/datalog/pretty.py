"""Paper-style pretty printing and program diffing.

The library's canonical textual form spells adornments with ``@``
(``a@nd``) so programs stay machine-parseable.  This module renders
programs the way the paper typesets them — ``a^nd`` — and produces
aligned listings and before/after diffs for reports and teaching
material (the CLI's ``optimize`` output and the examples use it
indirectly through ``str``; the paper style is opt-in).
"""

from __future__ import annotations

from .ast import Atom, Rule

__all__ = ["paper_atom", "paper_rule", "render", "diff_programs"]


def _paper_name(predicate: str) -> str:
    # Inline version of core.adornment.split_adorned (string-only), so
    # the substrate layer does not depend on the optimizer layer.
    base, sep, suffix = predicate.rpartition("@")
    if not sep or not suffix or not set(suffix) <= {"n", "d"}:
        return predicate
    return f"{base}^{suffix}"


def paper_atom(atom: Atom) -> str:
    """Render one atom with ``^`` adornment spelling."""
    if not atom.args:
        return _paper_name(atom.predicate)
    args = ", ".join(map(str, atom.args))
    return f"{_paper_name(atom.predicate)}({args})"


def paper_rule(rule: Rule) -> str:
    """Render one rule in the paper's style."""
    parts = [paper_atom(a) for a in rule.body]
    parts += [f"not {paper_atom(a)}" for a in rule.negative]
    if not parts:
        return f"{paper_atom(rule.head)}."
    return f"{paper_atom(rule.head)} :- {', '.join(parts)}."


def render(
    program,
    style: str = "paper",
    align: bool = True,
) -> str:
    """Render a program (plain or adorned).

    ``style="paper"`` spells adornments as superscript-style ``a^nd``;
    ``style="plain"`` keeps the parseable ``a@nd``.  With *align*, the
    ``:-`` separators line up.
    """
    plain = program.to_program() if hasattr(program, "to_program") else program
    if style == "plain":
        fmt_head = lambda r: str(r.head)  # noqa: E731
        fmt_rule = str
    elif style == "paper":
        fmt_head = lambda r: paper_atom(r.head)  # noqa: E731
        fmt_rule = paper_rule
    else:
        raise ValueError(f"unknown style {style!r}")

    lines = []
    width = max((len(fmt_head(r)) for r in plain.rules), default=0)
    for r in plain.rules:
        text = fmt_rule(r)
        if align and (r.body or r.negative):
            head_text = fmt_head(r)
            rest = text[len(head_text):]
            text = head_text.ljust(width) + rest
        lines.append(text)
    if plain.query is not None:
        q = paper_atom(plain.query) if style == "paper" else str(plain.query)
        lines.append(f"?- {q}.")
    return "\n".join(lines)


def diff_programs(before, after, style: str = "paper") -> str:
    """A unified before/after listing: rules only in *before* are
    prefixed ``-``, rules only in *after* ``+``, common rules `` ``.

    Comparison is textual per rendered rule (variable names matter;
    transformations in this library preserve them, so the diff reads
    naturally)."""
    def rule_lines(p):
        plain = p.to_program() if hasattr(p, "to_program") else p
        fmt = paper_rule if style == "paper" else str
        return [fmt(r) for r in plain.rules]

    b_lines, a_lines = rule_lines(before), rule_lines(after)
    b_set, a_set = set(b_lines), set(a_lines)
    out = []
    for line in b_lines:
        out.append(("  " if line in a_set else "- ") + line)
    for line in a_lines:
        if line not in b_set:
            out.append("+ " + line)
    return "\n".join(out)
