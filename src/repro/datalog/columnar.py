"""Dictionary-encoded columnar storage for relations.

The tuple engine stores rows as tuples of arbitrary Python objects;
every join probe pays object hashing and per-tuple dispatch.  This
module adds a second, *derived* representation under the same
:class:`~repro.datalog.database.Relation` API:

- a process-wide :class:`ConstantDictionary` interning every constant
  once into a dense integer id (value ↔ id, append-only, so an id is
  stable for the life of the process unless :meth:`ConstantDictionary.clear`
  bumps the epoch);
- a per-relation :class:`ColumnStore` holding the rows column-wise as
  ``array('q')`` integer arrays plus encoded-row structures the batch
  kernels probe: a set of encoded rows (fully-bound membership), hash
  postings keyed on encoded ids (index probes) and an order-preserving
  encoded scan list (full scans).

The store is a cache over the relation's raw row set: it is built
lazily, maintained incrementally on insert, and simply dropped on
retraction or dictionary epoch change (rebuilt on next use).  Copies
share the store copy-on-write — :meth:`ColumnStore.copy` duplicates
the column arrays and row set but not the derived postings.

**Order parity.**  The batch kernels must reproduce the tuple engine's
stats counters and fact insertion order bit-for-bit, and some tuple
paths (existential scans with repeated variables, provenance) are
enumeration-order dependent.  Encoded postings are therefore *derived
from the raw hash index* (same posting order), and the scan list is
re-encoded from ``list(relation)`` whenever the relation's version
changed, instead of keeping an independently ordered mirror.

Note on value identity: interning is keyed by ``==``/``hash`` like the
raw row sets, so values the raw engine already conflates (``1``,
``1.0``, ``True``) share one id and decode to the first-interned
representative — exactly the representative-choice freedom the raw
set storage already has.
"""

from __future__ import annotations

import threading
from array import array
from typing import Any, Iterable, Optional, Sequence

try:  # numpy is optional; column arrays fall back to array('q')
    import numpy as _np
except Exception:  # pragma: no cover - environment without numpy
    _np = None

__all__ = [
    "ConstantDictionary",
    "ColumnStore",
    "global_dictionary",
    "numpy_available",
    "PACK_SHIFT",
    "PACK_LIMIT",
    "pack_encoded",
]

Row = tuple
EncodedRow = tuple

#: bits per column in the packed single-int row representation used by
#: the vectorized kernels: a row of arity k ≤ 3 packs into one int64
#: by Horner's rule as long as every id is below ``PACK_LIMIT``
PACK_SHIFT = 21
PACK_LIMIT = 1 << PACK_SHIFT

if _np is not None:
    # Fibonacci-style multiplicative hashes for the packed-row Bloom
    # prefilter; the top bits of each product index the bit table.
    # The table is uint64 words so every hash/index/mask op stays in
    # one dtype — no astype round-trips on the per-round hot path.
    _BLOOM_K1 = _np.uint64(0x9E3779B97F4A7C15)
    _BLOOM_K2 = _np.uint64(0xC2B2AE3D27D4EB4F)
    _B1 = _np.uint64(1)
    _B6 = _np.uint64(6)
    _B63 = _np.uint64(63)


def pack_encoded(enc: Sequence[int]) -> int:
    """Pack an encoded row into one int (ids must be < PACK_LIMIT)."""
    packed = 0
    for c in enc:
        packed = (packed << PACK_SHIFT) | c
    return packed


def numpy_available() -> bool:
    """True iff numpy is importable (``ColumnStore.numpy_column``)."""
    return _np is not None


class ConstantDictionary:
    """A thread-safe append-only interner: constant value ↔ dense id.

    Ids are assigned in first-intern order starting at 0.  ``_values``
    is only ever appended to (under the lock), so readers may index it
    without locking for any id they obtained from :meth:`intern` —
    CPython list reads are safe under the GIL and the prefix up to a
    published id never changes.  :meth:`clear` swaps both maps for
    fresh ones and bumps ``epoch``; stores stamped with an older epoch
    rebuild themselves on next access.
    """

    __slots__ = ("_ids", "_values", "_lock", "epoch")

    def __init__(self):
        self._ids: dict = {}
        self._values: list = []
        self._lock = threading.Lock()
        #: bumped by :meth:`clear`; ColumnStores stamp their build epoch
        self.epoch: int = 0

    def __len__(self) -> int:
        return len(self._values)

    def intern(self, value) -> int:
        """The dense id for *value*, assigning a fresh one if unseen."""
        code = self._ids.get(value)
        if code is not None:
            return code
        with self._lock:
            ids = self._ids  # re-read: clear() may have swapped the maps
            code = ids.get(value)
            if code is None:
                values = self._values
                code = len(values)
                values.append(value)
                ids[value] = code
            return code

    def intern_row(self, row: Sequence) -> EncodedRow:
        """Encode a raw row to a tuple of ids."""
        intern = self.intern
        return tuple(intern(v) for v in row)

    def decode_row(self, enc: Sequence[int]) -> Row:
        """Decode a tuple of ids back to raw values."""
        values = self._values
        return tuple(values[c] for c in enc)

    def values_list(self) -> list:
        """The id → value table itself (treat as read-only; kernels
        index it directly on the decode hot path)."""
        return self._values

    def clear(self) -> None:
        """Forget every interned constant and invalidate all stores."""
        with self._lock:
            self._ids = {}
            self._values = []
            self.epoch += 1


#: the process-wide dictionary every relation encodes against
_GLOBAL = ConstantDictionary()


def global_dictionary() -> ConstantDictionary:
    """The process-wide constant dictionary (shared by all relations,
    so encoded rows are comparable across databases and sessions)."""
    return _GLOBAL


class ColumnStore:
    """The encoded columnar image of one relation's rows.

    Built lazily by :meth:`Relation.column_store` and maintained
    incrementally on insert; dropped (and later rebuilt) on retraction
    or dictionary epoch change.  All structures hold *encoded* values:

    ``columns``
        one ``array('q')`` per argument position, rows in insertion
        order — the dense storage contract (``numpy_column`` exposes a
        zero-copy ndarray view when numpy is present);
    ``row_set``
        the set of encoded row tuples (fully-bound membership probes
        and batch duplicate elimination);
    postings (``encoded_index``)
        per bound-position-set hash postings, derived from the raw
        index so posting order matches the tuple engine's enumeration;
    scan list (``scan_rows``)
        encoded rows in ``list(relation)`` order, re-derived whenever
        the relation's version changes.
    """

    __slots__ = (
        "dictionary",
        "arity",
        "epoch",
        "columns",
        "row_set",
        "_postings",
        "_scan",
        "_pending",
        "_pending_rows",
        "_packed",
        "_packed_overflow",
        "_runs",
        "_runs_version",
        "_bloom",
        "_bloom_log2",
        "_csr",
        "_lock",
    )

    def __init__(self, dictionary: ConstantDictionary, arity: int, rows: Iterable):
        self.dictionary = dictionary
        self.arity = arity
        self.epoch = dictionary.epoch
        intern = dictionary.intern
        enc = [tuple(intern(v) for v in row) for row in rows]
        self.row_set: set = set(enc)
        self.columns: list = [
            array("q", (r[p] for r in enc)) for p in range(arity)
        ]
        self._postings: dict = {}
        self._scan: Optional[tuple] = None
        #: packed-row chunks (int64 ndarrays, insertion order) absorbed
        #: by the vectorized kernels but not yet folded into the
        #: encoded-tuple structures above; flushed lazily when an
        #: encoded-tuple consumer next touches the store
        self._pending: list = []
        self._pending_rows: int = 0
        #: set of all rows (flushed and pending) in packed-int form;
        #: None until a vectorized absorb builds it, or permanently
        #: None once an id exceeded PACK_LIMIT (``_packed_overflow``)
        self._packed: Optional[set] = None
        self._packed_overflow: bool = False
        #: sorted disjoint int64 runs covering every packed row — the
        #: vectorized absorb path's dedup structure (searchsorted
        #: membership, log-structured merges); valid only while
        #: ``_runs_version`` equals the owning relation's version
        self._runs: Optional[list] = None
        self._runs_version: int = -1
        #: Bloom prefilter over the packed rows the runs cover: fresh
        #: derivations miss here and skip the searchsorted passes
        #: entirely; only the (rare) maybe-present candidates pay a
        #: precise run probe.  Rebuilt alongside the runs and grown
        #: whenever occupancy drops below ~8 bits per key.
        self._bloom: Any = None
        self._bloom_log2: int = 0
        #: per-position CSR probe images for the vectorized kernels,
        #: keyed by bound position and stamped with the relation
        #: version they were built at
        self._csr: dict = {}
        #: serializes flushes: relations sharing this store copy-on-
        #: write may flush concurrently from different threads
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self.row_set) + self._pending_rows

    # -- maintenance --------------------------------------------------------

    def add_raw(self, row: Sequence) -> EncodedRow:
        """Encode and absorb one raw row (already known new)."""
        intern = self.dictionary.intern
        enc = tuple(intern(v) for v in row)
        self.add_encoded(enc)
        return enc

    def add_encoded(self, enc: EncodedRow) -> None:
        """Absorb one encoded row (already known new)."""
        if self._pending:
            self.flush()
        self.row_set.add(enc)
        for col, v in zip(self.columns, enc):
            col.append(v)
        for positions, postings in self._postings.items():
            if len(positions) == 1:
                key = enc[positions[0]]
            else:
                key = tuple(enc[p] for p in positions)
            posting = postings.get(key)
            if posting is None:
                postings[key] = [enc]
            else:
                posting.append(enc)
        packed = self._packed
        if packed is not None:
            if any(c >= PACK_LIMIT for c in enc):
                self._packed = None
                self._packed_overflow = True
            else:
                packed.add(pack_encoded(enc))
        self._scan = None

    # -- packed fast path ---------------------------------------------------

    def packed_set(self) -> Optional[set]:
        """The set of all rows in packed-int form (vectorized dedup).

        Built lazily from the encoded row set; returns None — forever —
        once any id fails the ``PACK_LIMIT`` bound, which sends the
        vectorized absorb path back to the tuple-at-a-time one.
        """
        packed = self._packed
        if packed is not None:
            return packed
        if self._packed_overflow:
            return None
        packed = set()
        for enc in self.row_set:
            if any(c >= PACK_LIMIT for c in enc):
                self._packed_overflow = True
                return None
            packed.add(pack_encoded(enc))
        for chunk in self._pending:
            packed.update(chunk.tolist())
        self._packed = packed
        return packed

    def add_packed_pending(self, fresh) -> None:
        """Buffer one chunk of packed rows (an int64 ndarray in
        derivation order) absorbed by a vectorized kernel.

        The caller has already deduplicated *fresh* against every
        existing row; the encoded-tuple structures here are brought up
        to date by :meth:`flush` only when something reads them.
        """
        self._pending.append(fresh)
        self._pending_rows += len(fresh)
        self._scan = None

    # -- packed-row Bloom prefilter -----------------------------------------

    def bloom_rebuild(self, runs: list, total: int) -> None:
        """(Re)build the Bloom prefilter over every packed row the runs
        cover, sized to at least 8 bits per key (≥ 1 MiB of bits)."""
        log2 = max(20, int(8 * max(total, 1) - 1).bit_length())
        self._bloom_log2 = log2
        self._bloom = _np.zeros(1 << (log2 - 6), dtype=_np.uint64)
        for run in runs:
            self.bloom_add(run)

    def bloom_add(self, arr) -> None:
        """Mark sorted packed rows *arr* (an int64 ndarray) present."""
        words = self._bloom
        shift = _np.uint64(64 - self._bloom_log2)
        u = arr.view(_np.uint64)
        for k in (_BLOOM_K1, _BLOOM_K2):
            h = (u * k) >> shift
            _np.bitwise_or.at(words, h >> _B6, _B1 << (h & _B63))

    def bloom_maybe(self, arr):
        """Per-element maybe-present flags (uint64 0/1) for packed rows
        *arr*; zero means definitely absent, one means a precise run
        probe is required (~2% false positives at design occupancy)."""
        words = self._bloom
        shift = _np.uint64(64 - self._bloom_log2)
        u = arr.view(_np.uint64)
        h1 = (u * _BLOOM_K1) >> shift
        h2 = (u * _BLOOM_K2) >> shift
        return (
            (words[h1 >> _B6] >> (h1 & _B63))
            & (words[h2 >> _B6] >> (h2 & _B63))
            & _B1
        )

    def flush(self) -> None:
        """Fold pending packed rows into the encoded-tuple structures
        (row set, column arrays, postings), preserving insertion order."""
        if not self._pending:
            return
        with self._lock:
            pending = self._pending
            if not pending:  # lost the race to another flusher
                return
            arity = self.arity
            arr = pending[0] if len(pending) == 1 else _np.concatenate(pending)
            if arity == 0:
                enc_rows: list = [()] * len(arr)
                col_lists: list = []
            else:
                mask = PACK_LIMIT - 1
                col_lists = [
                    ((arr >> (PACK_SHIFT * (arity - 1 - p))) & mask).tolist()
                    for p in range(arity)
                ]
                enc_rows = (
                    list(zip(*col_lists))
                    if arity > 1
                    else [(c,) for c in col_lists[0]]
                )
            self.row_set.update(enc_rows)
            for p, col in enumerate(self.columns):
                col.extend(col_lists[p])
            for positions, postings in self._postings.items():
                single = len(positions) == 1
                p0 = positions[0] if single else None
                for enc in enc_rows:
                    key = enc[p0] if single else tuple(enc[p] for p in positions)
                    posting = postings.get(key)
                    if posting is None:
                        postings[key] = [enc]
                    else:
                        posting.append(enc)
            self._pending = []
            self._pending_rows = 0

    def profile(self) -> tuple[int, tuple[int, ...]]:
        """Measured degree profile: ``(row count, per-position max
        degree)`` — the largest number of rows any single value matches
        at each position.

        Reads already-built single-position postings when present
        (their posting lengths *are* the degrees); otherwise one
        counting pass over the dense dictionary-encoded column — no
        new postings are materialized and no constants are interned,
        so profiling never perturbs the dictionary or the relation's
        index-build counters.
        """
        self.flush()
        degrees: list[int] = []
        for p in range(self.arity):
            postings = self._postings.get((p,))
            if postings is not None:
                degrees.append(
                    max((len(rows) for rows in postings.values()), default=0)
                )
                continue
            counts: dict[int, int] = {}
            best = 0
            for c in self.columns[p]:
                n = counts.get(c, 0) + 1
                counts[c] = n
                if n > best:
                    best = n
            degrees.append(best)
        return len(self.row_set), tuple(degrees)

    # -- probes -------------------------------------------------------------

    def encoded_index(self, positions: tuple[int, ...], raw_index: dict) -> dict:
        """The encoded postings for *positions*, derived from the raw
        index (posting order preserved — the order-parity contract).

        Single-position indexes are keyed by the bare id instead of a
        1-tuple, saving a tuple allocation per probe.  Callers must
        hold the relation's build lock when the postings are missing.
        """
        postings = self._postings.get(positions)
        if postings is None:
            intern = self.dictionary.intern
            if len(positions) == 1:
                postings = {
                    intern(key[0]): [
                        tuple(intern(v) for v in row) for row in rows
                    ]
                    for key, rows in raw_index.items()
                }
            else:
                postings = {
                    tuple(intern(k) for k in key): [
                        tuple(intern(v) for v in row) for row in rows
                    ]
                    for key, rows in raw_index.items()
                }
            self._postings[positions] = postings
        return postings

    def scan_rows(self, relation) -> list:
        """Encoded rows in current ``list(relation)`` order.

        Cached against the relation's mutation version; rebuilt (not
        incrementally maintained) because a raw row *set*'s iteration
        order can change wholesale when it resizes.  The benign-race
        single assignment keeps this safe for concurrent readers.
        """
        cached = self._scan
        version = relation._version
        if cached is not None and cached[0] == version:
            return cached[1]
        intern = self.dictionary.intern
        rows = [tuple(intern(v) for v in row) for row in relation._rows]
        self._scan = (version, rows)
        return rows

    def numpy_column(self, position: int):
        """A zero-copy numpy view of one column (None without numpy)."""
        if _np is None:
            return None
        return _np.frombuffer(self.columns[position], dtype=_np.int64)

    # -- copy-on-write ------------------------------------------------------

    def copy(self) -> "ColumnStore":
        """An independent store for a privatized relation copy: column
        arrays and the row set are duplicated, derived postings and the
        scan cache are dropped (rebuilt lazily on the copy)."""
        out = ColumnStore.__new__(ColumnStore)
        out.dictionary = self.dictionary
        out.arity = self.arity
        out.epoch = self.epoch
        out.columns = [col[:] for col in self.columns]
        out.row_set = set(self.row_set)
        out._postings = {}
        out._scan = None
        out._pending = list(self._pending)  # chunks are never mutated
        out._pending_rows = self._pending_rows
        out._packed = None  # rebuilt lazily (cheap relative to a copy)
        out._packed_overflow = self._packed_overflow
        out._runs = list(self._runs) if self._runs is not None else None
        out._runs_version = self._runs_version
        # the bloom bit table is mutated in place by bloom_add, so a
        # shared reference would cross-talk; rebuild lazily instead
        out._bloom = None
        out._bloom_log2 = 0
        out._csr = {}
        out._lock = threading.Lock()
        return out
