"""Abstract syntax of Datalog programs.

A rule has the form (paper section 1.1)::

    p0(X0) :- p1(X1), ..., pn(Xn).

where each ``pi`` is a predicate name and each ``Xi`` a vector of
variables or constants.  A *query* is a rule without a head; we
represent it as the distinguished :attr:`Program.query` atom.  The IDB
is the set of rules; the EDB lives in
:class:`repro.datalog.database.Database`.

All AST nodes are immutable; transformations build new programs.  The
smart constructors :func:`atom` and :func:`rule` accept plain strings
and integers and apply the variable/constant naming convention of
:func:`repro.datalog.terms.term`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Mapping, Optional

from .errors import ArityError, SafetyError, ValidationError
from .terms import Constant, Term, Variable, term

__all__ = ["Span", "Atom", "Rule", "Program", "atom", "rule"]


@dataclass(frozen=True, slots=True)
class Span:
    """A 1-based source position (line, column) of a parsed node.

    Spans are carried by :class:`Atom` and :class:`Rule` purely as
    provenance for diagnostics: they never participate in equality or
    hashing, so transformed programs compare identically whether or not
    their atoms remember where they were parsed from.
    """

    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


@dataclass(frozen=True, slots=True)
class Atom:
    """A predicate applied to a vector of terms, e.g. ``p(X, 3, Y)``.

    Atoms appear as rule heads, body literals, queries and (when fully
    ground) facts.
    """

    predicate: str
    args: tuple[Term, ...] = ()
    #: source position of the predicate token; excluded from
    #: equality/hash/repr (diagnostic provenance only)
    span: Optional[Span] = field(default=None, compare=False, repr=False)

    @property
    def arity(self) -> int:
        return len(self.args)

    def variables(self) -> tuple[Variable, ...]:
        """The variables of the atom, in order of first occurrence."""
        seen: dict[Variable, None] = {}
        for a in self.args:
            if isinstance(a, Variable):
                seen.setdefault(a)
        return tuple(seen)

    def constants(self) -> tuple[Constant, ...]:
        """The constants of the atom, in order of first occurrence."""
        seen: dict[Constant, None] = {}
        for a in self.args:
            if isinstance(a, Constant):
                seen.setdefault(a)
        return tuple(seen)

    def is_ground(self) -> bool:
        """True iff the atom contains no variables (i.e. is a fact)."""
        return all(isinstance(a, Constant) for a in self.args)

    def substitute(self, subst: Mapping[Variable, Term]) -> "Atom":
        """Apply a substitution to every argument."""
        return Atom(
            self.predicate,
            tuple(subst.get(a, a) if isinstance(a, Variable) else a for a in self.args),
            span=self.span,
        )

    def rename_predicate(self, new_name: str) -> "Atom":
        """Return the same atom under a different predicate name."""
        return Atom(new_name, self.args, span=self.span)

    def as_fact(self) -> tuple:
        """Return the tuple of constant values; requires a ground atom."""
        if not self.is_ground():
            raise ValidationError(f"atom {self} is not ground")
        return tuple(a.value for a in self.args)  # type: ignore[union-attr]

    def __str__(self) -> str:
        if not self.args:
            return self.predicate
        return f"{self.predicate}({', '.join(map(str, self.args))})"


@dataclass(frozen=True, slots=True)
class Rule:
    """A rule ``head :- body, not negative...``.

    ``body`` holds the positive literals; ``negative`` the negated ones
    (the paper's section-6 extension direction — evaluated under the
    stratified semantics by the engine).  Pure Datalog rules simply
    leave ``negative`` empty.  An empty body denotes a fact rule.
    """

    head: Atom
    body: tuple[Atom, ...] = ()
    negative: tuple[Atom, ...] = ()
    #: source position of the rule (its head token); excluded from
    #: equality/hash/repr (diagnostic provenance only)
    span: Optional[Span] = field(default=None, compare=False, repr=False)

    def variables(self) -> tuple[Variable, ...]:
        """All variables of the rule, head first, in occurrence order."""
        seen: dict[Variable, None] = {}
        for a in (self.head, *self.body, *self.negative):
            for v in a.variables():
                seen.setdefault(v)
        return tuple(seen)

    def body_variables(self) -> frozenset[Variable]:
        """Variables of the *positive* body (the ones a safe rule may
        rely on for bindings)."""
        return frozenset(v for a in self.body for v in a.variables())

    def is_fact(self) -> bool:
        return not self.body and not self.negative and self.head.is_ground()

    def is_safe(self) -> bool:
        """Range restriction: every head variable and every variable of
        a negated literal occurs in the positive body."""
        body_vars = self.body_variables()
        if not all(v in body_vars for v in self.head.variables()):
            return False
        return all(
            v in body_vars for a in self.negative for v in a.variables()
        )

    def substitute(self, subst: Mapping[Variable, Term]) -> "Rule":
        return Rule(
            self.head.substitute(subst),
            tuple(a.substitute(subst) for a in self.body),
            tuple(a.substitute(subst) for a in self.negative),
            span=self.span,
        )

    def rename_apart(self, suffix: str) -> "Rule":
        """Rename every variable by appending *suffix* to its name."""
        mapping = {v: Variable(v.name + suffix) for v in self.variables()}
        return self.substitute(mapping)

    def predicates(self) -> frozenset[str]:
        """All predicate names occurring in the rule."""
        return frozenset(
            [
                self.head.predicate,
                *(a.predicate for a in self.body),
                *(a.predicate for a in self.negative),
            ]
        )

    def __str__(self) -> str:
        parts = [str(a) for a in self.body] + [f"not {a}" for a in self.negative]
        if not parts:
            return f"{self.head}."
        return f"{self.head} :- {', '.join(parts)}."


def atom(predicate: str, *args) -> Atom:
    """Build an atom from loosely-typed arguments.

    >>> str(atom("p", "X", 3, "foo"))
    'p(X, 3, foo)'
    """
    return Atom(predicate, tuple(term(a) for a in args))


def rule(head: Atom, *body: Atom) -> Rule:
    """Build a rule from a head atom and body atoms."""
    return Rule(head, tuple(body))


@dataclass(frozen=True)
class Program:
    """An IDB (set of rules) together with an optional query atom.

    The paper denotes a program ``P = (Q, EDB, IDB)``; the EDB is kept
    separately (a :class:`~repro.datalog.database.Database`) because the
    same program is evaluated over many database instances.

    ``Program`` objects are immutable; the ``with_*`` helpers build
    modified copies.
    """

    rules: tuple[Rule, ...] = ()
    query: Optional[Atom] = None

    def __post_init__(self):
        if not isinstance(self.rules, tuple):
            object.__setattr__(self, "rules", tuple(self.rules))

    # -- derived structure -------------------------------------------------

    def idb_predicates(self) -> frozenset[str]:
        """Predicates defined by at least one rule (derived predicates)."""
        return frozenset(r.head.predicate for r in self.rules)

    def edb_predicates(self) -> frozenset[str]:
        """Predicates that occur in rule bodies or the query but are
        never defined by a rule — by convention these are base (EDB)
        relations."""
        from .builtins import is_builtin

        defined = self.idb_predicates()
        used = set()
        for r in self.rules:
            used.update(a.predicate for a in r.body if not is_builtin(a.predicate))
            used.update(a.predicate for a in r.negative)
        if self.query is not None:
            used.add(self.query.predicate)
        return frozenset(used - defined)

    def predicates(self) -> frozenset[str]:
        """All predicate names mentioned anywhere in the program."""
        names = set()
        for r in self.rules:
            names.update(r.predicates())
        if self.query is not None:
            names.add(self.query.predicate)
        return frozenset(names)

    def arities(self) -> dict[str, int]:
        """Map every predicate to its arity.

        Raises :class:`ArityError` if any predicate is used with two
        different arities.
        """
        result: dict[str, int] = {}

        def record(a: Atom) -> None:
            prev = result.setdefault(a.predicate, a.arity)
            if prev != a.arity:
                raise ArityError(
                    f"predicate {a.predicate} used with arities {prev} and {a.arity}"
                )

        for r in self.rules:
            record(r.head)
            for b in r.body:
                record(b)
            for b in r.negative:
                record(b)
        if self.query is not None:
            record(self.query)
        return result

    def has_negation(self) -> bool:
        """True iff any rule carries a negated literal."""
        return any(r.negative for r in self.rules)

    def rules_for(self, predicate: str) -> tuple[Rule, ...]:
        """The rules whose head predicate is *predicate*."""
        return tuple(r for r in self.rules if r.head.predicate == predicate)

    def body_occurrences(self, predicate: str) -> Iterator[tuple[int, int, Atom]]:
        """Yield ``(rule_index, body_index, atom)`` for each body
        occurrence of *predicate*."""
        for ri, r in enumerate(self.rules):
            for bi, a in enumerate(r.body):
                if a.predicate == predicate:
                    yield ri, bi, a

    # -- validation ---------------------------------------------------------

    def validate(self) -> "Program":
        """Check arity consistency and rule safety; return self.

        Raises :class:`ArityError` or :class:`SafetyError` on failure,
        so it can be chained: ``parse(src).validate()``.
        """
        from .builtins import validate_builtins

        self.arities()
        validate_builtins(self)
        for r in self.rules:
            if not r.is_safe():
                exposed = set(r.head.variables()) | {
                    v for a in r.negative for v in a.variables()
                }
                unsafe = exposed - r.body_variables()
                names = ", ".join(sorted(v.name for v in unsafe))
                where = f" (line {r.span.line})" if r.span is not None else ""
                raise SafetyError(
                    f"unsafe rule (variables {names} not bound by the positive "
                    f"body): {r}{where}"
                )
        return self

    # -- functional updates --------------------------------------------------

    def with_query(self, query: Optional[Atom]) -> "Program":
        return replace(self, query=query)

    def with_rules(self, rules: Iterable[Rule]) -> "Program":
        return replace(self, rules=tuple(rules))

    def add_rules(self, rules: Iterable[Rule]) -> "Program":
        return replace(self, rules=self.rules + tuple(rules))

    def without_rule(self, index: int) -> "Program":
        return replace(self, rules=self.rules[:index] + self.rules[index + 1:])

    def without_rules(self, indexes: Iterable[int]) -> "Program":
        drop = set(indexes)
        return replace(
            self, rules=tuple(r for i, r in enumerate(self.rules) if i not in drop)
        )

    # -- dunder ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __str__(self) -> str:
        lines = [str(r) for r in self.rules]
        if self.query is not None:
            lines.append(f"?- {self.query}.")
        return "\n".join(lines)
