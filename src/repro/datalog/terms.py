"""Terms of the Datalog language: variables and constants.

The paper considers *function-free* Horn rules (Datalog), so a term is
either a variable or a constant.  Both are immutable value objects and
can be used as dictionary keys, set members, and members of frozen
``Atom``/``Rule`` structures.

The conventions follow the paper (section 1.1): upper-case names denote
variables, lower-case names and numerals denote constants.  The smart
constructor :func:`term` applies that convention, which keeps test and
example programs readable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Union

__all__ = [
    "Variable",
    "Constant",
    "Term",
    "term",
    "is_variable",
    "is_constant",
    "fresh_variable",
    "FreshVariables",
]


@dataclass(frozen=True, slots=True)
class Variable:
    """A logical variable, identified by its name.

    Two ``Variable`` objects with the same name are the same variable
    (within one rule; rules are always renamed apart before they
    interact).
    """

    name: str

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Constant:
    """A constant value.

    Values are ordinary hashable Python objects; the library uses
    strings and integers.  Two constants are equal iff their values are
    equal (``Constant(1) != Constant("1")``).
    """

    value: Union[str, int]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Constant({self.value!r})"

    def __str__(self) -> str:
        return str(self.value)


Term = Union[Variable, Constant]


def is_variable(t: Term) -> bool:
    """Return ``True`` iff *t* is a :class:`Variable`."""
    return isinstance(t, Variable)


def is_constant(t: Term) -> bool:
    """Return ``True`` iff *t* is a :class:`Constant`."""
    return isinstance(t, Constant)


def term(value) -> Term:
    """Smart constructor for terms, applying the paper's conventions.

    - an existing :class:`Variable` or :class:`Constant` is returned
      unchanged;
    - a string starting with an upper-case letter or ``_`` becomes a
      :class:`Variable` (``_`` alone denotes an anonymous variable and
      should be freshened by the caller; the parser does this);
    - any other string, and any integer, becomes a :class:`Constant`.

    >>> term("X")
    Variable('X')
    >>> term("abc")
    Constant('abc')
    >>> term(3)
    Constant(3)
    """
    if isinstance(value, (Variable, Constant)):
        return value
    if isinstance(value, str) and value and (value[0].isupper() or value[0] == "_"):
        return Variable(value)
    return Constant(value)


_fresh_counter = itertools.count(1)


def fresh_variable(prefix: str = "_V") -> Variable:
    """Return a globally fresh variable.

    Uses a process-wide counter; names look like ``_V17``.  Use
    :class:`FreshVariables` when deterministic, locally-scoped names are
    needed (e.g. in program transformations that must be reproducible).
    """
    return Variable(f"{prefix}{next(_fresh_counter)}")


class FreshVariables:
    """A deterministic fresh-variable supply.

    Produces ``prefix1``, ``prefix2``, ... skipping any name in the
    *avoid* set.  Transformations construct one of these per rule so the
    output program does not depend on global state.
    """

    def __init__(self, avoid=(), prefix: str = "_E"):
        self._avoid = {v.name if isinstance(v, Variable) else str(v) for v in avoid}
        self._prefix = prefix
        self._next = 1

    def take(self) -> Variable:
        """Return the next fresh variable not colliding with *avoid*."""
        while True:
            name = f"{self._prefix}{self._next}"
            self._next += 1
            if name not in self._avoid:
                self._avoid.add(name)
                return Variable(name)
