"""Database ↔ text serialization.

Facts round-trip through the same textual syntax the parser reads
(``edge(1, 2).`` one per line, relations sorted, rows sorted), so a
dumped database is a valid fact file for the CLI, the shell's
``.load``, and :func:`repro.datalog.parser.parse`.  String constants
that could be mistaken for variables or numbers are quoted.
"""

from __future__ import annotations

from typing import IO, Iterable, Optional

from .database import Database
from .parser import parse, split_facts

__all__ = ["dump_database", "dumps_database", "load_database", "loads_database"]


def _format_value(value) -> str:
    if isinstance(value, int):
        return str(value)
    text = str(value)
    # quote anything the parser would not read back as this constant
    if (
        not text
        or not (text[0].isalpha() and text[0].islower())
        or not all(c.isalnum() or c == "_" for c in text)
    ):
        return f"'{text}'"
    return text


def dumps_database(db: Database, predicates: Optional[Iterable[str]] = None) -> str:
    """Render *db* (or selected relations) as a fact file."""
    names = sorted(predicates) if predicates is not None else sorted(db.predicates())
    lines = []
    for name in names:
        for row in sorted(db.rows(name), key=repr):
            args = ", ".join(_format_value(v) for v in row)
            lines.append(f"{name}({args})." if row else f"{name}.")
    return "\n".join(lines) + ("\n" if lines else "")


def dump_database(db: Database, stream: IO[str], predicates=None) -> None:
    """Write :func:`dumps_database` output to *stream*."""
    stream.write(dumps_database(db, predicates))


def loads_database(text: str) -> Database:
    """Parse a fact file back into a database.

    Raises :class:`~repro.datalog.errors.ValidationError` if the text
    contains rules or a query.
    """
    from .errors import ValidationError

    program, facts = split_facts(parse(text))
    if program.rules or program.query is not None:
        raise ValidationError("fact text must contain only ground facts")
    return Database.from_facts(facts)


def load_database(stream: IO[str]) -> Database:
    """Read a fact file from *stream*."""
    return loads_database(stream.read())
