"""Static analysis of Datalog programs.

Provides the structural facts every optimizer phase relies on:

- the predicate *dependency graph* (head depends on body predicates);
- strongly connected components and the set of *recursive* predicates;
- reachability from the query (used by the cascade cleanup of
  section 5: rules defining predicates unreachable from the query can
  be discarded — Examples 7 and 8);
- predicates that are used but never defined (after rule deletion, a
  rule whose body mentions such a predicate can never fire and is
  itself discarded);
- chain-program detection (section 1.1), which underpins the grammar
  correspondence of Lemma 4.1 and Theorem 3.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

from .ast import Program, Rule
from .terms import Variable

__all__ = [
    "dependency_graph",
    "negative_dependencies",
    "stratify",
    "is_stratified",
    "strongly_connected_components",
    "recursive_predicates",
    "is_recursive_rule",
    "is_recursive_component",
    "condensation",
    "component_depths",
    "reachable_predicates",
    "undefined_body_predicates",
    "is_chain_rule",
    "is_chain_program",
    "DependencyInfo",
    "analyze",
]


def dependency_graph(program: Program) -> dict[str, frozenset[str]]:
    """Map each derived predicate to the set of predicates it depends on
    directly (occurring positively or negatively in one of its rules)."""
    graph: dict[str, set[str]] = {}
    for r in program.rules:
        deps = graph.setdefault(r.head.predicate, set())
        deps.update(a.predicate for a in r.body)
        deps.update(a.predicate for a in r.negative)
    return {k: frozenset(v) for k, v in graph.items()}


def negative_dependencies(program: Program) -> frozenset[tuple[str, str]]:
    """Edges ``(head, p)`` where some rule for *head* negates *p*."""
    return frozenset(
        (r.head.predicate, a.predicate)
        for r in program.rules
        for a in r.negative
    )


def stratify(
    program: Program, info: Optional["DependencyInfo"] = None
) -> list[frozenset[str]]:
    """Partition the derived predicates into strata such that every
    positive dependency stays within or below a predicate's stratum and
    every *negative* dependency points strictly below.

    Raises :class:`~repro.datalog.errors.ValidationError` when no such
    partition exists (recursion through negation) — the program is then
    not stratified and has no least-fixpoint semantics here.

    The returned list orders strata bottom-up; base (EDB) predicates
    implicitly occupy stratum -1 and are not listed.

    Pass the program's :class:`DependencyInfo` (from :func:`analyze`)
    to reuse its dependency graph and SCCs instead of recomputing both
    from scratch.
    """
    from .errors import ValidationError

    if info is None:
        info = analyze(program)
    graph = info.graph
    negative = negative_dependencies(program)
    sccs = info.sccs
    idb = info.idb

    component_of: dict[str, int] = {}
    for i, scc in enumerate(sccs):
        for p in scc:
            component_of[p] = i

    for head, p in negative:
        if p in idb and component_of.get(head) == component_of.get(p):
            raise ValidationError(
                f"program is not stratified: {head} recurses through "
                f"negation of {p}"
            )

    # Longest-path layering over the condensation: a component's
    # stratum is the maximum over (dep stratum [+1 if negative]).
    strata_of_component: dict[int, int] = {}
    for i, scc in enumerate(sccs):  # reverse topological: deps first
        level = 0
        for p in scc:
            for dep in graph.get(p, ()):
                if dep not in idb:
                    continue
                dep_component = component_of[dep]
                if dep_component == i:
                    continue
                bump = 1 if (p, dep) in negative else 0
                level = max(level, strata_of_component[dep_component] + bump)
        strata_of_component[i] = level

    out: dict[int, set[str]] = {}
    for i, scc in enumerate(sccs):
        members = {p for p in scc if p in idb}
        if members:
            out.setdefault(strata_of_component[i], set()).update(members)
    return [frozenset(out[k]) for k in sorted(out)]


def is_stratified(program: Program) -> bool:
    """True iff :func:`stratify` succeeds."""
    from .errors import ValidationError

    try:
        stratify(program)
    except ValidationError:
        return False
    return True


def strongly_connected_components(graph: dict[str, frozenset[str]]) -> list[frozenset[str]]:
    """Tarjan's algorithm, iterative; returns SCCs in reverse
    topological order (callees before callers)."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    result: list[frozenset[str]] = []
    counter = 0

    nodes = set(graph)
    for deps in graph.values():
        nodes.update(deps)

    for root in sorted(nodes):
        if root in index:
            continue
        # Iterative Tarjan: work items are (node, child-iterator).
        work = [(root, iter(sorted(graph.get(root, ()))))]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = lowlink[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(graph.get(child, ())))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = set()
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.add(w)
                    if w == node:
                        break
                result.append(frozenset(component))
    return result


def recursive_predicates(program: Program) -> frozenset[str]:
    """Predicates involved in recursion: members of a multi-node SCC of
    the dependency graph, or with a self-loop."""
    graph = dependency_graph(program)
    recursive: set[str] = set()
    for component in strongly_connected_components(graph):
        if is_recursive_component(component, graph):
            recursive.update(component)
    return frozenset(recursive)


def is_recursive_component(component: frozenset[str], graph: Mapping[str, frozenset[str]]) -> bool:
    """True iff *component* (an SCC of *graph*) contains a cycle: more
    than one member, or a single member with a self-loop."""
    if len(component) > 1:
        return True
    (node,) = component
    return node in graph.get(node, frozenset())


def condensation(info: "DependencyInfo") -> dict[int, frozenset[int]]:
    """Dependency edges of the SCC condensation DAG.

    Maps each component index (into ``info.sccs``) to the indexes of
    the components it depends on (self-edges dropped).  Components are
    already in reverse topological order, so ``edges[i]`` only contains
    indexes ``j < i``.
    """
    component_of = {p: i for i, scc in enumerate(info.sccs) for p in scc}
    edges: dict[int, set[int]] = {i: set() for i in range(len(info.sccs))}
    for i, scc in enumerate(info.sccs):
        for p in scc:
            for dep in info.graph.get(p, ()):
                j = component_of[dep]
                if j != i:
                    edges[i].add(j)
    return {i: frozenset(deps) for i, deps in edges.items()}


def component_depths(
    edges: Mapping[int, frozenset[int]], within: Iterable[int]
) -> dict[int, int]:
    """Longest-path depth of each component of *within* over the
    condensation *edges*, counting only edges between members of
    *within* (dependencies outside the set — lower strata, EDB — sit at
    an implicit depth below 0).

    Components at equal depth have no dependency path between them, so
    they are safe to evaluate concurrently once every lower depth has
    been retired.
    """
    members = set(within)
    depths: dict[int, int] = {}

    def depth(i: int) -> int:
        d = depths.get(i)
        if d is None:
            # edges point at strictly smaller indexes (reverse
            # topological numbering), so this recursion terminates
            d = max(
                (depth(j) + 1 for j in edges.get(i, ()) if j in members),
                default=0,
            )
            depths[i] = d
        return d

    for i in members:
        depth(i)
    return depths


def is_recursive_rule(rule: Rule, recursive: frozenset[str]) -> bool:
    """True iff the rule's head is recursive and its body mentions a
    predicate of the head's recursive component (conservatively: any
    recursive predicate; exact per-SCC classification is available by
    passing that SCC as *recursive*)."""
    if rule.head.predicate not in recursive:
        return False
    return any(a.predicate in recursive for a in rule.body)


def reachable_predicates(program: Program, roots: Iterable[str]) -> frozenset[str]:
    """Predicates reachable from *roots* in the dependency graph."""
    graph = dependency_graph(program)
    seen: set[str] = set()
    stack = list(roots)
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(graph.get(node, ()))
    return frozenset(seen)


def undefined_body_predicates(program: Program, edb: Iterable[str] = ()) -> frozenset[str]:
    """Derived-looking predicates that occur in rule bodies but have no
    defining rule and are not declared EDB.

    After rule deletions, a body literal over such a predicate can never
    be satisfied, so its rule is dead (paper, Examples 7 and 8).  Because
    programs do not declare their EDB schema, callers pass the known EDB
    names; by default every never-defined predicate is assumed to be EDB
    and this function is only useful with an explicit *edb* or within an
    adorned program, where derived predicates are syntactically marked.
    """
    defined = program.idb_predicates()
    edb_set = set(edb)
    used = set()
    for r in program.rules:
        used.update(a.predicate for a in r.body)
        used.update(a.predicate for a in r.negative)
    return frozenset(p for p in used if p not in defined and p not in edb_set)


def is_chain_rule(rule: Rule) -> bool:
    """True iff the rule has the binary chain shape of section 1.1::

        p(X, Y) :- q1(X, Z1), q2(Z1, Z2), ..., qn(Zn-1, Y).

    with all predicates binary, consecutive literals linked by a shared
    variable, the head's first variable opening the chain and its second
    variable closing it, and all chain variables distinct.
    """
    if rule.head.arity != 2:
        return False
    x, y = rule.head.args
    if not isinstance(x, Variable) or not isinstance(y, Variable) or x == y:
        return False
    if not rule.body:
        return False
    chain_vars = [x]
    for literal in rule.body:
        if literal.arity != 2:
            return False
        a, b = literal.args
        if a != chain_vars[-1] or not isinstance(b, Variable):
            return False
        if b in chain_vars and b != y:
            return False
        chain_vars.append(b)
    return chain_vars[-1] == y and y not in chain_vars[:-1]


def is_chain_program(program: Program) -> bool:
    """True iff every rule is a binary chain rule (section 1.1)."""
    return all(is_chain_rule(r) for r in program.rules)


@dataclass(frozen=True)
class DependencyInfo:
    """A bundle of the static facts used by the optimizer phases."""

    graph: dict[str, frozenset[str]]
    sccs: tuple[frozenset[str], ...]
    recursive: frozenset[str]
    idb: frozenset[str]
    edb: frozenset[str]
    reachable_from_query: frozenset[str]

    def is_derived(self, predicate: str) -> bool:
        return predicate in self.idb


def analyze(program: Program) -> DependencyInfo:
    """Run all static analyses once and bundle the results.

    The dependency graph and its SCCs are computed exactly once here;
    the recursive set and query reachability are derived from them
    rather than recomputed (and :func:`stratify` accepts the bundle for
    the same reason).
    """
    graph = dependency_graph(program)
    sccs = tuple(strongly_connected_components(graph))
    recursive: set[str] = set()
    for component in sccs:
        if is_recursive_component(component, graph):
            recursive.update(component)
    seen: set[str] = set()
    stack = [program.query.predicate] if program.query is not None else []
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(graph.get(node, ()))
    return DependencyInfo(
        graph=graph,
        sccs=sccs,
        recursive=frozenset(recursive),
        idb=program.idb_predicates(),
        edb=program.edb_predicates(),
        reachable_from_query=frozenset(seen),
    )
