"""A hand-written lexer and recursive-descent parser for textual Datalog.

The accepted grammar (newlines are insignificant; ``%`` starts a
comment running to end of line)::

    program   := statement*
    statement := query | clause
    query     := "?-" atom "."
    clause    := atom ( ":-" atom ("," atom)* )? "."
    atom      := IDENT ( "(" (term ("," term)*)? ")" )?
    term      := IDENT | NUMBER | STRING

Identifier tokens may contain ``@`` and ``.`` after the first character
so that adorned predicate names (``a@nd``) and occurrence-numbered
names from the paper (``p.1``) can be written literally.  An identifier
starting with an upper-case letter or underscore is a variable; a bare
``_`` is an anonymous variable and is replaced by a fresh variable per
occurrence (scoped to the clause).  Numbers are integer constants;
single-quoted strings are string constants (so ``'X'`` is the constant
``"X"``, not a variable).

Clauses with an empty body are *facts* if ground; :func:`parse` keeps
them in the returned :class:`~repro.datalog.ast.Program` as body-less
rules, and :func:`split_facts` separates them into a database when the
caller wants the paper's convention that the IDB contains no facts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from .ast import Atom, Program, Rule, Span
from .errors import ParseError
from .terms import Constant, Term, Variable

__all__ = ["parse", "parse_atom", "parse_rule", "tokenize", "Token"]

_PUNCT = {
    ":-": "IMPLIES",
    "?-": "QUERY",
    "(": "LPAREN",
    ")": "RPAREN",
    ",": "COMMA",
    ".": "DOT",
}


@dataclass(frozen=True)
class Token:
    """A lexical token with its source position (1-based)."""

    kind: str  # IDENT | NUMBER | STRING | one of _PUNCT values | EOF
    text: str
    line: int
    column: int


def _ident_start(c: str) -> bool:
    return c.isalpha() or c == "_"


def _ident_continue(c: str) -> bool:
    return c.isalnum() or c in "_@"


def tokenize(source: str) -> Iterator[Token]:
    """Yield the tokens of *source*, ending with an EOF token.

    Raises :class:`ParseError` on an unexpected character or an
    unterminated string literal.
    """
    line, col = 1, 1
    i, n = 0, len(source)
    while i < n:
        c = source[i]
        if c == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if c.isspace():
            i += 1
            col += 1
            continue
        if c == "%":
            while i < n and source[i] != "\n":
                i += 1
            continue
        two = source[i : i + 2]
        if two in (":-", "?-"):
            yield Token(_PUNCT[two], two, line, col)
            i += 2
            col += 2
            continue
        if _ident_start(c):
            start = i
            i += 1
            while i < n and _ident_continue(source[i]):
                i += 1
            # A dot inside an identifier (occurrence numbering "p.1") is
            # only consumed when followed by another identifier char;
            # otherwise it terminates the clause.
            while i + 1 < n and source[i] == "." and _ident_continue(source[i + 1]):
                i += 1
                while i < n and _ident_continue(source[i]):
                    i += 1
            text = source[start:i]
            yield Token("IDENT", text, line, col)
            col += i - start
            continue
        if c.isdigit() or (c == "-" and i + 1 < n and source[i + 1].isdigit()):
            start = i
            i += 1
            while i < n and source[i].isdigit():
                i += 1
            text = source[start:i]
            yield Token("NUMBER", text, line, col)
            col += i - start
            continue
        if c == "'":
            start = i
            i += 1
            while i < n and source[i] != "'":
                if source[i] == "\n":
                    raise ParseError("unterminated string literal", line, col)
                i += 1
            if i >= n:
                raise ParseError("unterminated string literal", line, col)
            text = source[start + 1 : i]
            i += 1
            yield Token("STRING", text, line, col)
            col += i - start
            continue
        if c in _PUNCT:
            yield Token(_PUNCT[c], c, line, col)
            i += 1
            col += 1
            continue
        raise ParseError(f"unexpected character {c!r}", line, col)
    yield Token("EOF", "", line, col)


class _Parser:
    def __init__(self, source: str):
        self._tokens = list(tokenize(source))
        self._pos = 0
        self._anon_count = 0

    # -- token plumbing ---------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        tok = self._current
        if tok.kind != "EOF":
            self._pos += 1
        return tok

    def _expect(self, kind: str) -> Token:
        tok = self._current
        if tok.kind != kind:
            raise ParseError(
                f"expected {kind}, found {tok.kind} ({tok.text!r})", tok.line, tok.column
            )
        return self._advance()

    def _accept(self, kind: str) -> Optional[Token]:
        if self._current.kind == kind:
            return self._advance()
        return None

    # -- grammar ------------------------------------------------------------

    def program(self) -> Program:
        rules: list[Rule] = []
        query: Optional[Atom] = None
        while self._current.kind != "EOF":
            if self._accept("QUERY"):
                q = self.atom()
                self._expect("DOT")
                if query is not None:
                    tok = self._current
                    raise ParseError("multiple queries in program", tok.line, tok.column)
                query = q
                continue
            self._anon_count = 0  # anonymous variables are clause-scoped
            head = self.atom()
            body: list[Atom] = []
            negative: list[Atom] = []
            if self._accept("IMPLIES"):
                self.literal(body, negative)
                while self._accept("COMMA"):
                    self.literal(body, negative)
            self._expect("DOT")
            rules.append(Rule(head, tuple(body), tuple(negative), span=head.span))
        return Program(tuple(rules), query)

    def literal(self, body: list, negative: list) -> None:
        """Parse one body literal; ``not`` introduces a negated one.

        ``not`` is only treated as the negation keyword when followed
        by another identifier, so a predicate named ``not`` with
        parenthesized arguments still parses (``not(X)``).
        """
        tok = self._current
        if (
            tok.kind == "IDENT"
            and tok.text == "not"
            and self._tokens[self._pos + 1].kind == "IDENT"
        ):
            self._advance()
            negative.append(self.atom())
        else:
            body.append(self.atom())

    def atom(self) -> Atom:
        name_tok = self._expect("IDENT")
        name = name_tok.text
        if name[0].isupper() or name[0] == "_":
            raise ParseError(
                f"predicate name {name!r} must not start with an upper-case "
                "letter or underscore",
                name_tok.line,
                name_tok.column,
            )
        args: list[Term] = []
        if self._accept("LPAREN"):
            if self._current.kind != "RPAREN":
                args.append(self.term())
                while self._accept("COMMA"):
                    args.append(self.term())
            self._expect("RPAREN")
        return Atom(name, tuple(args), span=Span(name_tok.line, name_tok.column))

    def term(self) -> Term:
        tok = self._current
        if tok.kind == "IDENT":
            self._advance()
            if tok.text == "_":
                self._anon_count += 1
                return Variable(f"_{self._anon_count}")
            if tok.text[0].isupper() or tok.text[0] == "_":
                return Variable(tok.text)
            return Constant(tok.text)
        if tok.kind == "NUMBER":
            self._advance()
            return Constant(int(tok.text))
        if tok.kind == "STRING":
            self._advance()
            return Constant(tok.text)
        raise ParseError(
            f"expected a term, found {tok.kind} ({tok.text!r})", tok.line, tok.column
        )


def parse(source: str) -> Program:
    """Parse a whole program: rules, facts, and at most one query.

    >>> p = parse('''
    ...     query(X) :- a(X, Y).
    ...     a(X, Y) :- p(X, Z), a(Z, Y).
    ...     a(X, Y) :- p(X, Y).
    ...     ?- query(X).
    ... ''')
    >>> len(p.rules)
    3
    """
    return _Parser(source).program()


def parse_atom(source: str) -> Atom:
    """Parse a single atom, e.g. ``parse_atom("p(X, 3)")``."""
    parser = _Parser(source)
    a = parser.atom()
    parser._accept("DOT")
    parser._expect("EOF")
    return a


def parse_rule(source: str) -> Rule:
    """Parse a single rule (or fact) terminated by a dot."""
    program = parse(source)
    if len(program.rules) != 1 or program.query is not None:
        raise ParseError("expected exactly one rule")
    return program.rules[0]


def split_facts(program: Program) -> tuple[Program, list[Atom]]:
    """Separate ground body-less rules (facts) from proper rules.

    Implements the paper's convention (section 1.1) that all facts are
    part of the EDB: returns the fact-free program and the fact atoms.
    """
    facts = [r.head for r in program.rules if r.is_fact()]
    rules = tuple(r for r in program.rules if not r.is_fact())
    return Program(rules, program.query), facts
