"""Evaluable comparison predicates — the paper's "evaluable functions"
extension direction (section 6).

Six reserved binary predicates are evaluated rather than looked up::

    lt(X, Y)   X < Y          gt(X, Y)   X > Y
    le(X, Y)   X <= Y         ge(X, Y)   X >= Y
    eq(X, Y)   X == Y         neq(X, Y)  X != Y

They act as *filters*: both arguments must be bound by ordinary
(relational) positive literals — the safety rule extends accordingly —
and the engine checks them once a candidate match is complete.  Order
comparisons between values of different Python types are false rather
than an error (``lt(1, "a")`` fails), keeping evaluation total;
``eq``/``neq`` compare by value equality as usual.

Because a built-in constrains which instantiations fire, the
optimizer's equivalence-based deletion machinery treats programs
containing built-ins conservatively (the frozen-body chase cannot
evaluate a comparison over skolem constants); adornment and projection
remain applicable — a built-in's variables are simply always needed.
"""

from __future__ import annotations

from typing import Callable

from .ast import Program
from .errors import ValidationError

__all__ = [
    "BUILTINS",
    "is_builtin",
    "eval_builtin",
    "negated_builtin",
    "validate_builtins",
    "has_builtins",
]


def _ordered(op: Callable[[object, object], bool]) -> Callable[[object, object], bool]:
    def check(a, b) -> bool:
        try:
            return bool(op(a, b))
        except TypeError:
            return False

    return check


BUILTINS: dict[str, Callable[[object, object], bool]] = {
    "lt": _ordered(lambda a, b: a < b),
    "le": _ordered(lambda a, b: a <= b),
    "gt": _ordered(lambda a, b: a > b),
    "ge": _ordered(lambda a, b: a >= b),
    "eq": lambda a, b: a == b,
    "neq": lambda a, b: a != b,
}

#: the complement of each built-in (used to reject `not lt(...)` with a
#: helpful message: write `ge(...)` instead)
COMPLEMENT = {"lt": "ge", "le": "gt", "gt": "le", "ge": "lt", "eq": "neq", "neq": "eq"}


def is_builtin(predicate: str) -> bool:
    return predicate in BUILTINS


def eval_builtin(predicate: str, a, b) -> bool:
    """Evaluate one built-in on two bound values."""
    return BUILTINS[predicate](a, b)


def negated_builtin(predicate: str) -> str:
    """The built-in equivalent to the negation of *predicate*."""
    return COMPLEMENT[predicate]


def has_builtins(program: Program) -> bool:
    return any(
        is_builtin(a.predicate) for r in program.rules for a in r.body
    )


def validate_builtins(program: Program) -> None:
    """Static checks beyond ordinary safety:

    - built-ins never appear as rule heads or under ``not`` (use the
      complement built-in instead);
    - built-ins are binary;
    - both arguments are bound by relational positive literals.
    """
    for r in program.rules:
        if is_builtin(r.head.predicate):
            raise ValidationError(f"built-in {r.head.predicate!r} cannot be defined: {r}")
        for a in r.negative:
            if is_builtin(a.predicate):
                raise ValidationError(
                    f"negated built-in in {r}; write {negated_builtin(a.predicate)}(...) "
                    "instead of not " + a.predicate + "(...)"
                )
        relational_vars = {
            v
            for a in r.body
            if not is_builtin(a.predicate)
            for v in a.variables()
        }
        for a in r.body:
            if not is_builtin(a.predicate):
                continue
            if a.arity != 2:
                raise ValidationError(f"built-in {a} must be binary: {r}")
            unbound = [v for v in a.variables() if v not in relational_vars]
            if unbound:
                names = ", ".join(v.name for v in unbound)
                raise ValidationError(
                    f"built-in {a} uses variables ({names}) not bound by a "
                    f"relational literal: {r}"
                )
