"""Random EDB instances matching a program's schema.

The differential tests and benchmarks need databases whose relation
names and arities match whatever program is under test;
:func:`random_edb` derives the schema from the program and fills each
base relation with deterministic pseudo-random tuples.
"""

from __future__ import annotations

import random
from typing import Mapping, Optional

from ..datalog.ast import Program
from ..datalog.database import Database
from .graphs import random_relation

__all__ = ["random_edb", "uniform_instance"]


def random_edb(
    program: Program,
    rows: int = 30,
    domain: int = 12,
    seed: int = 0,
    rows_per_predicate: Optional[Mapping[str, int]] = None,
) -> Database:
    """A random database over the program's EDB predicates.

    Each base relation receives *rows* distinct uniform tuples over the
    integer domain ``0..domain-1`` (overridable per predicate).  The
    seed stream is derived per predicate so adding a predicate does not
    reshuffle the others.
    """
    db = Database()
    arities = program.arities()
    for i, pred in enumerate(sorted(program.edb_predicates())):
        count = rows if rows_per_predicate is None else rows_per_predicate.get(pred, rows)
        rel = db.ensure(pred, arities[pred])
        rel.update(random_relation(arities[pred], count, domain, seed=seed * 7919 + i))
    return db


def uniform_instance(
    program: Program,
    rows: int = 10,
    domain: int = 8,
    seed: int = 0,
) -> Database:
    """A random database over *all* predicates of the program, derived
    ones included — the input shape of the *uniform* equivalence
    notions of section 4 (no restriction that IDB predicates start
    empty)."""
    db = Database()
    arities = program.arities()
    rng = random.Random(seed)
    for i, pred in enumerate(sorted(arities)):
        rel = db.ensure(pred, arities[pred])
        rel.update(
            random_relation(arities[pred], rows, domain, seed=rng.randrange(1 << 30))
        )
    return db
