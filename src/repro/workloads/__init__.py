"""Synthetic workloads: the paper's example programs and EDB generators.

- :mod:`~repro.workloads.paper_examples` — every worked example of the
  paper (Examples 1-12) as parsed programs, including the adorned forms
  the paper presents directly, with documented reconstructions where the
  source text is garbled;
- :mod:`~repro.workloads.graphs` — deterministic pseudo-random and
  structured graph/relation generators used by the tests and benchmark
  suite.
"""

from . import edb, families, graphs, paper_examples
from .graphs import (
    bipartite,
    chain,
    complete,
    cycle,
    grid,
    layered_dag,
    random_digraph,
    random_relation,
    tree,
)
from .edb import random_edb, uniform_instance
from .families import all_families
from .paper_examples import adorned_from_text

__all__ = [
    "edb",
    "families",
    "graphs",
    "paper_examples",
    "random_edb",
    "uniform_instance",
    "all_families",
    "adorned_from_text",
    "chain",
    "cycle",
    "tree",
    "grid",
    "complete",
    "bipartite",
    "layered_dag",
    "random_digraph",
    "random_relation",
]
