"""Parameterized program families for tests and benchmarks.

Each factory returns a fresh :class:`~repro.datalog.ast.Program` with a
query; together they cover the structural space the paper's
optimizations care about: linearity (left/right/non-linear recursion),
where the existential argument sits (never / crosses the recursion /
needed inside it), guard components, payload arity, bound constants,
and stratified negation.  The differential test suite sweeps all of
them through the pipeline.
"""

from __future__ import annotations

from ..datalog.ast import Program
from ..datalog.parser import parse

__all__ = [
    "right_linear_tc",
    "left_linear_tc",
    "nonlinear_tc",
    "tc_sources",
    "same_generation",
    "same_generation_sources",
    "reachability_with_payload",
    "guarded_items",
    "bill_of_materials",
    "win_move_stratified",
    "bounded_source_tc",
    "two_level_chain",
    "boolean_chain",
    "sibling_components",
    "all_families",
]


def right_linear_tc() -> Program:
    """Binary transitive closure, right-linear recursion, full query."""
    return parse(
        """
        tc(X, Y) :- edge(X, Y).
        tc(X, Y) :- edge(X, Z), tc(Z, Y).
        ?- tc(X, Y).
        """
    )


def left_linear_tc() -> Program:
    """Examples 5/6: left-linear TC with an existential target."""
    return parse(
        """
        tc(X, Y) :- tc(X, Z), edge(Z, Y).
        tc(X, Y) :- edge(X, Y).
        ?- tc(X, _).
        """
    )


def nonlinear_tc() -> Program:
    """Quadratic (non-linear) TC with an existential target."""
    return parse(
        """
        tc(X, Y) :- edge(X, Y).
        tc(X, Y) :- tc(X, Z), tc(Z, Y).
        ?- tc(X, _).
        """
    )


def tc_sources() -> Program:
    """Example 1: which nodes reach something?"""
    return parse(
        """
        query(X) :- tc(X, Y).
        tc(X, Y) :- edge(X, Z), tc(Z, Y).
        tc(X, Y) :- edge(X, Y).
        ?- query(X).
        """
    )


def same_generation() -> Program:
    """Classic same-generation, full binary query."""
    return parse(
        """
        sg(X, Y) :- flat(X, Y).
        sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
        ?- sg(X, Y).
        """
    )


def same_generation_sources() -> Program:
    """Same-generation with an existential partner — the boundary case
    where the existential argument is needed *inside* the recursion."""
    return parse(
        """
        sg(X, Y) :- flat(X, Y).
        sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
        ?- sg(X, _).
        """
    )


def reachability_with_payload(columns: int = 1) -> Program:
    """Reachability carrying *columns* existential payload columns —
    the P5 arity-sweep family."""
    pay = [f"T{i}" for i in range(columns)]
    head = ", ".join(["X", "Y", *pay])
    tags = ", ".join(f"tag{i}(Y, {v})" for i, v in enumerate(pay))
    exit_rule = f"reach({head}) :- edge(X, Y){', ' + tags if tags else ''}."
    rec = f"reach({head}) :- edge(X, Z), reach({', '.join(['Z', 'Y', *pay])})."
    query = ", ".join(["X", "Y"] + ["_"] * columns)
    return parse(f"{exit_rule}\n{rec}\n?- reach({query}).")


def guarded_items() -> Program:
    """Example-2 shape: a disconnected existence guard over a recursion."""
    return parse(
        """
        q(X) :- item(X, Y), witness(U, V), mark(V).
        witness(U, V) :- link(U, V).
        witness(U, V) :- link(U, W), witness(W, V).
        ?- q(X).
        """
    )


def bill_of_materials() -> Program:
    """Part-containment with a certification witness (existential)."""
    return parse(
        """
        buildable(P) :- assembly(P), has_part(P, C).
        has_part(P, C) :- part_of(C, P).
        has_part(P, C) :- part_of(S, P), has_part(S, C).
        ?- buildable(P).
        """
    )


def win_move_stratified() -> Program:
    """A stratified negation family: nodes with no outgoing move are
    stuck; a node is safe if it is not stuck and moves only to stuck
    nodes... simplified to two strata to stay stratified."""
    return parse(
        """
        has_move(X) :- move(X, Y).
        stuck(X) :- position(X), not has_move(X).
        escape(X) :- move(X, Y), not stuck(X).
        ?- escape(X).
        """
    )


def bounded_source_tc(source: int = 0) -> Program:
    """TC queried from a constant source — the magic-sets family."""
    return parse(
        f"""
        tc(X, Y) :- edge(X, Y).
        tc(X, Y) :- edge(X, Z), tc(Z, Y).
        ?- tc({source}, _).
        """
    )


def two_level_chain() -> Program:
    """Recursion below a non-recursive wrapper with an existential."""
    return parse(
        """
        q(X) :- r(X, Y).
        r(X, Y) :- s(X, Z), r(Z, Y).
        r(X, Y) :- s(X, Y).
        s(X, Y) :- base(X, Y).
        ?- q(X).
        """
    )


def boolean_chain(k: int = 3) -> Program:
    """A chain of *k* non-recursive boolean guards below a query — the
    multi-component boolean family of section 3.1.

    The query rule is listed *first*, so the monolithic stratum loop
    needs one round per chain level before ``q`` can fire (k+2 rounds
    total); the SCC scheduler orders the chain topologically and fires
    every rule exactly once.
    """
    rules = [f"q(X) :- item(X), b{k}()."]
    for i in range(k, 1, -1):
        rules.append(f"b{i}() :- c{i}(U, V), b{i - 1}().")
    rules.append("b1() :- c1(U, V), mark(V).")
    rules.append("?- q(X).")
    return parse("\n".join(rules))


def sibling_components(k: int = 3) -> Program:
    """*k* independent transitive closures feeding one query — ≥3
    sibling SCC units at the same condensation depth, the shape the
    scheduler can evaluate concurrently (``EngineOptions.parallel``).
    """
    rules = []
    for i in range(1, k + 1):
        rules.append(f"tc{i}(X, Y) :- edge{i}(X, Y).")
        rules.append(f"tc{i}(X, Y) :- edge{i}(X, Z), tc{i}(Z, Y).")
    body = ", ".join(f"tc{i}(X, A{i})" for i in range(1, k + 1))
    rules.append(f"q(X) :- {body}.")
    rules.append("?- q(X).")
    return parse("\n".join(rules))


def all_families() -> dict[str, Program]:
    """Every family at default parameters, keyed by name."""
    return {
        "right_linear_tc": right_linear_tc(),
        "left_linear_tc": left_linear_tc(),
        "nonlinear_tc": nonlinear_tc(),
        "tc_sources": tc_sources(),
        "same_generation": same_generation(),
        "same_generation_sources": same_generation_sources(),
        "payload1": reachability_with_payload(1),
        "payload2": reachability_with_payload(2),
        "guarded_items": guarded_items(),
        "bill_of_materials": bill_of_materials(),
        "win_move_stratified": win_move_stratified(),
        "bounded_source_tc": bounded_source_tc(),
        "two_level_chain": two_level_chain(),
        "boolean_chain": boolean_chain(),
        "sibling_components": sibling_components(),
    }
