"""The paper's worked examples (Examples 1-12), machine-readable.

The paper's "evaluation" consists of twelve worked examples; this
module provides each one as a parsed program (and, where the paper
presents the adorned program directly, as an :class:`AdornedProgram`
built by :func:`adorned_from_text`), so the test suite can check the
implementation reproduces every transformation and the benchmark suite
can measure every performance claim.

**Reconstruction notes.**  The available source text of the paper is an
OCR transcription, and the rule listings of Examples 7-11 are garbled
(inconsistent arities and occurrence numbers).  Those examples are
reconstructed here from the *prose*, which is intact and fully
determines the intended behaviour; each reconstruction's docstring
states the narrative facts it is built to exhibit, and the tests assert
exactly those facts.  Examples 1-6 and 12 are legible in the source and
are transcribed directly (modulo the ``@`` spelling of adornments).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..datalog.ast import Program
from ..datalog.errors import ValidationError
from ..datalog.parser import parse
from ..core.adornment import (
    Adornment,
    AdornedLiteral,
    AdornedProgram,
    AdornedRule,
    split_adorned,
)

__all__ = [
    "adorned_from_text",
    "example1_program",
    "example1_adorned_text",
    "example2_program",
    "example3_expected_text",
    "example5_program",
    "example5_adorned_text",
    "example6_optimized_text",
    "example7_adorned",
    "example7_reduced_text",
    "example8_adorned",
    "example8_empty_adorned",
    "example9_adorned",
    "example9_fold_spec",
    "example10_adorned",
    "example12_original",
    "example12_transformed",
]


def adorned_from_text(
    text: str,
    booleans: Iterable[str] = (),
    projected: bool = True,
) -> AdornedProgram:
    """Parse an adorned program written with ``@``-mangled names.

    Predicates containing an adornment suffix (``a@nd``) are derived;
    so are predicates defined by a rule and any names in *booleans*.
    Base literals get an implicit all-``n`` adornment.  With
    ``projected=True`` (the default), each adorned atom must have one
    argument per ``n`` of its adornment; otherwise one per adornment
    character.
    """
    program = parse(text)
    if program.query is None:
        raise ValidationError("adorned program text must include a query (?- ...)")
    heads = {r.head.predicate for r in program.rules}
    boolean_set = frozenset(booleans)

    def to_lit(atom) -> AdornedLiteral:
        base, ad = split_adorned(atom.predicate)
        derived = ad is not None or atom.predicate in heads or atom.predicate in boolean_set
        if ad is None:
            ad = Adornment("n" * atom.arity)
        expected = len(ad.needed_positions) if projected else len(ad)
        if atom.arity != expected:
            raise ValidationError(
                f"literal {atom} has arity {atom.arity}, expected {expected} "
                f"for adornment {ad} (projected={projected})"
            )
        return AdornedLiteral(atom, ad, derived)

    rules = tuple(
        AdornedRule(
            to_lit(r.head),
            tuple(to_lit(b) for b in r.body),
            tuple(to_lit(b) for b in r.negative),
        )
        for r in program.rules
    )
    return AdornedProgram(
        rules, to_lit(program.query), projected=projected, boolean_predicates=boolean_set
    )


# ---------------------------------------------------------------------------
# Examples 1-4: right-linear transitive closure (sections 2 and 3.2)
# ---------------------------------------------------------------------------

def example1_program() -> Program:
    """Example 1: the original program whose adornment the paper shows."""
    return parse(
        """
        query(X) :- a(X, Y).
        a(X, Y) :- p(X, Z), a(Z, Y).
        a(X, Y) :- p(X, Y).
        ?- query(X).
        """
    )


def example1_adorned_text() -> str:
    """The adorned program of Example 1, verbatim (``@`` spelling)."""
    return """
        query@n(X) :- a@nd(X, Y).
        a@nd(X, Y) :- p(X, Z), a@nd(Z, Y).
        a@nd(X, Y) :- p(X, Y).
        ?- query@n(X).
    """


def example3_expected_text() -> str:
    """Example 3: Example 1 after projection pushing — unary recursion."""
    return """
        query@n(X) :- a@nd(X).
        a@nd(X) :- p(X, Z), a@nd(Z).
        a@nd(X) :- p(X, Y).
        ?- query@n(X).
    """


# ---------------------------------------------------------------------------
# Example 2: connected components / boolean subqueries (section 3.1)
# ---------------------------------------------------------------------------

def example2_program() -> Program:
    """Example 2's rules, wrapped in a query making p's second argument
    existential (the paper gives the adornment ``p^nd`` directly; the
    anonymous query variable produces it here)."""
    return parse(
        """
        query(X, U) :- p(X, U).
        p(X, U) :- q1(X, Y), q2(Y, Z), q3(U, V), q4(V), q5(W).
        q4(X) :- q6(X).
        ?- query(X, _).
        """
    )


# ---------------------------------------------------------------------------
# Examples 5 and 6: left-linear transitive closure (sections 3.3-5)
# ---------------------------------------------------------------------------

def example5_program() -> Program:
    """Examples 5/6: the left-linear program with query ``a^nd``."""
    return parse(
        """
        a(X, Y) :- a(X, Z), p(Z, Y).
        a(X, Y) :- p(X, Y).
        ?- a(X, _).
        """
    )


def example5_adorned_text() -> str:
    """The adorned (and projected) program of Example 5, verbatim."""
    return """
        a@nd(X) :- a@nn(X, Z), p(Z, Y).
        a@nd(X) :- p(X, Y).
        a@nn(X, Y) :- a@nn(X, Z), p(Z, Y).
        a@nn(X, Y) :- p(X, Y).
        ?- a@nd(X).
    """


def example6_optimized_text() -> str:
    """The fully optimized program of Example 6."""
    return """
        a@nd(X) :- p(X, Y).
        ?- a@nd(X).
    """


# ---------------------------------------------------------------------------
# Example 7 (reconstructed): summary deletions, cascade, incompleteness
# ---------------------------------------------------------------------------

def example7_adorned() -> AdornedProgram:
    """Example 7 (reconstruction; the source listing is OCR-garbled).

    Built to exhibit exactly the narrative:

    - rule 5 (defining ``p1``, body occurrence of ``p@nn``) is deleted
      by Lemma 5.1 via the unit rule 0 (``p@nd :- p@nn``);
    - rule 6 (body occurrence of ``p@nd``) is deleted by Lemma 5.1 via
      the *trivial* unit rule ``p@nd :- p@nd``;
    - with no rules left defining ``p1@nn``, rules 1 and 3 are
      discarded by the cascade;
    - the reduced program is ``{p@nd :- p@nn; p@nd :- b1; p@nn :- b1}``,
      whose second rule is redundant but *not* deletable by the summary
      procedure (the paper's closing remark).
    """
    return adorned_from_text(
        """
        p@nd(X) :- p@nn(X, Y).
        p@nd(X) :- p1@nn(X, Z), b4(Z, Y).
        p@nd(X) :- b1(X, Y).
        p@nn(X, Y) :- p1@nn(X, Z), b4(Z, Y).
        p@nn(X, Y) :- b1(X, Y).
        p1@nn(X, Z) :- p@nn(X, U), b2(U, W, Z).
        p1@nn(X, Z) :- p@nd(X), b3(U, W, Z).
        ?- p@nd(X).
        """
    )


def example7_reduced_text() -> str:
    """The reduced program the paper reports for Example 7."""
    return """
        p@nd(X) :- p@nn(X, Y).
        p@nd(X) :- b1(X, Y).
        p@nn(X, Y) :- b1(X, Y).
        ?- p@nd(X).
    """


# ---------------------------------------------------------------------------
# Example 8 (reconstructed): deletion in the presence of other recursion
# ---------------------------------------------------------------------------

def example8_adorned() -> AdornedProgram:
    """Example 8 (reconstruction; source listing OCR-garbled).

    Built to exhibit the narrative's deletion chain in the presence of
    a recursive predicate other than the query:

    - rule 4 — the exit rule of the recursive ``p1``, whose body holds
      an occurrence of ``p@nn`` — is deleted by Lemma 5.1 via the unit
      rule 0;
    - the recursive rule 3 then has "no exit rule defining p1" and
      falls to the productivity cascade;
    - rule 1 is dropped because it uses the now-unproductive ``p1``;
    - rule 5 (defining ``p2``) becomes unreachable from the query and
      is dropped by the reachability cascade.
    """
    return adorned_from_text(
        """
        p@nd(X) :- p@nn(X, Y).
        p@nd(X) :- p1@nnn(X, Z, U), p2@nn(Z, U).
        p@nn(X, Y) :- g0(X, Y).
        p1@nnn(X, Z, U) :- p1@nnn(X, Z2, U2), g2(Z2, U2, Z, U).
        p1@nnn(X, Z, U) :- p@nn(X, Y), g3(Y, Z, U).
        p2@nn(Z, U) :- g4(Z, U).
        ?- p@nd(X).
        """
    )


def example8_empty_adorned() -> AdornedProgram:
    """Example 8, emptiness variant.

    The paper's program ends with "the set of answers is seen to be
    empty" at compile time.  In this variant ``p@nn`` and ``p1`` are
    mutually recursive with no base exit, so the productivity cascade
    alone empties the whole program — compile-time detection of the
    empty answer, one step earlier than the paper's rule-by-rule chain.
    """
    return adorned_from_text(
        """
        p@nd(X) :- p@nn(X, Y).
        p@nd(X) :- p1@nnn(X, Z, U), p2@nn(Z, U).
        p@nn(X, Y) :- p1@nnn(X, Y, U), g1(U).
        p1@nnn(X, Z, U) :- p1@nnn(X, Z2, U2), g2(Z2, U2, Z, U).
        p1@nnn(X, Z, U) :- p@nn(X, Y), g3(Y, Z, U).
        p2@nn(Z, U) :- g4(Z, U).
        ?- p@nd(X).
        """
    )


# ---------------------------------------------------------------------------
# Examples 9 and 11 (reconstructed): limits of summaries; folding
# ---------------------------------------------------------------------------

def example9_adorned() -> AdornedProgram:
    """Example 9 (reconstruction; source listing OCR-garbled).

    Built to exhibit the narrative: the last rule *is* deletable under
    uniform query equivalence — its contribution through the query rule
    0 is subsumed, because rule 0 applied directly to the deleted
    rule's body already yields the query fact — but the summary
    technique cannot see it (there is no unit rule; the paper
    deliberately refrains from adding one).  Example 11's fix is to
    *fold* rule 0's body into a view predicate, after which Lemma 5.1
    applies; see :func:`example9_fold_spec`.
    """
    return adorned_from_text(
        """
        q0@n(X) :- p@nn(X, Y), g3(Y, Z, U).
        q0@n(X) :- g1(X, Y).
        p@nn(X, Y) :- g2(X, Y).
        p@nn(X, Z) :- p@nn(X, Y), g3(Y, Z, U), g4(U, W).
        ?- q0@n(X).
        """
    )


def example9_fold_spec() -> tuple[int, Sequence[int], str]:
    """The Example 11 "guess": fold rule 0's body literals 0 and 1
    (``p@nn(X, Y), g3(Y, Z, U)``) into a view predicate."""
    return 0, (0, 1), "qq"


# ---------------------------------------------------------------------------
# Example 10 (reconstructed): Lemma 5.3 beats Lemma 5.1
# ---------------------------------------------------------------------------

def example10_adorned() -> AdornedProgram:
    """Example 10 (reconstruction; source listing OCR-garbled).

    Built to exhibit the narrative: the last rule (``q@nn :- p@nn``)
    can be deleted using Lemma 5.3 — the summaries reaching its body
    occurrence of ``p@nn`` are the identity *and* the swap, each of
    which is the projection of one of the two unit rules — but not
    using Lemma 5.1, which needs a single unit rule equal to *every*
    summary.  Deleting it leaves ``q@nn`` undefined, so rules 2 and 3
    fall to the cascade.
    """
    return adorned_from_text(
        """
        p0@nn(X, Y) :- p@nn(X, Y).
        p0@nn(X, Y) :- p@nn(Y, X).
        p@nn(X, Y) :- q@nn(X, Y).
        p@nn(X, Y) :- q@nn(Y, X).
        q@nn(X, Y) :- p@nn(X, Y).
        p@nn(X, Y) :- b(X, Y).
        ?- p0@nn(X, Y).
        """
    )


# ---------------------------------------------------------------------------
# Example 12: a transformation beyond projection pushing (section 6)
# ---------------------------------------------------------------------------

def example12_original() -> Program:
    """Example 12's original program: the recursion carries ``Z``
    through every level and re-checks ``c(Z)`` each time, so plain
    projection pushing cannot reduce the recursive predicate's arity
    (``Z`` is needed)."""
    return parse(
        """
        query(X, Y) :- p(X, Y, Z).
        p(X, Y, Z) :- up(X, X1), p(X1, Y1, Z), dn(Y1, Y), c(Z).
        p(X, Y, Z) :- b(X, Y, Z).
        ?- query(X, Y).
        """
    )


def example12_transformed() -> Program:
    """Example 12's transformed program: the ``c(Z)`` check is hoisted
    into the exit rule (one application suffices) and the zero-step
    case bypasses it, so the recursive predicate drops to arity 2 while
    preserving uniform query equivalence."""
    return parse(
        """
        query(X, Y) :- pp(X, Y).
        query(X, Y) :- b(X, Y, Z).
        pp(X, Y) :- up(X, X1), pp(X1, Y1), dn(Y1, Y).
        pp(X, Y) :- b(X, Y, Z), c(Z).
        ?- query(X, Y).
        """
    )
