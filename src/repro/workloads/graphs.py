"""Deterministic synthetic relation generators.

All generators take an explicit ``seed`` where randomness is involved
and return plain lists of tuples, ready for
``Database.from_dict({"edge": ...})``.  Node identifiers are integers
``0..n-1``.

These stand in for the unspecified "database relations" of the paper's
examples; the benchmark suite sweeps them over sizes and shapes to
measure the direction and magnitude of each performance claim.
"""

from __future__ import annotations

import random
__all__ = [
    "chain",
    "cycle",
    "tree",
    "grid",
    "complete",
    "bipartite",
    "layered_dag",
    "random_digraph",
    "random_relation",
]

Edge = tuple[int, int]


def chain(n: int) -> list[Edge]:
    """A path 0 -> 1 -> ... -> n-1 (n-1 edges)."""
    return [(i, i + 1) for i in range(n - 1)]


def cycle(n: int) -> list[Edge]:
    """A directed cycle over n nodes."""
    if n <= 0:
        return []
    return [(i, (i + 1) % n) for i in range(n)]


def tree(n: int, fanout: int = 2) -> list[Edge]:
    """A complete *fanout*-ary tree with n nodes, edges parent -> child."""
    return [((i - 1) // fanout, i) for i in range(1, n)]


def grid(rows: int, cols: int) -> list[Edge]:
    """A rows x cols grid with edges right and down (a DAG).

    Node ``(r, c)`` is numbered ``r * cols + c``.
    """
    edges: list[Edge] = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                edges.append((node, node + 1))
            if r + 1 < rows:
                edges.append((node, node + cols))
    return edges


def complete(n: int) -> list[Edge]:
    """All n*(n-1) directed edges (no self-loops)."""
    return [(i, j) for i in range(n) for j in range(n) if i != j]


def bipartite(left: int, right: int, density: float = 1.0, seed: int = 0) -> list[Edge]:
    """Edges from nodes ``0..left-1`` to ``left..left+right-1``."""
    rng = random.Random(seed)
    edges = []
    for i in range(left):
        for j in range(left, left + right):
            if density >= 1.0 or rng.random() < density:
                edges.append((i, j))
    return edges


def layered_dag(layers: int, width: int, fanout: int = 2, seed: int = 0) -> list[Edge]:
    """A DAG of *layers* layers of *width* nodes; each node gets
    *fanout* edges to random nodes of the next layer."""
    rng = random.Random(seed)
    edges = []
    for layer in range(layers - 1):
        base, nxt = layer * width, (layer + 1) * width
        for i in range(width):
            targets = rng.sample(range(width), min(fanout, width))
            edges.extend((base + i, nxt + t) for t in targets)
    return sorted(set(edges))


def random_digraph(n: int, edges: int, seed: int = 0) -> list[Edge]:
    """*edges* distinct random directed edges over n nodes (no loops)."""
    rng = random.Random(seed)
    out: set[Edge] = set()
    limit = n * (n - 1)
    target = min(edges, limit)
    while len(out) < target:
        i = rng.randrange(n)
        j = rng.randrange(n)
        if i != j:
            out.add((i, j))
    return sorted(out)


def random_relation(
    arity: int, rows: int, domain: int, seed: int = 0
) -> list[tuple]:
    """*rows* distinct random tuples of the given arity over
    ``0..domain-1``."""
    rng = random.Random(seed)
    out: set[tuple] = set()
    limit = domain**arity
    target = min(rows, limit)
    while len(out) < target:
        out.add(tuple(rng.randrange(domain) for _ in range(arity)))
    return sorted(out)
