"""An interactive Datalog shell.

Start with ``python -m repro shell [program.dl [facts.dl]]``.  Rules
and facts typed at the prompt accumulate; a query (``?- ...``) is
answered immediately.  Dot-commands inspect and transform the session:

=================  =====================================================
``?- q(X, _).``    run a query (existential positions projected)
``p(X) :- ...``    add a rule
``edge(1, 2).``    add a fact
``.rules``         list the current rules
``.facts [pred]``  list facts (optionally one predicate)
``.optimize``      show the optimization pipeline for the last query
``.analyze``       abstract-interpretation report over the loaded EDB
``.explain p 1,2`` print the derivation tree of a fact
``.stats``         work counters of the last evaluation
``.strata``        stratification of the current rules
``.load FILE``     read rules/facts from a file
``.save FILE``     write the current facts as a fact file
``.clear``         drop all rules and facts
``.help``          this text
``.quit``          leave
=================  =====================================================

The shell is a thin, testable layer: it reads from any iterable of
lines and writes to any file-like object, so the test suite drives it
with string buffers.
"""

from __future__ import annotations

import sys
from typing import IO, Iterable, Optional

from .core.pipeline import optimize
from .datalog import Database, Program, ReproError, parse
from .datalog.analysis import stratify
from .datalog.parser import split_facts
from .engine import EngineOptions, evaluate

__all__ = ["Shell", "run_shell"]

PROMPT = "datalog> "


class Shell:
    """State and command dispatch for one interactive session."""

    def __init__(self, out: Optional[IO[str]] = None):
        self.out = out if out is not None else sys.stdout
        self.rules: list = []
        self.db = Database()
        self.last_result = None
        self.last_query = None

    # -- helpers ---------------------------------------------------------

    def _print(self, *lines: str) -> None:
        for line in lines:
            print(line, file=self.out)

    def _program(self, query=None) -> Program:
        return Program(tuple(self.rules), query)

    # -- statement handling ------------------------------------------------

    def handle(self, line: str) -> bool:
        """Process one input line; returns False when the session ends."""
        line = line.strip()
        if not line or line.startswith("%"):
            return True
        try:
            if line.startswith("."):
                return self._command(line)
            self._statement(line)
        except ReproError as exc:
            self._print(f"error: {exc}")
        return True

    def _statement(self, line: str) -> None:
        if not line.endswith("."):
            line += "."
        parsed = parse(line)
        if parsed.query is not None:
            self._run_query(parsed.query)
            return
        program, facts = split_facts(parsed)
        for fact in facts:
            self.db.add_fact(fact)
        if facts:
            self._print(f"added {len(facts)} fact(s)")
        if program.rules:
            candidate = Program(tuple(self.rules) + program.rules)
            candidate.validate()
            self.rules.extend(program.rules)
            self._print(f"added {len(program.rules)} rule(s)")

    def _run_query(self, query) -> None:
        program = self._program(query)
        if query.predicate not in program.idb_predicates() and query.predicate not in self.db:
            self._print(f"unknown predicate {query.predicate!r}")
            return
        result = evaluate(program, self.db, EngineOptions())
        self.last_result = result
        self.last_query = query
        answers = sorted(result.answers(), key=repr)
        for row in answers:
            self._print(", ".join(map(str, row)) if row else "true")
        self._print(f"({len(answers)} answer(s))")

    # -- dot-commands ----------------------------------------------------------

    def _command(self, line: str) -> bool:
        parts = line.split()
        cmd, args = parts[0], parts[1:]
        if cmd in (".quit", ".exit"):
            return False
        handler = {
            ".rules": self._cmd_rules,
            ".facts": self._cmd_facts,
            ".optimize": self._cmd_optimize,
            ".lint": self._cmd_lint,
            ".analyze": self._cmd_analyze,
            ".explain": self._cmd_explain,
            ".stats": self._cmd_stats,
            ".strata": self._cmd_strata,
            ".load": self._cmd_load,
            ".save": self._cmd_save,
            ".clear": self._cmd_clear,
            ".help": self._cmd_help,
        }.get(cmd)
        if handler is None:
            self._print(f"unknown command {cmd}; try .help")
            return True
        handler(args)
        return True

    def _cmd_rules(self, args) -> None:
        if not self.rules:
            self._print("(no rules)")
        for i, r in enumerate(self.rules):
            self._print(f"[{i}] {r}")

    def _cmd_facts(self, args) -> None:
        predicates = args if args else sorted(self.db.predicates())
        total = 0
        for pred in predicates:
            for row in sorted(self.db.rows(pred), key=repr):
                self._print(f"{pred}({', '.join(map(str, row))}).")
                total += 1
        self._print(f"({total} fact(s))")

    def _cmd_optimize(self, args) -> None:
        if self.last_query is None:
            self._print("run a query first; .optimize explains its pipeline")
            return
        result = optimize(self._program(self.last_query))
        self._print(result.describe())

    def _cmd_lint(self, args) -> None:
        from .analysis import lint_program

        report = lint_program(
            self._program(self.last_query),
            edb=self.db.predicates(),
            source="<shell>",
        )
        self._print(report.render_text())

    def _cmd_analyze(self, args) -> None:
        from .analysis import analyze_program

        result = analyze_program(
            self._program(self.last_query),
            self.db,
            source="<shell>",
        )
        self._print(result.render_text())

    def _cmd_explain(self, args) -> None:
        if len(args) != 2:
            self._print("usage: .explain <predicate> <v1,v2,...>")
            return
        pred = args[0]
        row = tuple(
            int(v) if v.lstrip("-").isdigit() else v for v in args[1].split(",")
        )
        program = self._program(None)
        result = evaluate(program, self.db, EngineOptions(record_provenance=True))
        if row not in result.facts(pred):
            self._print(f"{pred}{row!r} was not derived")
            return
        self._print(result.derivation(pred, row).render())

    def _cmd_stats(self, args) -> None:
        if self.last_result is None:
            self._print("no evaluation yet")
        else:
            self._print(self.last_result.stats.summary())

    def _cmd_strata(self, args) -> None:
        program = self._program(None)
        if not program.rules:
            self._print("(no rules)")
            return
        for i, layer in enumerate(stratify(program)):
            self._print(f"stratum {i}: {', '.join(sorted(layer))}")

    def _cmd_load(self, args) -> None:
        if len(args) != 1:
            self._print("usage: .load <file>")
            return
        try:
            with open(args[0]) as f:
                text = f.read()
        except OSError as exc:
            self._print(f"error: {exc}")
            return
        program, facts = split_facts(parse(text))
        for fact in facts:
            self.db.add_fact(fact)
        self.rules.extend(program.rules)
        self._print(f"loaded {len(program.rules)} rule(s), {len(facts)} fact(s)")
        if program.query is not None:
            self._run_query(program.query)

    def _cmd_save(self, args) -> None:
        if len(args) != 1:
            self._print("usage: .save <file>")
            return
        from .datalog.dump import dumps_database

        try:
            with open(args[0], "w") as f:
                f.write(dumps_database(self.db))
        except OSError as exc:
            self._print(f"error: {exc}")
            return
        self._print(f"saved {self.db.fact_count()} fact(s) to {args[0]}")

    def _cmd_clear(self, args) -> None:
        self.rules = []
        self.db = Database()
        self.last_result = None
        self.last_query = None
        self._print("cleared")

    def _cmd_help(self, args) -> None:
        self._print(
            "statements: rules (p(X) :- q(X).), facts (edge(1,2).), queries (?- p(X).)",
            "commands: .rules .facts .optimize .lint .analyze .explain .stats .strata .load .save .clear .quit",
        )


def run_shell(
    lines: Optional[Iterable[str]] = None,
    out: Optional[IO[str]] = None,
    interactive: Optional[bool] = None,
) -> int:
    """Run a shell session over *lines* (default: stdin).

    With *interactive* (default: stdin is a TTY) a prompt is printed
    before each read.
    """
    shell = Shell(out=out)
    if lines is None:
        lines = sys.stdin
    if interactive is None:
        interactive = hasattr(sys.stdin, "isatty") and sys.stdin.isatty()
    if interactive:
        shell._print("repro Datalog shell — .help for commands, .quit to leave")
    iterator = iter(lines)
    while True:
        if interactive:
            print(PROMPT, end="", file=shell.out, flush=True)
        try:
            line = next(iterator)
        except StopIteration:
            break
        if not shell.handle(line):
            break
    return 0
