"""Chain programs as context-free grammars (sections 1.1, 3.2, 4).

The grammar view powers the paper's undecidability results and the
Lemma 4.1 equivalence characterizations; this package provides the
transformation in both directions, bounded language enumeration, the
self-embedding regularity test, and the constructive monadic-program
direction of Theorem 3.3.
"""

from .cfg import Grammar, Production, grammar_to_program, program_to_grammar
from .equivalence import (
    db_equivalent_bounded,
    query_equivalent_bounded,
    uniform_query_equivalent_bounded,
    uniformly_equivalent_bounded,
)
from .language import (
    extended_language,
    is_empty,
    language,
    productive_nonterminals,
    reachable_nonterminals,
    shortest_word,
)
from .regular import (
    NFA,
    is_left_linear,
    is_right_linear,
    is_self_embedding,
    monadic_program_for,
    nfa_accepts,
    nfa_to_monadic_program,
    right_linear_to_nfa,
)

__all__ = [
    "Grammar",
    "Production",
    "grammar_to_program",
    "program_to_grammar",
    "db_equivalent_bounded",
    "query_equivalent_bounded",
    "uniform_query_equivalent_bounded",
    "uniformly_equivalent_bounded",
    "extended_language",
    "is_empty",
    "language",
    "productive_nonterminals",
    "reachable_nonterminals",
    "shortest_word",
    "NFA",
    "is_left_linear",
    "is_right_linear",
    "is_self_embedding",
    "monadic_program_for",
    "nfa_accepts",
    "nfa_to_monadic_program",
    "right_linear_to_nfa",
]
