"""Regularity and the monadic-program construction (Theorem 3.3).

Theorem 3.3: a binary chain program with query ``p^dn`` (or ``p^nd``)
has an equivalent *monadic* chain program iff the language of the
corresponding CFG is regular — hence "can the recursion be made unary"
is undecidable.  This module implements the decidable machinery around
that theorem:

- :func:`is_self_embedding` — the classical sufficient test for
  regularity: a CFG with no self-embedding nonterminal (no
  ``A ⇒+ αAβ`` with non-empty ``α`` and ``β``) generates a regular
  language.  (The converse fails, matching the theorem's
  undecidability: a self-embedding grammar *may* still be regular.)
- :func:`is_right_linear` / :func:`is_left_linear` — one-sided linear
  grammars, the constructive fragment.
- :func:`right_linear_to_nfa` and :func:`nfa_to_monadic_program` — the
  positive direction of Theorem 3.3 for right-linear grammars: build
  the NFA for the language and turn its states into unary predicates
  ``can_reach_accept_from[q](X)``; :func:`monadic_program_for` glues
  the steps together, answering a ``p^nd`` query with a unary
  recursion.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Optional

from ..datalog.ast import Atom, Program, Rule
from ..datalog.errors import TransformError
from ..datalog.terms import Variable
from .cfg import Grammar, program_to_grammar

__all__ = [
    "is_self_embedding",
    "is_right_linear",
    "is_left_linear",
    "NFA",
    "right_linear_to_nfa",
    "nfa_accepts",
    "nfa_to_monadic_program",
    "monadic_program_for",
]


def is_self_embedding(grammar: Grammar) -> bool:
    """Does some nonterminal ``A`` satisfy ``A ⇒+ αAβ``, ``α,β ≠ ε``?

    Because chain grammars are ε-free, every grammar symbol derives a
    non-empty string, so "non-empty context" reduces to "some symbol is
    present on that side".  We explore states ``(B, l, r)``: from ``A``
    one can derive a form containing ``B`` with material on the left
    iff ``l``, on the right iff ``r``.  ``A`` is self-embedding iff
    ``(A, True, True)`` is reachable from ``A`` in one or more steps.
    Only nonterminals reachable *and* productive matter for the
    language, but the test is stated (and implemented) over the whole
    grammar — a conservative choice documented here.
    """
    nts = grammar.nonterminals
    for origin in nts:
        seen: set[tuple[str, bool, bool]] = set()
        queue: deque[tuple[str, bool, bool]] = deque()
        # one-step expansions of `origin`
        for p in grammar.productions_for(origin):
            for i, sym in enumerate(p.rhs):
                if sym in nts:
                    state = (sym, i > 0, i < len(p.rhs) - 1)
                    if state not in seen:
                        seen.add(state)
                        queue.append(state)
        while queue:
            sym, left, right = queue.popleft()
            if sym == origin and left and right:
                return True
            for p in grammar.productions_for(sym):
                for i, child in enumerate(p.rhs):
                    if child in nts:
                        state = (child, left or i > 0, right or i < len(p.rhs) - 1)
                        if state not in seen:
                            seen.add(state)
                            queue.append(state)
    return False


def is_right_linear(grammar: Grammar) -> bool:
    """Every production is ``A -> t1 ... tk`` or ``A -> t1 ... tk B``
    with the ``ti`` terminal and ``B`` a nonterminal."""
    nts = grammar.nonterminals
    for p in grammar.productions:
        for sym in p.rhs[:-1]:
            if sym in nts:
                return False
    return True


def is_left_linear(grammar: Grammar) -> bool:
    """Mirror image of :func:`is_right_linear`."""
    nts = grammar.nonterminals
    for p in grammar.productions:
        for sym in p.rhs[1:]:
            if sym in nts:
                return False
    return True


@dataclass(frozen=True)
class NFA:
    """A nondeterministic finite automaton without ε-transitions."""

    states: frozenset[str]
    start: str
    finals: frozenset[str]
    #: transitions[(state, symbol)] = set of successor states
    transitions: dict[tuple[str, str], frozenset[str]]

    def successors(self, state: str, symbol: str) -> frozenset[str]:
        return self.transitions.get((state, symbol), frozenset())


def right_linear_to_nfa(grammar: Grammar) -> NFA:
    """The standard right-linear-grammar → NFA construction.

    States are the nonterminals plus a fresh accepting state; a
    production ``A -> t1 ... tk B`` walks through fresh intermediate
    states consuming the terminals and lands in ``B``; a terminal-only
    production lands in the accepting state.  Chain grammars have no
    ε-productions, so the NFA needs no ε-moves.
    """
    if not is_right_linear(grammar):
        raise TransformError("grammar is not right-linear")
    nts = grammar.nonterminals
    accept = "$accept"
    states: set[str] = set(nts) | {accept}
    transitions: dict[tuple[str, str], set[str]] = {}

    def add(src: str, symbol: str, dst: str) -> None:
        transitions.setdefault((src, symbol), set()).add(dst)

    fresh = 0
    for p in grammar.productions:
        tail_nt = p.rhs[-1] if p.rhs[-1] in nts else None
        terminals = p.rhs[:-1] if tail_nt else p.rhs
        target = tail_nt if tail_nt else accept
        current = p.lhs
        for i, t in enumerate(terminals):
            if i == len(terminals) - 1:
                add(current, t, target)
            else:
                fresh += 1
                mid = f"$s{fresh}"
                states.add(mid)
                add(current, t, mid)
                current = mid
        if not terminals:
            # A -> B alone: a unit production; emulate with ε-closure by
            # copying B's outgoing behaviour later.  Chain programs do
            # produce these (unit rules), so handle them by fixpoint.
            transitions.setdefault(("$unit", p.lhs), set()).add(target)

    # Resolve unit productions A -> B: A inherits B's transitions and
    # finality, iterated to a fixpoint.
    unit_edges = {
        (src, dst)
        for (tag, src), dsts in list(transitions.items())
        if tag == "$unit"
        for dst in dsts
    }
    for key in [k for k in transitions if k[0] == "$unit"]:
        del transitions[key]

    finals: set[str] = {accept}
    changed = True
    while changed:
        changed = False
        for src, dst in unit_edges:
            if dst in finals and src not in finals:
                finals.add(src)
                changed = True
            for (state, symbol), dsts in list(transitions.items()):
                if state == dst:
                    bucket = transitions.setdefault((src, symbol), set())
                    if not dsts <= bucket:
                        bucket.update(dsts)
                        changed = True

    return NFA(
        states=frozenset(states),
        start=grammar.start,
        finals=frozenset(finals),
        transitions={k: frozenset(v) for k, v in transitions.items()},
    )


def nfa_accepts(nfa: NFA, word: Iterable[str]) -> bool:
    """Membership test by subset simulation."""
    current = {nfa.start}
    for symbol in word:
        current = {s for state in current for s in nfa.successors(state, symbol)}
        if not current:
            return False
    return bool(current & nfa.finals)


def nfa_to_monadic_program(nfa: NFA, query_var: str = "X") -> Program:
    """Theorem 3.3, constructive direction.

    For the query ``p^nd(X)`` — "all X such that some word of the
    language labels a path starting at X" — define one unary predicate
    per NFA state: ``st_q(X)`` holds iff some path from ``X`` spells a
    word taking the NFA from ``q`` to acceptance::

        st_q(X) :- t(X, Y), st_q'(Y).     for q --t--> q'
        st_q(X) :- t(X, Y).               for q --t--> q', q' final

    The query is ``st_start(X)``.  The result is a *monadic* program:
    every recursive predicate is unary.
    """
    def pred(state: str) -> str:
        return "st_" + state.replace("$", "f")

    x, y = Variable(query_var), Variable("Y")
    has_outgoing = {state for (state, _symbol) in nfa.transitions}
    rules: list[Rule] = []
    for (state, symbol), dsts in sorted(
        nfa.transitions.items(), key=lambda kv: (kv[0][0], kv[0][1])
    ):
        for dst in sorted(dsts):
            if dst in has_outgoing:
                rules.append(
                    Rule(
                        Atom(pred(state), (x,)),
                        (Atom(symbol, (x, y)), Atom(pred(dst), (y,))),
                    )
                )
            if dst in nfa.finals:
                rules.append(Rule(Atom(pred(state), (x,)), (Atom(symbol, (x, y)),)))
    query = Atom(pred(nfa.start), (x,))
    return Program(tuple(rules), query)


def monadic_program_for(program: Program) -> Optional[Program]:
    """End-to-end Theorem 3.3 (positive direction) for a binary chain
    program queried as ``p^nd``: if the corresponding grammar is
    right-linear, return an equivalent monadic program; otherwise
    return None (the general question is undecidable and this
    constructive fragment stops at one-sided linearity).
    """
    grammar = program_to_grammar(program)
    if not is_right_linear(grammar):
        return None
    nfa = right_linear_to_nfa(grammar)
    return nfa_to_monadic_program(nfa)
