"""Bounded grammar-side equivalence checks (Lemma 4.1).

Lemma 4.1 characterizes the four equivalence notions of section 4 for
binary chain programs through language equalities of the corresponding
grammars:

1. DB equivalence          ⟺ ``L(G1, S) = L(G2, S)`` for every nonterminal S;
2. query equivalence       ⟺ ``L(G1, Q1) = L(G2, Q2)``;
3. uniform equivalence     ⟺ ``L^ex(G1, S) = L^ex(G2, S)`` for every S;
4. uniform query equivalence ⟺ ``L^ex(G1, Q1) = L^ex(G2, Q2)``.

All four language equalities are undecidable in general (which is how
Lemma 4.2 gets the undecidability of uniform query equivalence), so the
checks here are *length-bounded*: they compare all members up to a
cap.  A bounded check returning False is a definite inequivalence
witness; True means "equal up to the bound".  The property tests use
these as one of three cross-checking equivalence oracles.
"""

from __future__ import annotations

from .cfg import Grammar
from .language import extended_language, language

__all__ = [
    "db_equivalent_bounded",
    "query_equivalent_bounded",
    "uniformly_equivalent_bounded",
    "uniform_query_equivalent_bounded",
]


def _common_nonterminals(g1: Grammar, g2: Grammar) -> frozenset[str]:
    return g1.nonterminals | g2.nonterminals


def db_equivalent_bounded(g1: Grammar, g2: Grammar, max_length: int) -> bool:
    """Lemma 4.1(1), up to *max_length*."""
    return all(
        language(g1.with_start(s), max_length) == language(g2.with_start(s), max_length)
        for s in _common_nonterminals(g1, g2)
    )


def query_equivalent_bounded(g1: Grammar, g2: Grammar, max_length: int) -> bool:
    """Lemma 4.1(2), up to *max_length* (start symbols as given)."""
    return language(g1, max_length) == language(g2, max_length)


def uniformly_equivalent_bounded(g1: Grammar, g2: Grammar, max_length: int) -> bool:
    """Lemma 4.1(3), up to *max_length*."""
    return all(
        extended_language(g1.with_start(s), max_length)
        == extended_language(g2.with_start(s), max_length)
        for s in _common_nonterminals(g1, g2)
    )


def uniform_query_equivalent_bounded(
    g1: Grammar, g2: Grammar, max_length: int
) -> bool:
    """Lemma 4.1(4), up to *max_length*."""
    return extended_language(g1, max_length) == extended_language(g2, max_length)
