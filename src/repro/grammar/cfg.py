"""Context-free grammars and the chain-program correspondence
(section 1.1).

A *binary chain program* has rules of the form::

    p(X, Y) :- q1(X, Z1), q2(Z1, Z2), ..., qn(Zn-1, Y).

Dropping the arguments turns each rule into a context-free production
``P -> Q1 Q2 ... Qn``: IDB predicates become nonterminals, EDB
predicates terminals, and the query predicate the start symbol.  The
paper leans on this correspondence for its undecidability results
(Theorem 3.3 via regularity of CFLs, Lemma 4.2 via extended-language
equivalence) and for the exact equivalence characterizations of
Lemma 4.1.

The semantic link (used by the property tests): a chain program derives
``p(x, y)`` over an edge-labelled graph iff some word of ``L(G, P)``
labels a path from ``x`` to ``y``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..datalog.analysis import is_chain_program, is_chain_rule
from ..datalog.ast import Atom, Program, Rule
from ..datalog.errors import TransformError, ValidationError
from ..datalog.terms import Variable

__all__ = ["Production", "Grammar", "program_to_grammar", "grammar_to_program"]


@dataclass(frozen=True, slots=True)
class Production:
    """A production ``lhs -> rhs`` (rhs non-empty: chain rules have at
    least one body literal, so the grammars here are ε-free)."""

    lhs: str
    rhs: tuple[str, ...]

    def __post_init__(self):
        if not self.rhs:
            raise ValidationError("ε-productions do not arise from chain programs")

    def __str__(self) -> str:
        return f"{self.lhs} -> {' '.join(self.rhs)}"


@dataclass(frozen=True)
class Grammar:
    """A context-free grammar with an explicit start symbol.

    Nonterminals are exactly the production left-hand sides; every
    other symbol is terminal.
    """

    productions: tuple[Production, ...]
    start: str

    @property
    def nonterminals(self) -> frozenset[str]:
        return frozenset(p.lhs for p in self.productions)

    @property
    def terminals(self) -> frozenset[str]:
        nts = self.nonterminals
        return frozenset(
            s for p in self.productions for s in p.rhs if s not in nts
        )

    def productions_for(self, nonterminal: str) -> tuple[Production, ...]:
        return tuple(p for p in self.productions if p.lhs == nonterminal)

    def with_start(self, start: str) -> "Grammar":
        return Grammar(self.productions, start)

    def __str__(self) -> str:
        lines = [str(p) for p in self.productions]
        lines.append(f"start: {self.start}")
        return "\n".join(lines)


def program_to_grammar(program: Program, start: Optional[str] = None) -> Grammar:
    """Drop the arguments of a binary chain program (section 1.1).

    *start* defaults to the program's query predicate.
    """
    if not is_chain_program(program):
        bad = next((r for r in program.rules if not is_chain_rule(r)), None)
        raise TransformError(f"not a binary chain program (offending rule: {bad})")
    if start is None:
        if program.query is None:
            raise TransformError("no start symbol: program has no query")
        start = program.query.predicate
    productions = tuple(
        Production(r.head.predicate, tuple(a.predicate for a in r.body))
        for r in program.rules
    )
    return Grammar(productions, start)


def grammar_to_program(grammar: Grammar, query_args: tuple = ("X", "Y")) -> Program:
    """The inverse transformation: a binary chain program whose grammar
    is *grammar*.

    Each production ``P -> S1 ... Sn`` becomes
    ``p(X, Y) :- s1(X, Z1), ..., sn(Zn-1, Y)``; the query is the start
    symbol applied to *query_args*.
    """
    rules = []
    for prod in grammar.productions:
        n = len(prod.rhs)
        vars_ = [Variable("X")] + [Variable(f"Z{i}") for i in range(1, n)] + [Variable("Y")]
        body = tuple(
            Atom(sym, (vars_[i], vars_[i + 1])) for i, sym in enumerate(prod.rhs)
        )
        rules.append(Rule(Atom(prod.lhs, (vars_[0], vars_[-1])), body))
    from ..datalog.terms import term

    query = Atom(grammar.start, tuple(term(a) for a in query_args))
    return Program(tuple(rules), query)
