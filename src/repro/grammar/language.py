"""Languages of chain-program grammars: ``L(G)`` and ``L^ex(G)``.

``L(G, S)`` is the set of terminal strings derivable from ``S``;
``L^ex(G, S)`` — the paper's *extended language* — is the set of all
sentential forms (strings possibly containing nonterminals) derivable
from ``S``.  Lemma 4.1 characterizes the four program-equivalence
notions of section 4 through equalities of these languages, and
Lemma 4.2 derives the undecidability of uniform query equivalence from
the undecidability of (extended) language equality.

Exact equality being undecidable, this module provides *bounded*
enumeration (all members up to a length cap) — enough for the
length-bounded equivalence checks in
:mod:`repro.grammar.equivalence` and the property tests, and exact
emptiness/productivity/reachability, which are decidable.

Chain-program grammars are ε-free (every production body is non-empty),
which the enumeration exploits: derivation never shrinks a sentential
form, so forms longer than the cap can be pruned.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from .cfg import Grammar

__all__ = [
    "productive_nonterminals",
    "reachable_nonterminals",
    "is_empty",
    "language",
    "extended_language",
    "shortest_word",
]

String = tuple[str, ...]


def productive_nonterminals(grammar: Grammar) -> frozenset[str]:
    """Nonterminals deriving at least one terminal string."""
    nts = grammar.nonterminals
    productive: set[str] = set()
    changed = True
    while changed:
        changed = False
        for p in grammar.productions:
            if p.lhs in productive:
                continue
            if all(s not in nts or s in productive for s in p.rhs):
                productive.add(p.lhs)
                changed = True
    return frozenset(productive)


def reachable_nonterminals(grammar: Grammar) -> frozenset[str]:
    """Nonterminals reachable from the start symbol."""
    nts = grammar.nonterminals
    seen: set[str] = set()
    stack = [grammar.start]
    while stack:
        nt = stack.pop()
        if nt in seen or nt not in nts:
            continue
        seen.add(nt)
        for p in grammar.productions_for(nt):
            stack.extend(s for s in p.rhs if s in nts)
    return frozenset(seen)


def is_empty(grammar: Grammar) -> bool:
    """True iff ``L(G, start)`` is empty (decidable)."""
    return grammar.start not in productive_nonterminals(grammar) and (
        grammar.start in grammar.nonterminals
    )


def _expand_leftmost(
    form: String, grammar: Grammar, nts: frozenset[str]
) -> Iterator[String]:
    """Leftmost-derivation successors of a sentential form."""
    for i, sym in enumerate(form):
        if sym in nts:
            for p in grammar.productions_for(sym):
                yield form[:i] + p.rhs + form[i + 1 :]
            return
    return


def language(
    grammar: Grammar, max_length: int, max_strings: int = 100_000
) -> frozenset[String]:
    """All terminal strings of ``L(G, start)`` with length ≤ *max_length*.

    Leftmost BFS with length pruning; ε-freeness guarantees termination.
    *max_strings* caps the visited sentential forms defensively.
    """
    nts = grammar.nonterminals
    if grammar.start not in nts:
        # A terminal start symbol denotes the singleton language {start}.
        return frozenset({(grammar.start,)} if max_length >= 1 else set())
    out: set[String] = set()
    seen: set[String] = set()
    queue: deque[String] = deque([(grammar.start,)])
    while queue:
        form = queue.popleft()
        if len(form) > max_length:
            continue
        if all(s not in nts for s in form):
            out.add(form)
            continue
        for successor in _expand_leftmost(form, grammar, nts):
            if len(successor) <= max_length and successor not in seen:
                seen.add(successor)
                if len(seen) > max_strings:
                    raise MemoryError("bounded language enumeration cap exceeded")
                queue.append(successor)
    return frozenset(out)


def extended_language(
    grammar: Grammar, max_length: int, max_strings: int = 100_000
) -> frozenset[String]:
    """All sentential forms of length ≤ *max_length* derivable from the
    start symbol — the bounded ``L^ex(G)`` of section 4 (general
    derivations, not just leftmost, yield the same set of forms)."""
    nts = grammar.nonterminals
    start_form: String = (grammar.start,)
    out: set[String] = set()
    if len(start_form) <= max_length:
        out.add(start_form)
    seen: set[String] = {start_form}
    queue: deque[String] = deque([start_form])
    while queue:
        form = queue.popleft()
        # Expand at every nonterminal position (all sentential forms).
        for i, sym in enumerate(form):
            if sym not in nts:
                continue
            for p in grammar.productions_for(sym):
                successor = form[:i] + p.rhs + form[i + 1 :]
                if len(successor) <= max_length and successor not in seen:
                    seen.add(successor)
                    if len(seen) > max_strings:
                        raise MemoryError("bounded L^ex enumeration cap exceeded")
                    out.add(successor)
                    queue.append(successor)
    return frozenset(out)


def shortest_word(grammar: Grammar) -> tuple[str, ...] | None:
    """A shortest terminal string of ``L(G, start)``, or None if empty.

    Dynamic programming on shortest derivable length per nonterminal.
    """
    nts = grammar.nonterminals
    if grammar.start not in nts:
        return (grammar.start,)
    best: dict[str, String] = {}
    changed = True
    while changed:
        changed = False
        for p in grammar.productions:
            parts: list[String] = []
            ok = True
            for s in p.rhs:
                if s not in nts:
                    parts.append((s,))
                elif s in best:
                    parts.append(best[s])
                else:
                    ok = False
                    break
            if not ok:
                continue
            candidate: String = tuple(x for part in parts for x in part)
            if p.lhs not in best or len(candidate) < len(best[p.lhs]):
                best[p.lhs] = candidate
                changed = True
    return best.get(grammar.start)
