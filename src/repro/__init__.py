"""repro — a reproduction of "Optimizing Existential Datalog Queries"
(Ramakrishnan, Beeri, Krishnamurthy, PODS 1988).

The library has four layers:

- :mod:`repro.datalog` — the Datalog substrate: terms, rules, programs,
  a parser, relation storage and static analysis;
- :mod:`repro.engine` — bottom-up (semi-)naive fixpoint evaluation with
  boolean-cut support, provenance and work counters;
- :mod:`repro.core` — the paper's contribution: existential adornment,
  connected-component boolean rewriting, projection pushing, and rule
  deletion under uniform (query) equivalence;
- :mod:`repro.grammar`, :mod:`repro.rewriting`, :mod:`repro.workloads`
  — the chain-program/CFG correspondence, Magic Sets, and synthetic
  workload generators used by the benchmark suite.

Quickstart::

    from repro import parse, Database, evaluate, optimize

    program = parse('''
        query(X) :- a(X, Y).
        a(X, Y) :- p(X, Z), a(Z, Y).
        a(X, Y) :- p(X, Y).
        ?- query(X).
    ''')
    optimized = optimize(program).program
    db = Database.from_dict({"p": [(1, 2), (2, 3)]})
    assert evaluate(optimized, db).answers() == evaluate(program, db).answers()
"""

from .datalog import (
    Atom,
    Constant,
    Database,
    Program,
    Relation,
    ReproError,
    Rule,
    Term,
    Variable,
    atom,
    parse,
    parse_atom,
    parse_rule,
    rule,
)
from .engine import (
    EngineOptions,
    EvalResult,
    EvalStats,
    evaluate,
    evaluate_topdown,
)

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "Constant",
    "Database",
    "Program",
    "Relation",
    "ReproError",
    "Rule",
    "Term",
    "Variable",
    "atom",
    "parse",
    "parse_atom",
    "parse_rule",
    "rule",
    "EngineOptions",
    "EvalResult",
    "EvalStats",
    "evaluate",
    "evaluate_topdown",
    "optimize",
    "__version__",
]


def optimize(program, **kwargs):
    """Run the full optimization pipeline of the paper on *program*.

    Convenience re-export of :func:`repro.core.pipeline.optimize`;
    imported lazily to keep the base import light.
    """
    from .core.pipeline import optimize as _optimize

    return _optimize(program, **kwargs)
