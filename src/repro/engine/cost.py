"""Bound-driven cost-based join ordering (the ROADMAP's planner item).

The paper's adornment machinery (Size Bound-Adorned Datalog in the
related work; PostBOUND for the modern discipline) gives each adorned
literal a **cardinality upper bound** over the EDB: a literal probed
with some positions bound can never deliver more rows per probe than
the largest posting list on those positions.  The greedy heuristic in
:func:`repro.engine.plan.order_body` only sees *relation sizes*, so it
loses badly on skewed inputs where a small relation fans out — the
classic trap is a tiny dimension table whose join key always hits the
fact table's hub key.

:class:`BoundCostModel` replaces that heuristic with true upper-bound
propagation:

- every stored relation is profiled once per evaluation
  (:func:`profile_database`) into its size and, per argument position,
  the **maximum degree** — the largest number of rows sharing one
  value at that position;
- a literal reached with bound positions ``B`` contributes at most
  ``min(size, min(degree[p] for p in B))`` rows per binding (and at
  most one row when *every* position is bound: the probe is a
  membership test).  Constants count as bound positions, and a
  variable bound earlier binds **all** of its occurrences — repeated
  variables inside one literal (the adornment literature's same-side
  hidden links) therefore tighten the bound to the smallest degree
  over all linked positions;
- a literal whose newly bound variables are all *dead* — unused by the
  head, built-ins, negation, and every remaining literal — is an
  existential (``d``-position) step: the engine's first-match cut
  stops at one witness, so its contribution is capped at **1 per
  binding** regardless of degree;
- the join order is chosen by a bottom-up dynamic program over literal
  subsets (Held–Karp over the body, branch-and-bound pruned) that
  minimizes the **summed intermediate-result bound**; exact ties are
  broken by the lexicographically smallest order, i.e. original body
  order, so plans are fully deterministic.

Profiles are **log-bucketed** (:func:`bucket_size`) before the model
ever sees them: two databases whose relations fall in the same buckets
produce byte-identical plans, which is what lets the prepared-program
cache key on :meth:`BoundCostModel.signature` instead of exact sizes.

The greedy path stays as the fallback rung: the model declines bodies
longer than :data:`DP_LITERAL_LIMIT` (returning ``None``), and
``EngineOptions.use_cost_planner=False`` (the CLI's
``--no-cost-planner``) disables the model entirely — the differential
oracle for the planner itself.  Join order never changes *answers*:
semi-naive rounds insert into set-semantics relations, so answers and
per-predicate fact counts are bit-identical under every order; only
the work counters move.

:class:`AdaptiveReplanner` adds the inter-round feedback loop: between
fixpoint rounds of a recursive unit it folds the observed delta
cardinalities into exponentially-decayed per-relation estimates,
re-profiles the unit's grown relations, and re-ranks every delta plan
through the same DP (``stats.replans``; the prediction error it
observes on the way is ``stats.bound_overestimate_max``).  Replanned
rules re-enter kernel codegen through the process-wide source-text
caches, so a re-ranked plan whose order was seen before costs no
recompilation.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from ..datalog.ast import Atom, Rule
from ..datalog.database import Database
from ..datalog.terms import Constant, Variable

__all__ = [
    "CostModel",
    "BoundCostModel",
    "AdaptiveReplanner",
    "RelationProfile",
    "profile_database",
    "bucket_size",
    "rule_intermediate_bound",
    "DP_LITERAL_LIMIT",
    "DEFAULT_SIZE",
    "DEFAULT_FANOUT",
]


#: bodies with more relational literals than this skip the exact DP and
#: fall back to the greedy heuristic (2^n subset states)
DP_LITERAL_LIMIT = 10

#: synthetic relation size assumed by the static (no-EDB) bound used by
#: lint DL017
DEFAULT_SIZE = 1000

#: synthetic per-key fanout assumed by the static bound: a bound
#: position is assumed to deliver at most this many rows per probe
DEFAULT_FANOUT = 4


def bucket_size(n: int) -> int:
    """*n* rounded up to its power-of-two bucket representative.

    Buckets are ``[2^(k-1), 2^k)`` by bit length; the representative is
    the bucket's inclusive maximum ``2^k - 1`` (0 for an empty
    relation), so the representative is always an upper bound of the
    true count and bucketing preserves order up to ties.
    """
    return (1 << n.bit_length()) - 1 if n > 0 else 0


class RelationProfile:
    """One relation's bound statistics: size and per-position max degree.

    ``degree[p]`` bounds the rows any single value can match at
    position *p*; both it and ``size`` are stored log-bucketed
    (:func:`bucket_size`) so profiles — and the plans derived from
    them — are stable under small EDB growth.
    """

    __slots__ = ("size", "degree")

    def __init__(self, size: int, degree: tuple[int, ...]):
        self.size = size
        self.degree = degree

    def signature(self) -> tuple:
        return (self.size, self.degree)

    @classmethod
    def from_rows(cls, rows: Iterable[Sequence], arity: int, size: int) -> "RelationProfile":
        counts: list[dict] = [{} for _ in range(arity)]
        for row in rows:
            for p in range(arity):
                c = counts[p]
                v = row[p]
                c[v] = c.get(v, 0) + 1
        degree = tuple(
            bucket_size(max(c.values(), default=0)) for c in counts
        )
        return cls(bucket_size(size), degree)


def profile_database(
    db: Database,
    sizes: Optional[Mapping[str, int]] = None,
    predicates: Optional[Iterable[str]] = None,
) -> dict[str, RelationProfile]:
    """Profile every stored relation of *db* (or just *predicates*).

    *sizes* overrides the row count used for a predicate's size bucket
    (the evaluator passes its IDB-bumped size map so empty derived
    relations are treated as large, exactly like the greedy
    heuristic); the per-position degrees always come from the rows
    actually stored.
    """
    out: dict[str, RelationProfile] = {}
    names = predicates if predicates is not None else db.predicates()
    for pred in names:
        rel = db.relation(pred)
        if rel is None:
            continue
        count, degrees = rel.degree_profile()
        n = (sizes or {}).get(pred, count)
        if count:
            profile = RelationProfile(
                bucket_size(n), tuple(bucket_size(d) for d in degrees)
            )
        else:
            # nothing stored yet (typically an IDB predicate before the
            # fixpoint): assume the worst degree — any value may repeat
            # up to the full assumed size
            size = bucket_size(n)
            profile = RelationProfile(
                size, tuple(size for _ in range(rel.arity))
            )
        out[pred] = profile
    return out


class CostModel:
    """The planner contract :func:`repro.engine.plan.order_body` calls.

    ``order_remaining`` receives the body, the not-yet-placed literal
    indexes, the variables already bound (by a forced-first delta
    literal, if any), and the *needed* variable set (head, built-ins,
    negation).  It returns the chosen order of the remaining indexes,
    or ``None`` to decline — the caller then runs the greedy heuristic
    (the fallback rung).  ``signature`` must capture every input the
    ordering depends on: it becomes part of the prepared-program cache
    key, and two models with equal signatures must order every body
    identically.
    """

    def signature(self) -> tuple:
        raise NotImplementedError

    def order_remaining(
        self,
        body: Sequence[Atom],
        remaining: Sequence[int],
        bound_vars: frozenset,
        needed: frozenset,
    ) -> Optional[tuple[int, ...]]:
        raise NotImplementedError


class BoundCostModel(CostModel):
    """Upper-bound propagation + DP order search over profiled relations."""

    name = "bound"
    version = 1

    def __init__(self, profiles: Mapping[str, RelationProfile]):
        self.profiles = dict(profiles)
        # largest profiled size + 1: unknown predicates plan as "bigger
        # than anything stored", mirroring the greedy heuristic
        self._unknown = max(
            (p.size for p in self.profiles.values()), default=0
        ) + 1
        #: bodies this instance actually ordered (read back into
        #: ``stats.plans_costed`` by the evaluator / replanner)
        self.plans_costed = 0

    @classmethod
    def from_database(
        cls,
        db: Database,
        sizes: Optional[Mapping[str, int]] = None,
        predicates: Optional[Iterable[str]] = None,
    ) -> "BoundCostModel":
        return cls(profile_database(db, sizes, predicates))

    def signature(self) -> tuple:
        return (
            self.name,
            self.version,
            tuple(
                (pred, self.profiles[pred].signature())
                for pred in sorted(self.profiles)
            ),
        )

    # -- bound propagation --------------------------------------------------

    def _profile(self, predicate: str) -> RelationProfile:
        profile = self.profiles.get(predicate)
        if profile is None:
            # never-profiled predicate: size-only pessimism, worst degree
            profile = RelationProfile(self._unknown, ())
        return profile

    def literal_bound(self, atom: Atom, bound_vars: frozenset) -> float:
        """Upper bound on rows one probe of *atom* delivers when the
        variables in *bound_vars* (plus constants) are bound."""
        profile = self._profile(atom.predicate)
        bound = float(profile.size)
        free = 0
        for p, arg in enumerate(atom.args):
            if isinstance(arg, Constant) or arg in bound_vars:
                if p < len(profile.degree):
                    d = float(profile.degree[p])
                    if d < bound:
                        bound = d
            else:
                free += 1
        if not free:
            # fully bound: the probe is a membership test
            return min(bound, 1.0)
        return bound

    # -- DP order search ----------------------------------------------------

    def order_remaining(
        self,
        body: Sequence[Atom],
        remaining: Sequence[int],
        bound_vars: frozenset,
        needed: frozenset,
    ) -> Optional[tuple[int, ...]]:
        k = len(remaining)
        if k > DP_LITERAL_LIMIT:
            return None  # fallback rung: greedy handles wide bodies
        self.plans_costed += 1
        if k <= 1:
            return tuple(remaining)

        items = list(remaining)
        item_vars = [
            frozenset(v for v in body[i].args if isinstance(v, Variable))
            for i in items
        ]
        full = (1 << k) - 1
        base_needed = frozenset(needed)
        # vars_of[mask]: variables bound once the literals in *mask*
        # (plus any forced-first literal) have been placed
        vars_of: list[frozenset] = [frozenset()] * (full + 1)
        vars_of[0] = frozenset(bound_vars)
        for mask in range(1, full + 1):
            low = mask & -mask
            vars_of[mask] = vars_of[mask ^ low] | item_vars[low.bit_length() - 1]
        # later_of[mask]: variables that keep new bindings alive when
        # the literals *not yet placed* are exactly the complement of
        # mask — the DP analogue of _mark_existential's backward scan
        later_of = [base_needed | vars_of[full ^ mask] for mask in range(full + 1)]

        # best[mask] = (cost, card, order); ascending masks visit every
        # submask before its supersets
        best: list[Optional[tuple[float, float, tuple[int, ...]]]] = (
            [None] * (full + 1)
        )
        best[0] = (0.0, 1.0, ())
        for mask in range(1, full + 1):
            choice: Optional[tuple[float, float, tuple[int, ...]]] = None
            for j in range(k):
                bit = 1 << j
                if not mask & bit:
                    continue
                prev = best[mask ^ bit]
                if prev is None:
                    continue
                cost, card, order = prev
                bv = vars_of[mask ^ bit]
                matches = self.literal_bound(body[items[j]], bv)
                new_vars = item_vars[j] - bv
                if new_vars and not (new_vars & later_of[mask]):
                    # existential step: the first-match cut delivers one
                    # witness per binding (the d-position cap)
                    matches = min(matches, 1.0)
                new_card = card * matches
                cand = (cost + new_card, new_card, order + (items[j],))
                if choice is None or (cand[0], cand[2]) < (choice[0], choice[2]):
                    choice = cand
            best[mask] = choice
        assert best[full] is not None
        return best[full][2]


def _component_vars(atom: Atom, relational: Sequence[Atom]) -> frozenset:
    """Variables of *atom*'s weakly-connected body component: the
    closure of variable sharing among *relational*.  A component whose
    closure misses every needed variable is a pure existential
    subquery — the Lemma 3.1 cut evaluates it once as a boolean."""
    vars_of = [
        frozenset(v for v in a.args if isinstance(v, Variable))
        for a in relational
    ]
    seed = frozenset(v for v in atom.args if isinstance(v, Variable))
    component = set(seed)
    changed = True
    while changed:
        changed = False
        for vs in vars_of:
            if vs & component and not vs <= component:
                component |= vs
                changed = True
    return frozenset(component)


def rule_intermediate_bound(
    rule: Rule,
    needed: Optional[Iterable[Variable]] = None,
    profiles: Optional[Mapping[str, RelationProfile]] = None,
) -> float:
    """The static intermediate-result bound of *rule*.

    *needed*, when given, replaces the head variables as the set a
    result row must carry (callers pricing an **adorned** rule pass
    the variables at the head's ``n`` positions, so ``d``-position
    components are priced as the cut the optimizer will apply);
    variables of negated literals and builtins are always added.

    Without *profiles* every body predicate is assumed to hold
    :data:`DEFAULT_SIZE` rows with per-position degree
    :data:`DEFAULT_FANOUT` (a mildly skewed relation).  *profiles*
    (predicate → :class:`RelationProfile`, looked up by the literal's
    name and then by its unmangled base name so adorned rules price
    their EDB literals) replaces the synthetic default with
    **measured** statistics for the predicates it covers — the DL017
    lint passes the loaded EDB's profile when one is available.

    The bound reported is the **largest intermediate cardinality along
    the best order** the DP finds.  Chains stay near the relation
    size (each step multiplies by the fanout at most), purely
    existential components collapse to 1 — the Lemma 3.1 cut retires
    them as boolean subqueries before the join ever runs, so they are
    dropped from the priced body outright — and bodies that force a
    *needed* Cartesian product blow up multiplicatively, which is
    exactly what lints DL017/DL021 flag.
    """
    from ..datalog.builtins import is_builtin

    relational = [a for a in rule.body if not is_builtin(a.predicate)]
    if not relational:
        return 0.0
    head_vars = (
        frozenset(needed)
        if needed is not None
        else frozenset(v for v in rule.head.args if isinstance(v, Variable))
    )
    needed_seed = head_vars | frozenset(
        v
        for atom in (*rule.negative,
                     *(a for a in rule.body if is_builtin(a.predicate)))
        for v in atom.args
        if isinstance(v, Variable)
    )
    relational = [
        a for a in relational
        if _component_vars(a, relational) & needed_seed
    ]
    if not relational:
        # the whole body is existential: one boolean membership test
        return 1.0

    def profile_for(a: Atom) -> RelationProfile:
        if profiles:
            found = profiles.get(a.predicate)
            if found is None:
                # adorned literals carry mangled base@ad names; the
                # measured profile lives under the base name
                from ..core.adornment import split_adorned

                found = profiles.get(split_adorned(a.predicate)[0])
            if found is not None:
                return found
        return RelationProfile(
            DEFAULT_SIZE, tuple(DEFAULT_FANOUT for _ in a.args)
        )

    model = BoundCostModel({a.predicate: profile_for(a) for a in relational})
    order = model.order_remaining(
        relational, tuple(range(len(relational))), frozenset(), needed_seed
    )
    if order is None:  # body too wide for the DP: greedy body order
        order = tuple(range(len(relational)))
    bound_vars: set = set()
    card = 1.0
    worst = 0.0
    for pos, i in enumerate(order):
        atom = relational[i]
        matches = model.literal_bound(atom, frozenset(bound_vars))
        new_vars = {v for v in atom.args if isinstance(v, Variable)} - bound_vars
        if new_vars:
            later = set(needed_seed)
            for j in order[pos + 1:]:
                later.update(
                    v for v in relational[j].args if isinstance(v, Variable)
                )
            if not (new_vars & later):
                matches = min(matches, 1.0)
        card *= matches
        worst = max(worst, card)
        bound_vars |= new_vars
    return worst


class AdaptiveReplanner:
    """Inter-round delta-plan re-ranking from observed cardinalities.

    One instance serves one semi-naive fixpoint (a recursive evaluation
    unit, or one monolithic stratum loop) and is never shared across
    threads.  Each round the loop reports the frontier sizes it is
    about to consume (:meth:`observe`); every *every* rounds
    (``EngineOptions.replan_rounds``) the replanner re-profiles the
    loop's grown relations, folds the exponentially-decayed frontier
    estimates into the member predicates' effective sizes, and asks
    the cost model's DP for fresh delta plans (:meth:`replan`).

    Replan decisions are functions of frontier sizes and stored facts
    only — both bit-identical across the kernel/batch/interpreter
    tiers — so every tier replans identically and the engine-invariant
    counters stay comparable.  Join order never changes which facts a
    round derives, so answers and fact counts are unaffected by
    construction.
    """

    #: exponential-decay factor for the per-relation frontier estimate
    DECAY = 0.5

    def __init__(self, every: int, members: frozenset[str]):
        self.every = max(1, int(every))
        self.members = members
        self.estimates: dict[str, float] = {}
        self.rounds = 0
        #: worst predicted/observed frontier ratio seen (>= 1.0 once
        #: any prediction existed; the planner counter)
        self.overestimate_max = 0.0
        #: bucketed effective sizes at the last model build — when a
        #: due replan finds them unchanged, the DP would see the same
        #: inputs and produce the same orders, so profiling is skipped
        self._last_buckets: Optional[dict] = None

    def observe(self, frontier_sizes: Mapping[str, int]) -> None:
        """Fold one round's true delta cardinalities into the decayed
        estimates, recording the prediction error first."""
        self.rounds += 1
        for pred, observed in frontier_sizes.items():
            predicted = self.estimates.get(pred)
            if predicted is not None and observed > 0:
                ratio = max(predicted, 1.0) / float(observed)
                if ratio > self.overestimate_max:
                    self.overestimate_max = ratio
            old = self.estimates.get(pred, float(observed))
            self.estimates[pred] = (
                self.DECAY * old + (1.0 - self.DECAY) * float(observed)
            )

    def due(self) -> bool:
        return self.rounds % self.every == 0

    def model_for(
        self, db: Database, predicates: Iterable[str]
    ) -> Optional[BoundCostModel]:
        """A fresh cost model over the *current* stored relations in
        *predicates* (the calling fixpoint's own reads and writes —
        never sibling units' relations, which may be mid-write), with
        each member predicate's size raised by its expected frontier
        (anticipated growth keeps recursive relations planned large).

        Returns ``None`` when every effective size is still in the
        bucket it was at the last build: planning consumes bucket
        representatives, so the DP would reproduce the previous orders
        and the O(rows) profiling pass is pure overhead.  (A relation
        whose max degree grows within an unchanged size bucket is
        deliberately not re-profiled — sizes are cheap to read every
        round, degrees are not.)  Skips are decided from relation
        lengths and frontier history only, both bit-identical across
        execution tiers, so all tiers skip identically."""
        sizes: dict[str, int] = {}
        names: list[str] = []
        for pred in predicates:
            rel = db.relation(pred)
            if rel is None:
                continue
            names.append(pred)
            n = len(rel)
            if pred in self.members:
                n += int(self.estimates.get(pred, 0.0))
            sizes[pred] = n
        buckets = {p: bucket_size(n) for p, n in sizes.items()}
        if buckets == self._last_buckets:
            return None
        self._last_buckets = buckets
        return BoundCostModel.from_database(db, sizes, names)
