"""Batch (columnar) rule kernels: operator-at-a-time join pipelines.

The PR-2 tuple kernels removed the interpreter's per-row dispatch but
still walk one nested-loop frame per candidate row and touch the stats
counters once per row.  This module compiles the same ``(CompiledRule,
plan)`` pairs to a second codegen target that processes the semi-naive
delta frontier as **batches of dictionary-encoded contexts**:

- each plan step consumes a list of contexts (tuples of encoded ids
  for the variables later steps still need) and produces the next
  list with one bulk operation — an encoded-posting probe loop, a
  row-set membership comprehension, or a scan product;
- stats counters are charged with batch arithmetic (``n`` contexts
  probing an index cost ``join_probes += n`` in one statement instead
  of ``n`` increments);
- constants are interned once in the kernel prelude; head tuples are
  produced *encoded*, so duplicate elimination happens in id space and
  only genuinely new facts are ever decoded;
- when the rule has no built-ins or negated literals, head
  construction fuses into the last join step (no separate projection
  pass).

Batch kernels are bit-identical to the tuple kernels (and hence the
interpreter) on every engine-invariant counter *and* on fact insertion
order: contexts expand in stable batch order (which equals the tuple
kernels' depth-first enumeration order), encoded postings mirror raw
posting order, and scans are encoded in current ``list(relation)``
order.  The few enumeration-order-dependent shapes the batch model
cannot reproduce exactly — existential steps with repeated variables,
and existential bound scans under ``--no-index`` — raise
:class:`BatchKernelError` at compile time, and the engine falls back
to the tuple kernel for that rule (counted in
``stats.columnar_fallbacks``).  Provenance recording needs per-fact
body rows, which batches do not carry; the scheduler routes
provenance-recording runs to the tuple path before ever asking for a
batch kernel.

Like :mod:`repro.engine.kernel`, generated functions are cached
globally by source text and memoized per compiled rule; adaptive
replans (:func:`~repro.engine.plan.replan_delta_plans`) produce fresh
``CompiledRule`` objects whose re-ranked plans re-enter codegen through
the same process-wide source cache, so a previously seen join order
never recompiles.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..datalog.builtins import BUILTINS
from ..datalog.columnar import PACK_LIMIT, PACK_SHIFT, global_dictionary
from ..datalog.terms import Constant, Variable
from .plan import CompiledRule, LiteralPlan

try:  # numpy is optional; the vectorized kernels need it
    import numpy as _np
except Exception:  # pragma: no cover - environment without numpy
    _np = None

__all__ = [
    "BatchKernelError",
    "batch_kernel_source",
    "batch_rule_kernel",
    "batch_cold_debt",
    "batch_kernel_cache_stats",
    "clear_batch_kernel_cache",
    "vector_rule_kernel",
    "unpack_rows",
]


class BatchKernelError(Exception):
    """The rule cannot be compiled to a batch kernel without breaking
    counter or order parity; the engine falls back to the tuple kernel
    for this rule."""


def _raw_const(value) -> str:
    if type(value) in (int, str, bool, float) or value is None:
        return repr(value)
    raise BatchKernelError(f"constant {value!r} has no inline literal form")


def _tuple_display(parts: list[str]) -> str:
    if not parts:
        return "()"
    if len(parts) == 1:
        return f"({parts[0]},)"
    return "(" + ", ".join(parts) + ")"


def batch_kernel_source(
    cr: CompiledRule,
    plan_id: Optional[int] = None,
    *,
    use_indexes: bool = True,
) -> str:
    """Generate batch-kernel source for one plan of *cr*.

    The generated ``_batch_kernel(db, stats, delta)`` returns a list
    of **encoded** head tuples in tuple-kernel yield order (duplicates
    included; the caller deduplicates in id space and decodes only new
    facts).  Raises :class:`BatchKernelError` for shapes whose exact
    counter accounting is enumeration-order dependent.
    """
    plans = cr.plan if plan_id is None else cr.delta_plans[plan_id]
    delta = plan_id is not None
    n = len(plans)

    # -- compile-time gates: shapes whose rows_scanned accounting
    # depends on per-context enumeration order can't be batched
    head_pred = cr.rule.head.predicate
    for i, plan in enumerate(plans):
        if plan.atom.predicate == head_pred and not (delta and i == 0):
            # The tuple engine inserts head facts per yield while still
            # enumerating, so a later step that reads the head relation
            # observes mid-firing inserts; a batch snapshot cannot.
            # (The delta frontier at step 0 is frozen in both engines.)
            raise BatchKernelError(
                "step reads the rule's own head relation (mid-firing "
                "inserts are visible to the tuple engine)"
            )
    for i, plan in enumerate(plans):
        if not plan.existential:
            continue
        fvars = [v for _, v in plan.free_positions]
        if len(set(fvars)) != len(fvars):
            raise BatchKernelError(
                "existential step with repeated free variables scans "
                "until the first consistent row (order dependent)"
            )
        if plan.bound_positions and not use_indexes and not (delta and i == 0):
            raise BatchKernelError(
                "existential bound scan without indexes stops at the "
                "first matching row (order dependent)"
            )

    # -- context layout: only variables the tail or later steps need,
    # one slot each in first-binding order (so after step i the ctx is
    # exactly the slot prefix bound so far)
    needed: set[Variable] = set()
    for atom in (cr.rule.head, *cr.builtins, *cr.rule.negative):
        for a in atom.args:
            if isinstance(a, Variable):
                needed.add(a)
    for plan in plans:
        for p in plan.bound_positions:
            arg = plan.atom.args[p]
            if isinstance(arg, Variable):
                needed.add(arg)
    slots: dict[Variable, int] = {}
    for plan in plans:
        for _, var in plan.free_positions:
            if var in needed and var not in slots:
                slots[var] = len(slots)

    consts: dict = {}
    const_lines: list[str] = []
    state = {"vals": False}

    def enc_const(value) -> str:
        _raw_const(value)  # validates the inline literal form
        key = (type(value), value)
        name = consts.get(key)
        if name is None:
            name = f"k{len(consts)}"
            consts[key] = name
            const_lines.append(f"{name} = _intern({value!r})")
        return name

    def enc_term(t) -> str:
        if isinstance(t, Constant):
            return enc_const(t.value)
        if t not in slots:
            raise BatchKernelError(f"variable {t} is never bound by the plan")
        return f"c[{slots[t]}]"

    def raw_term(t) -> str:
        if isinstance(t, Constant):
            return _raw_const(t.value)
        if t not in slots:
            raise BatchKernelError(f"variable {t} is never bound by the plan")
        state["vals"] = True
        return f"vals[c[{slots[t]}]]"

    # head fusion: with no tail filters the last join step emits head
    # tuples directly instead of contexts
    fuse = n > 0 and not cr.builtins and not cr.rule.negative

    def head_parts(last_plan: Optional[LiteralPlan], row_var: str) -> list[str]:
        """Head tuple parts; variables first bound by *last_plan* read
        from its candidate row, everything else from the context."""
        rowpos: dict[Variable, int] = {}
        if last_plan is not None:
            for p, var in last_plan.free_positions:
                if var not in rowpos:
                    rowpos[var] = p
        parts = []
        for t in cr.rule.head.args:
            if isinstance(t, Constant):
                parts.append(enc_const(t.value))
            elif t in rowpos:
                parts.append(f"{row_var}[{rowpos[t]}]")
            else:
                parts.append(enc_term(t))
        return parts

    def step_exprs(plan: LiteralPlan, row_var: str):
        """(projection parts, repeat conditions) for one step's rows."""
        first: dict[Variable, int] = {}
        proj: list[str] = []
        conds: list[str] = []
        for p, var in plan.free_positions:
            if var in first:
                conds.append(f"{row_var}[{p}] == {row_var}[{first[var]}]")
            else:
                first[var] = p
                if var in needed:
                    proj.append(f"{row_var}[{p}]")
        return proj, conds

    lines: list[str] = []

    def w(depth: int, text: str) -> None:
        lines.append("    " * depth + text)

    # ------------------------------------------------------------------
    # step emission
    # ------------------------------------------------------------------
    def emit_delta_step(plan: LiteralPlan, dst: str) -> None:
        """Step 0 against the frontier: probed unconditionally (the
        tuple kernel charges the join probe before looping), filtered
        by inlined constants, charged per delivered row."""
        is_last = fuse and n == 1
        w(1, "stats.join_probes += 1")
        proj, rep_conds = step_exprs(plan, "r")
        bound_conds = [
            f"r[{p}] == {enc_const(plan.atom.args[p].value)}"
            for p in plan.bound_positions
        ]
        parts = head_parts(plan, "r") if is_last else proj
        identity = (
            not bound_conds
            and not rep_conds
            and not plan.existential
            and parts == [f"r[{j}]" for j in range(plan.atom.arity)]
        )
        if identity:
            w(1, f"{dst} = delta.encoded_rows()")
            w(1, f"stats.rows_scanned += len({dst})")
        else:
            w(1, "_dr = delta.encoded_rows()")
            if bound_conds:
                w(1, f"_dr = [r for r in _dr if {' and '.join(bound_conds)}]")
            if plan.existential:
                # first delivered row is the witness; its bindings are
                # all dead, so the surviving context is empty
                w(1, "if _dr:")
                w(2, "stats.rows_scanned += 1")
                w(2, f"{dst} = [{_tuple_display(parts)}]")
                w(1, "else:")
                w(2, f"{dst} = []")
            else:
                w(1, "stats.rows_scanned += len(_dr)")
                if rep_conds:
                    w(1, f"_dr = [r for r in _dr if {' and '.join(rep_conds)}]")
                w(1, f"{dst} = [{_tuple_display(parts)} for r in _dr]")
        w(1, f"if {dst}:")
        w(2, "stats.batch_probes += 1")
        w(2, f"stats.batch_rows += len({dst})")

    def emit_join_step(i: int, plan: LiteralPlan, src: str, dst: str) -> None:
        is_last = fuse and i == n - 1
        first_step = i == 0 and not delta
        proj, rep_conds = step_exprs(plan, "row")
        if is_last:
            out_parts = head_parts(plan, "row")
            out_expr = _tuple_display(out_parts)
        elif first_step:
            out_expr = _tuple_display(proj)
        elif proj:
            out_expr = f"c + {_tuple_display(proj)}"
        else:
            out_expr = "c"
        # context-only output expressions for steps that deliver no row
        if is_last:
            ctx_out = _tuple_display(head_parts(None, "row"))
        else:
            ctx_out = "c" if not first_step else "()"

        positions = plan.bound_positions
        key_parts = [enc_term(plan.atom.args[p]) for p in positions]
        key_expr = (
            key_parts[0] if len(key_parts) == 1 else _tuple_display(key_parts)
        )

        w(1, f"{dst} = []")
        w(1, f"if {src} and rel{i} is not None:")
        w(2, "stats.batch_probes += 1")
        w(2, f"_n = len({src})")
        w(2, "stats.join_probes += _n")

        if positions and not plan.free_positions:
            # fully bound: the candidate row itself (in position
            # order, not posting-key layout) answers a membership
            # probe against the encoded row set (no index build on
            # either representation)
            key_expr = _tuple_display(
                [enc_term(plan.atom.args[p]) for p in range(plan.atom.arity)]
            )
            if use_indexes:
                w(2, "stats.index_probes += _n")
                w(2, f"_rs = rel{i}.column_store().row_set")
                w(2, f"{dst} = [{ctx_out} for c in {src} if {key_expr} in _rs]")
                w(2, f"stats.rows_scanned += len({dst})")
            else:
                # --no-index: the tuple engine enumerates the whole
                # relation and filters, charging every row per context
                w(2, "stats.scan_fallbacks += _n")
                w(2, f"stats.rows_scanned += _n * len(rel{i})")
                w(2, f"_rs = rel{i}.column_store().row_set")
                w(2, f"{dst} = [{ctx_out} for c in {src} if {key_expr} in _rs]")
        elif positions and use_indexes and plan.existential:
            # existential index probe: a non-empty posting witnesses
            # the context; exactly one delivered row is charged
            w(2, "stats.index_probes += _n")
            w(2, f"_idx = rel{i}.encoded_index({positions!r})")
            w(2, f"{dst} = [{ctx_out} for c in {src} if {key_expr} in _idx]")
            w(2, f"stats.rows_scanned += len({dst})")
        elif positions and use_indexes:
            w(2, "stats.index_probes += _n")
            w(2, f"_idx = rel{i}.encoded_index({positions!r})")
            w(2, "_get = _idx.get")
            w(2, f"_ap = {dst}.append")
            w(2, "_nr = 0")
            w(2, f"for c in {src}:")
            w(3, f"_p = _get({key_expr})")
            w(3, "if _p is None:")
            w(4, "continue")
            w(3, "_nr += len(_p)")
            w(3, "for row in _p:")
            for cond in rep_conds:
                w(4, f"if not ({cond}):")
                w(5, "continue")
            w(4, f"_ap({out_expr})")
            w(2, "stats.rows_scanned += _nr")
        elif not positions and plan.existential:
            # existential full scan: any row witnesses every context
            w(2, "stats.scan_fallbacks += _n")
            w(2, f"if len(rel{i}):")
            w(3, "stats.rows_scanned += _n")
            if ctx_out == "c":
                w(3, f"{dst} = {src}")
            else:
                w(3, f"{dst} = [{ctx_out} for c in {src}]")
        else:
            # full or bound scan: enumerate the relation per context,
            # charging every row (matching or not) like _scan_filter
            w(2, "stats.scan_fallbacks += _n")
            w(2, f"_rows = rel{i}.encoded_rows()")
            w(2, "stats.rows_scanned += _n * len(_rows)")
            conds = [
                f"row[{p}] == {enc_term(plan.atom.args[p])}" for p in positions
            ]
            conds += rep_conds
            suffix = f" if {' and '.join(conds)}" if conds else ""
            w(2, f"{dst} = [{out_expr} for c in {src} for row in _rows{suffix}]")
        w(2, f"stats.batch_rows += len({dst})")

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    if n == 0:
        last = "c0"
        w(1, f"{last} = [()]")
    else:
        for i, plan in enumerate(plans):
            dst = f"c{i}"
            if delta and i == 0:
                emit_delta_step(plan, dst)
            else:
                emit_join_step(i, plan, f"c{i - 1}" if i else "[()]", dst)
        last = f"c{n - 1}"

    if fuse:
        w(1, f"stats.rule_firings += len({last})")
        w(1, f"return {last}")
    else:
        for atom in cr.builtins:
            a, b = (raw_term(t) for t in atom.args)
            w(1, f"{last} = [c for c in {last} if _bi_{atom.predicate}({a}, {b})]")
        for k, atom in enumerate(cr.rule.negative):
            w(1, f"stats.join_probes += len({last})")
            nkey = _tuple_display([raw_term(t) for t in atom.args])
            w(1, f"if nrel{k} is not None:")
            w(2, f"{last} = [c for c in {last} if {nkey} not in nrel{k}]")
        w(1, f"stats.rule_firings += len({last})")
        head_args = cr.rule.head.args
        identity_head = (
            len(head_args) == len(slots)
            and all(isinstance(t, Variable) for t in head_args)
            and len(set(head_args)) == len(head_args)
            and all(slots.get(t) == j for j, t in enumerate(head_args))
        )
        if identity_head:
            w(1, f"return {last}")
        else:
            head = _tuple_display([enc_term(t) for t in head_args])
            w(1, f"return [{head} for c in {last}]")

    # -- prelude -----------------------------------------------------------
    prelude: list[str] = []
    sig = f"plan={'naive' if plan_id is None else f'delta[{plan_id}]'}"
    prelude.append("def _batch_kernel(db, stats, delta):")
    prelude.append(f"    # rule {cr.rule_index}: {cr.rule}")
    prelude.append(f"    # {sig} use_indexes={use_indexes} (batch)")
    ctx_doc = ", ".join(
        f"c[{s}]={v.name}" for v, s in sorted(slots.items(), key=lambda kv: kv[1])
    )
    prelude.append(f"    # ctx slots: {ctx_doc or '(none)'}")
    for i, plan in enumerate(plans):
        if delta and i == 0:
            continue
        prelude.append(f"    rel{i} = db.relation({plan.atom.predicate!r})")
    for k, atom in enumerate(cr.rule.negative):
        prelude.append(f"    nrel{k} = db.relation({atom.predicate!r})")
    for line in const_lines:
        prelude.append(f"    {line}")
    if state["vals"]:
        prelude.append("    vals = _values()")
    return "\n".join(prelude + lines) + "\n"


# -- compilation cache -------------------------------------------------------

#: module namespace for every batch kernel: the evaluable built-ins,
#: plus the process dictionary's intern/decode entry points
_BATCH_GLOBALS = {f"_bi_{name}": fn for name, fn in BUILTINS.items()}
_BATCH_GLOBALS["_intern"] = global_dictionary().intern
_BATCH_GLOBALS["_values"] = global_dictionary().values_list

_FN_CACHE: dict[str, Callable] = {}
_CACHE_STATS = {"compiles": 0, "hits": 0}


def _compile_source(source: str) -> Callable:
    fn = _FN_CACHE.get(source)
    if fn is not None:
        _CACHE_STATS["hits"] += 1
        return fn
    namespace = dict(_BATCH_GLOBALS)
    code = compile(source, "<repro-batch-kernel>", "exec")
    exec(code, namespace)
    fn = namespace["_batch_kernel"]
    _FN_CACHE[source] = fn
    _CACHE_STATS["compiles"] += 1
    return fn


def batch_kernel_cache_stats() -> dict:
    """Global cache counters: ``{"compiles": ..., "hits": ...}``."""
    return dict(_CACHE_STATS)


def clear_batch_kernel_cache() -> None:
    """Drop every compiled batch kernel (tests / memory pressure)."""
    _FN_CACHE.clear()
    _CACHE_STATS["compiles"] = 0
    _CACHE_STATS["hits"] = 0


def batch_cold_debt(
    cr: CompiledRule,
    plan_id: Optional[int],
    db,
    *,
    use_indexes: bool = True,
) -> int:
    """Rows this plan's batch kernel would have to *encode* before any
    join work happens: a stale scan cache or a missing encoded posting
    map re-interns a whole relation, and pending packed rows must
    materialize for row-set membership probes.

    The caller uses the estimate to skip the batch tier for one-shot
    firings over cold structures, where the tuple kernel — which reads
    the raw rows and raw indexes directly — is the cheaper rung.  Tier
    choice never changes counters: both tiers charge identically.
    """
    plans = cr.plan if plan_id is None else cr.delta_plans[plan_id]
    epoch = global_dictionary().epoch
    debt = 0
    for i, plan in enumerate(plans):
        if plan_id is not None and i == 0:
            continue  # the frontier arrives already encoded
        rel = db.relation(plan.atom.predicate)
        if rel is None:
            continue
        store = rel._store
        if store is None or store.epoch != epoch:
            debt += len(rel)
            continue
        positions = plan.bound_positions
        if positions and not plan.free_positions:
            debt += store._pending_rows  # membership flushes pending
        elif positions and use_indexes:
            if positions not in store._postings:
                debt += len(rel)
        else:
            scan = store._scan
            if scan is None or scan[0] != rel._version:
                debt += len(rel)
    return debt


def batch_rule_kernel(
    cr: CompiledRule,
    plan_id: Optional[int] = None,
    *,
    use_indexes: bool = True,
) -> Optional[Callable]:
    """The compiled batch kernel for one plan of *cr*, or ``None``
    when the rule cannot be batched (the caller falls back to the
    tuple kernel).  Memoized per compiled rule like
    :func:`~repro.engine.kernel.rule_kernel`."""
    cache = cr.__dict__.get("_batch_kernels")
    if cache is None:
        cache = {}
        object.__setattr__(cr, "_batch_kernels", cache)
    key = (plan_id, use_indexes)
    if key in cache:
        return cache[key]
    try:
        fn = _compile_source(
            batch_kernel_source(cr, plan_id, use_indexes=use_indexes)
        )
    except BatchKernelError:
        fn = None
    cache[key] = fn
    return fn


# ---------------------------------------------------------------------------
# vectorized kernels: packed int64 rows, numpy CSR joins
# ---------------------------------------------------------------------------
#
# The batch kernels above removed per-row *dispatch* but still run one
# Python loop iteration per candidate row.  For the single hottest
# shape of semi-naive evaluation — a linear recursion's delta plan
# (frontier step + one indexed join, head fused) — that loop body is
# pure data movement over dictionary ids, so it vectorizes completely:
#
# - the frontier arrives as one packed int64 per row (21 bits per
#   column, ``DeltaIndex.packed_rows``), unpacked to id columns with
#   two numpy ops;
# - the probed relation's encoded postings are laid out once per
#   version as a CSR image (sorted key array + offsets + row columns,
#   posting order preserved within each key); the whole frontier
#   probes it with one ``searchsorted`` and expands with ``repeat``;
# - head tuples are packed back into one int64 column, so duplicate
#   elimination in the absorb path is ``np.unique`` plus int-set
#   membership instead of tuple hashing.
#
# The expansion order (frontier order outer, posting order inner) is
# exactly the batch kernel's nested loop order, so first-occurrence
# dedup and every engine-invariant counter stay bit-identical.  Any
# condition the fast path cannot honor — numpy missing, arity > 3, an
# id past the 21-bit packing bound, a probed relation mutating so often
# the CSR image would be rebuilt quadratically — is detected *before
# any counter is touched* and reported by returning None, sending the
# firing to the general batch kernel unchanged.


class _CSR:
    """One relation's postings on a single bound position, as flat
    arrays: ``keys`` (sorted ids), ``offsets`` (CSR row starts into the
    column arrays), ``cols`` (one id array per argument position, rows
    grouped by key in posting order)."""

    __slots__ = ("keys", "offsets", "cols", "fits")

    def __init__(self, postings: dict, arity: int):
        keys_sorted = sorted(postings)
        flat = [row for k in keys_sorted for row in postings[k]]
        self.keys = _np.array(keys_sorted, dtype=_np.int64)
        counts = _np.array(
            [len(postings[k]) for k in keys_sorted], dtype=_np.int64
        )
        self.offsets = _np.concatenate(
            (_np.zeros(1, dtype=_np.int64), _np.cumsum(counts))
        )
        if flat:
            self.cols = [
                _np.array(col, dtype=_np.int64) for col in zip(*flat)
            ]
            self.fits = all(int(c.max()) < PACK_LIMIT for c in self.cols)
        else:
            self.cols = [_np.empty(0, dtype=_np.int64)] * arity
            self.fits = True


#: a probed relation mutating past this many CSR rebuilds while larger
#: than _CSR_VOLATILE_ROWS is "volatile": rebuilding its image every
#: round would be quadratic, so the fast path steps aside for it
_CSR_MAX_REBUILDS = 4
_CSR_VOLATILE_ROWS = 1024


def _csr_for(rel, position: int) -> Optional[_CSR]:
    """The (version-cached) CSR image of *rel*'s postings on
    *position*; None for volatile relations."""
    store = rel.column_store()
    entry = store._csr.get(position)
    version = rel._version
    if entry is not None:
        if entry[0] == version:
            return entry[1]
        if entry[2] >= _CSR_MAX_REBUILDS and len(rel) > _CSR_VOLATILE_ROWS:
            return None
    # encoded_index forces the raw index first, so lazy index builds
    # are counted exactly when the general batch path would count them
    postings = rel.encoded_index((position,))
    csr = _CSR(postings, rel.arity)
    builds = entry[2] + 1 if entry is not None else 1
    store._csr[position] = (version, csr, builds)
    return csr


def unpack_rows(arr, arity: int) -> list:
    """Packed int64 rows back to encoded-id tuples, order preserved."""
    mask = PACK_LIMIT - 1
    col_lists = [
        ((arr >> (PACK_SHIFT * (arity - 1 - p))) & mask).tolist()
        for p in range(arity)
    ]
    if arity == 0:
        return [()] * len(arr)
    if arity == 1:
        return [(c,) for c in col_lists[0]]
    return list(zip(*col_lists))


def _vector_spec(cr: CompiledRule, plan_id: Optional[int]):
    """Compile-time shape analysis for the vectorized delta kernel.

    Returns the spec dict for the supported shape — delta step with
    distinct needed variables, one indexed join step bound on a single
    frontier variable, fused head of arity ≤ 3 — or None.
    """
    if _np is None or plan_id is None:
        return None
    if cr.builtins or cr.rule.negative:
        return None
    plans = cr.delta_plans[plan_id]
    if len(plans) != 2:
        return None
    step0, step1 = plans
    head = cr.rule.head
    if head.arity > 3 or step0.atom.arity > 3:
        return None
    if step1.atom.predicate == head.predicate:
        # same gate as the batch compiler: the tuple engine sees its
        # own mid-firing inserts when a step reads the head relation
        return None
    if step0.existential or step1.existential:
        return None
    if step0.bound_positions:  # constants in the delta literal
        return None
    if len(step1.bound_positions) != 1:
        return None
    if not step1.free_positions:
        # fully bound: the batch path answers this with a row-set
        # membership probe and must not build an index
        return None
    bound_arg = step1.atom.args[step1.bound_positions[0]]
    if not isinstance(bound_arg, Variable):
        return None
    # repeated free variables (in either step) need per-row filters
    for plan in plans:
        fvars = [v for _, v in plan.free_positions]
        if len(set(fvars)) != len(fvars):
            return None

    needed = {a for a in head.args if isinstance(a, Variable)}
    needed.add(bound_arg)
    first0 = {var: p for p, var in reversed(step0.free_positions)}
    if bound_arg not in first0:
        return None
    proj = [p for p, var in step0.free_positions if var in needed]
    slot_of = {
        var: i
        for i, (p, var) in enumerate(
            (p, v) for p, v in step0.free_positions if v in needed
        )
    }
    rowpos = {}
    for p, var in step1.free_positions:
        if var not in rowpos:
            rowpos[var] = p
    parts = []
    for t in head.args:
        if isinstance(t, Constant):
            parts.append(("const", t.value))
        elif t in rowpos:
            parts.append(("row", rowpos[t]))
        elif t in slot_of:
            parts.append(("ctx", slot_of[t]))
        else:
            return None  # unbound head variable (unsafe rule)
    return {
        "frontier_pred": step0.atom.predicate,
        "frontier_arity": step0.atom.arity,
        "proj": proj,
        "key_slot": slot_of[bound_arg],
        "join_pred": step1.atom.predicate,
        "join_pos": step1.bound_positions[0],
        "head": parts,
        "head_arity": head.arity,
    }


def _make_vector_kernel(spec) -> Callable:
    frontier_pred = spec["frontier_pred"]
    frontier_arity = spec["frontier_arity"]
    proj = spec["proj"]
    key_slot = spec["key_slot"]
    join_pred = spec["join_pred"]
    join_pos = spec["join_pos"]
    head = spec["head"]
    head_arity = spec["head_arity"]
    mask = PACK_LIMIT - 1
    intern = global_dictionary().intern
    empty = _np.empty(0, dtype=_np.int64)

    def kernel(db, stats, delta):
        # -- feasibility first: nothing below mutates stats until the
        # fast path has committed to producing the firing itself
        rel1 = db.relation(join_pred)
        arr = delta.packed_rows(db.relation(frontier_pred))
        if arr is None:
            return None
        csr = None
        if rel1 is not None:
            csr = _csr_for(rel1, join_pos)
            if csr is None or not csr.fits:
                return None
        const_ids = []
        for kind, v in head:
            if kind == "const":
                cid = intern(v)
                if cid >= PACK_LIMIT:
                    return None
                const_ids.append(cid)
            else:
                const_ids.append(None)

        # -- delta step (identity/projection, charged like the batch
        # kernel: one frontier probe, every delivered row scanned)
        n = len(arr)
        stats.join_probes += 1
        stats.rows_scanned += n
        if n:
            stats.batch_probes += 1
            stats.batch_rows += n
        if n == 0 or rel1 is None:
            stats.rule_firings += 0
            return empty

        ctx_cols = [
            (arr >> (PACK_SHIFT * (frontier_arity - 1 - p))) & mask
            for p in proj
        ]

        # -- join step: one searchsorted probe for the whole frontier
        stats.batch_probes += 1
        stats.join_probes += n
        stats.index_probes += n
        keys = csr.keys
        key_col = ctx_cols[key_slot]
        if len(keys):
            pos = keys.searchsorted(key_col)
            clipped = _np.minimum(pos, len(keys) - 1)
            vidx = (keys.take(clipped) == key_col).nonzero()[0]
        else:
            vidx = empty
        if len(vidx):
            hits = pos.take(vidx)
            sel = csr.offsets.take(hits)
            counts = csr.offsets.take(hits + 1) - sel
            total = int(counts.sum())
        else:
            total = 0
        stats.rows_scanned += total
        stats.batch_rows += total
        stats.rule_firings += total
        if total == 0:
            return empty

        ctx_idx = vidx.repeat(counts)
        flat = (
            (sel - (counts.cumsum() - counts)).repeat(counts)
            + _np.arange(total, dtype=_np.int64)
        )

        # -- fused head: gather columns, pack to one int64 per row
        out = _np.zeros(total, dtype=_np.int64)
        shift = PACK_SHIFT * (head_arity - 1)
        for (kind, v), cid in zip(head, const_ids):
            if kind == "row":
                col = csr.cols[v].take(flat)
            elif kind == "ctx":
                col = ctx_cols[v].take(ctx_idx)
            else:
                col = cid  # scalar broadcast
            out |= col << shift if shift else col
            shift -= PACK_SHIFT
        return out

    return kernel


def vector_rule_kernel(
    cr: CompiledRule,
    plan_id: Optional[int] = None,
    *,
    use_indexes: bool = True,
) -> Optional[Callable]:
    """The vectorized kernel for one delta plan of *cr*, or None when
    the shape is unsupported (the caller runs the general batch
    kernel).  The returned kernel itself returns None — before touching
    any counter — when a runtime condition (id overflow, volatile
    probed relation) forces the same fallback."""
    if not use_indexes:
        return None
    cache = cr.__dict__.get("_vector_kernels")
    if cache is None:
        cache = {}
        object.__setattr__(cr, "_vector_kernels", cache)
    key = (plan_id, use_indexes)
    if key in cache:
        return cache[key]
    spec = _vector_spec(cr, plan_id)
    fn = _make_vector_kernel(spec) if spec is not None else None
    cache[key] = fn
    return fn
