"""Bottom-up fixpoint evaluation: naive and semi-naive strategies.

This is the computation model the paper assumes (section 1.1): start
from the database relations with empty derived predicates and apply the
rules in stages until the least fixpoint is reached; the answer is the
appropriate selection over the query predicate's relation.

Two features beyond the textbook algorithm support the paper's
optimizations:

- **Boolean cut** (section 3.1): predicates named in
  ``EngineOptions.cut_predicates`` (the ``B_i`` introduced by the
  connected-component rewriting) have arity 0, so their relation is
  complete as soon as it is non-empty; their defining rules are then
  *retired* from the fixpoint loop.  This "captures some aspects of
  Prolog's cut appropriate to the bottom-up model".
- **Initial IDB facts**: the input database may already contain facts
  for derived predicates.  This is required by the *uniform* notions of
  equivalence (section 4), whose inputs are arbitrary DB instances.

The fixpoint loops themselves live in :mod:`repro.engine.scheduler`:
by default each stratum is decomposed into its SCC-condensation DAG and
evaluated unit by unit (non-recursive units in a single pass, recursive
units in component-local fixpoints, independent units optionally in
parallel); ``use_scc=False`` keeps the previous monolithic per-stratum
loop, counter-for-counter identical to earlier releases.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..datalog.ast import Atom, Program
from ..datalog.columnar import global_dictionary
from ..datalog.database import Database
from ..datalog.errors import EvaluationError, ValidationError
from ..datalog.terms import Constant, Variable
from .cost import BoundCostModel, profile_database
from .faults import FaultInjector, FaultPlan, SchedulerFault
from .governor import BudgetExceeded, Governor, ResourceExhausted
from .prepared import PreparedProgram, prepare
from .provenance import DerivationTree, derivation_tree
from .scheduler import run_monolithic, run_scheduled
from .statistics import EvalStats

__all__ = ["EngineOptions", "EvalResult", "evaluate", "answers_of"]


@dataclass(frozen=True)
class EngineOptions:
    """Evaluation configuration.

    strategy
        ``"seminaive"`` (default) or ``"naive"``.
    cut_predicates
        Arity-0 predicates whose rules are retired once the predicate
        becomes true (the boolean subqueries of section 3.1).
    use_indexes
        Answer bound-position probes with lazily built hash indexes
        (default).  ``False`` forces every probe back to a full
        relation scan plus filter — the ``--no-index`` baseline the
        work-monotonicity regression measures against.  Answers are
        identical either way; only the work counters differ.
    use_kernels
        Evaluate rule bodies with compiled kernels (default): each
        join plan is code-generated once into a flat loop nest with
        slot-based registers (:mod:`repro.engine.kernel`) instead of
        the recursive plan interpreter.  ``False`` (the CLI's
        ``--no-kernel``) keeps the interpreter, which is retained as
        the differential oracle — answers, provenance, and every work
        counter except ``kernel_launches`` are bit-identical.
    use_columnar
        Evaluate rule bodies with dictionary-encoded **batch kernels**
        where possible (default; requires ``use_kernels``): the
        semi-naive frontier flows through each join plan as batches of
        encoded contexts (:mod:`repro.engine.batch_kernel`) instead of
        per-tuple loops, with the tuple kernels as the fallback rung
        for order-dependent rule shapes, provenance-recording runs and
        injected ``columnar`` faults.  ``False`` (the CLI's
        ``--no-columnar``) pins every rule to the PR-2 tuple kernels —
        the batch engine's differential oracle; answers, fact counts
        and every engine-invariant counter are bit-identical.
    use_cost_planner
        Order rule bodies with the bound-driven cost model (default):
        relations are profiled into log-bucketed sizes and per-position
        maximum degrees, and a DP search picks the join order with the
        smallest summed intermediate-result bound
        (:mod:`repro.engine.cost`).  ``False`` (the CLI's
        ``--no-cost-planner``) keeps the size-greedy heuristic — the
        planner's differential oracle.  Join order never changes
        answers or fact counts, only the work counters.
    replan_rounds
        Under the cost planner, re-rank a recursive fixpoint's delta
        plans from observed round cardinalities every N rounds
        (adaptive re-planning; ``stats.replans``).  ``0`` disables
        replanning; the default re-plans every 4 rounds.  Ignored with
        ``use_cost_planner=False``.
    use_scc
        Schedule each stratum as a topologically ordered DAG of
        SCC evaluation units (default; see
        :mod:`repro.engine.scheduler`).  ``False`` (the CLI's
        ``--no-scc``) runs each stratum as one monolithic fixpoint over
        all its rules — the pre-scheduler engine, kept bit-identical as
        the scheduler's differential oracle.
    parallel
        Thread-pool width for evaluation units at the same condensation
        depth (only meaningful with ``use_scc``).  ``1`` (default) runs
        units sequentially; results are deterministic for any value
        because per-unit statistics and provenance merge at a barrier
        in unit order.
    record_provenance
        Record a first justification per derived fact, enabling
        :meth:`EvalResult.derivation`.
    max_iterations
        One **global** bound on fixpoint rounds across the whole run
        (None = unbounded): under SCC scheduling the rounds of every
        evaluation unit count against it, and under the monolithic
        loop it bounds ``stats.iterations`` directly — the two engines
        enforce the same documented quantity.  All safe Datalog
        programs converge; the bound exists to stop pathological or
        adversarial fixpoints cleanly (:class:`ResourceExhausted`,
        honoring ``on_limit``).
    max_unit_iterations
        Per-unit round bound under SCC scheduling (the knob the old
        per-unit ``max_iterations`` semantics became); the monolithic
        loop treats each stratum's fixpoint as one unit, where this
        coincides with the global bound.
    deadline_s
        Wall-clock budget in seconds for the whole evaluation,
        enforced by cooperative cancellation at iteration, per-unit,
        and between-rule boundaries (see
        :mod:`repro.engine.governor`).
    max_facts / max_delta_rows
        Derivation budgets: total facts derived, and total rows
        entering semi-naive delta frontiers.  Enforced at governor
        checkpoints; a run may overshoot by the in-flight rule firing.
    on_limit
        What a tripped limit does: ``"raise"`` (default) raises
        :class:`ResourceExhausted` carrying the partial stats and the
        offending unit/stratum; ``"partial"`` returns a best-effort
        :class:`EvalResult` with ``stats.aborted_reason`` set, whose
        answers are a sound lower bound.
    fault_plan
        A :class:`~repro.engine.faults.FaultPlan` of deterministic
        faults to inject, exercising the degradation ladder
        (kernel→interpreter, index→scan, SCC→monolithic,
        parallel→sequential).  None (default) injects nothing.
    """

    strategy: str = "seminaive"
    cut_predicates: frozenset[str] = frozenset()
    use_indexes: bool = True
    use_kernels: bool = True
    use_columnar: bool = True
    use_cost_planner: bool = True
    replan_rounds: int = 4
    use_scc: bool = True
    parallel: int = 1
    record_provenance: bool = False
    max_iterations: Optional[int] = None
    max_unit_iterations: Optional[int] = None
    deadline_s: Optional[float] = None
    max_facts: Optional[int] = None
    max_delta_rows: Optional[int] = None
    on_limit: str = "raise"
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self):
        if self.strategy not in ("seminaive", "naive"):
            raise ValidationError(f"unknown strategy {self.strategy!r}")
        if self.parallel < 1:
            raise ValidationError(f"parallel must be >= 1, got {self.parallel}")
        if self.on_limit not in ("raise", "partial"):
            raise ValidationError(
                f"on_limit must be 'raise' or 'partial', got {self.on_limit!r}"
            )
        if self.replan_rounds < 0:
            raise ValidationError(
                f"replan_rounds must be >= 0, got {self.replan_rounds}"
            )
        for name in ("max_iterations", "max_unit_iterations", "max_facts",
                     "max_delta_rows"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValidationError(f"{name} must be >= 0, got {value}")
        if self.deadline_s is not None and self.deadline_s < 0:
            raise ValidationError(f"deadline_s must be >= 0, got {self.deadline_s}")
        object.__setattr__(self, "cut_predicates", frozenset(self.cut_predicates))


@dataclass
class EvalResult:
    """The fixpoint database plus run metadata.

    A result may be **partial**: under ``on_limit="partial"`` a run
    that tripped a governor limit returns with
    ``stats.aborted_reason`` set (and :attr:`is_partial` True).  Every
    fact in a partial result is a true consequence of the program —
    bottom-up evaluation only adds sound facts — but the fixpoint was
    not reached, so facts and answers are a *lower bound*: absent
    tuples are unknown, not false.
    """

    program: Program
    db: Database
    stats: EvalStats
    provenance: dict = field(default_factory=dict)
    #: whether the run recorded provenance (``record_provenance=True``);
    #: distinguishes "no justification recorded" from "not derived"
    provenance_recorded: bool = False
    #: the (cached) compiled artifacts this run evaluated — reusable by
    #: an :class:`~repro.engine.incremental.IncrementalSession` or a
    #: repeat evaluation over the same program and size profile
    prepared: Optional[PreparedProgram] = None

    @property
    def is_partial(self) -> bool:
        """True iff the run stopped at a resource limit before the
        fixpoint; answers are then a sound lower bound."""
        return self.stats.aborted_reason is not None

    def facts(self, predicate: str) -> frozenset[tuple]:
        """All rows of *predicate* at fixpoint (a lower bound if
        :attr:`is_partial`)."""
        return self.db.rows(predicate)

    def answers(self, query: Optional[Atom] = None) -> frozenset[tuple]:
        """Bindings for the query's variables (paper, section 1.1).

        Constants in the query act as selections; the result tuples
        list the values of the query's distinct variables in order of
        first occurrence.  Defaults to the program's query atom.  If
        :attr:`is_partial`, the set is a sound lower bound of the true
        answer set.
        """
        q = query if query is not None else self.program.query
        if q is None:
            raise ValidationError("program has no query and none was supplied")
        return answers_of(self.db, q)

    def has_answer(self) -> bool:
        return bool(self.answers())

    def derivation(self, predicate: str, row: tuple) -> DerivationTree:
        """The recorded derivation tree of ``predicate(row)``.

        Requires ``record_provenance=True`` at evaluation time; asking
        for a derived fact's tree without it is an
        :class:`~repro.datalog.errors.EvaluationError` ("provenance
        not recorded"), not a silently empty tree.
        """
        if (predicate, row) not in self.provenance:
            if row not in self.db.rows(predicate):
                raise EvaluationError(f"fact {predicate}{row!r} was not derived")
            if not self.provenance_recorded:
                raise EvaluationError(
                    f"provenance not recorded: evaluate with "
                    f"record_provenance=True to explain {predicate}{row!r}"
                )
        return derivation_tree(self.provenance, predicate, row)


def answers_of(db: Database, query: Atom) -> frozenset[tuple]:
    """Apply the selection/projection a query atom denotes to *db*."""
    var_positions: list[int] = []
    seen_vars: dict[Variable, int] = {}
    for p, arg in enumerate(query.args):
        if isinstance(arg, Variable) and arg not in seen_vars:
            seen_vars[arg] = p
            var_positions.append(p)
    out = set()
    for row in db.rows(query.predicate):
        ok = True
        for p, arg in enumerate(query.args):
            if isinstance(arg, Constant):
                if row[p] != arg.value:
                    ok = False
                    break
            else:
                if row[seen_vars[arg]] != row[p]:
                    ok = False
                    break
        if ok:
            out.add(tuple(row[p] for p in var_positions))
    return frozenset(out)


def evaluate(
    program: Program,
    edb: Database,
    options: Optional[EngineOptions] = None,
    *,
    analysis=None,
) -> EvalResult:
    """Compute the least fixpoint of *program* over *edb*.

    The input database is not modified by evaluation; derived facts
    accumulate in a working database that *shares* the relations of
    predicates no rule can write (base relations) and copies the rest.
    Sharing means hash indexes built lazily over base relations stay
    materialized on *edb* itself, so a second ``evaluate`` over the
    same database starts warm instead of rebuilding every index from
    scratch.  Facts already present for derived predicates are kept
    (the uniform-equivalence input convention).

    *analysis* (an :class:`repro.analysis.absint.AnalysisResult`)
    overlays the analyzer's propagated degree sketches onto the cost
    planner's profile: derived predicates are planned with their
    estimated fixpoint sizes and degrees instead of the worst-case
    "larger than anything stored" default.  The sketch signatures flow
    into the model's :meth:`~repro.engine.cost.BoundCostModel.signature`
    and therefore into the prepared-program cache key, so analysis-fed
    and default plans never collide in the cache.  Join order never
    changes answers or fact counts — only work counters move.
    """
    opts = options or EngineOptions()
    program.validate()
    db = edb.copy(mutating=program.idb_predicates())
    builds_before = db.index_builds()
    stats = EvalStats()
    provenance: dict = {}

    # The governor owns every runtime limit and the fault plan; with
    # neither configured it is disabled and costs one attribute test
    # per checkpoint.  The injector is per-run state, so a reused
    # EngineOptions sees its one-shot faults fresh each evaluation.
    injector = (
        FaultInjector(opts.fault_plan)
        if opts.fault_plan is not None and opts.fault_plan.any()
        else None
    )
    governor = Governor(opts, injector)
    if injector is not None and injector.index_build_fails():
        # index→scan rung: hash-index construction "failed", so the
        # whole run degrades to full-scan probing — same answers,
        # different work counters
        injector.record(stats, "index->scan")
        opts = replace(opts, use_indexes=False)

    # Make sure every derived predicate has a relation, so that empty
    # results are observable and plans never miss a relation.
    arities = program.arities()
    for pred in program.idb_predicates():
        db.ensure(pred, arities[pred])

    # Rules compile against the input relation sizes: derived relations
    # are empty (or nearly so) at this point but typically grow past
    # the base relations, so the selectivity heuristic treats them as
    # larger than any stored relation when breaking join-order ties.
    # The compiled artifacts (plans, analysis, stratification) come
    # from the prepared-program cache: a hit skips planning and codegen
    # entirely and is bit-identical to a fresh compile because the size
    # profile is part of the cache key.
    sizes = db.relation_sizes()
    largest = max(sizes.values(), default=0)
    for pred in program.idb_predicates():
        sizes[pred] = max(sizes.get(pred, 0), largest + 1)
    cost_model = None
    if opts.use_cost_planner:
        profiles = profile_database(db, sizes)
        if analysis is not None:
            # measured EDB profiles stay authoritative; the analyzer
            # refines only the derived predicates it propagated
            idb = program.idb_predicates()
            for pred, profile in analysis.cost_profiles().items():
                if pred in idb:
                    profiles[pred] = profile
        cost_model = BoundCostModel(profiles)
    prepared = prepare(program, sizes, cost_model=cost_model)
    # recorded on the preparation, not the call, so a prepared-cache
    # hit reports exactly the counters of the cold build it reuses
    stats.plans_costed += prepared.plans_costed

    # Seed fact rules (ground, body-less); the paper keeps facts in the
    # EDB but the parser tolerates them in programs.
    for pred, row in prepared.fact_rules:
        if db.ensure(pred, len(row)).add(row):
            stats.facts_derived += 1

    # Stratified evaluation (section-6 extension): rules run stratum by
    # stratum, so a negated literal always refers to a fully computed
    # lower-stratum relation.  Pure Datalog yields a single stratum.
    info = prepared.info
    strata = prepared.strata

    def finalize() -> None:
        for pred in program.idb_predicates():
            # count via the relation, not a materialized snapshot:
            # deferred packed rows stay packed until something reads
            # actual tuples
            rel = db.relation(pred)
            stats.fact_counts[pred] = len(rel) if rel is not None else 0
        # Shared base relations may carry builds from earlier runs
        # (that is the point of sharing them); only builds during this
        # run count.
        stats.index_builds = db.index_builds() - builds_before
        if opts.use_columnar and opts.use_kernels and not opts.record_provenance:
            stats.dict_size = len(global_dictionary())

    # Adaptive replanning rides on the cost planner: recursive
    # fixpoints re-rank their delta plans every `replan_rounds` rounds
    # from observed frontier cardinalities.  Replans are a pure
    # join-order change, so answers and fact counts are untouched.
    replan = (
        opts.replan_rounds
        if opts.use_cost_planner and opts.strategy == "seminaive"
        else 0
    )
    try:
        if opts.use_scc:
            try:
                run_scheduled(
                    strata, info, db, stats, provenance, opts, governor,
                    replan_rounds=replan,
                )
            except SchedulerFault:
                # SCC→monolithic rung: scheduling failed before any
                # unit ran, so the stratum loop takes over from the
                # same (untouched) database state
                injector.record(stats, "scc->monolithic")
                run_monolithic(strata, db, stats, provenance, opts, governor,
                               replan_rounds=replan)
        else:
            run_monolithic(strata, db, stats, provenance, opts, governor,
                           replan_rounds=replan)
    except BudgetExceeded as exc:
        finalize()
        if opts.on_limit == "partial":
            stats.aborted_reason = exc.reason
            return EvalResult(
                program, db, stats, provenance,
                provenance_recorded=opts.record_provenance,
                prepared=prepared,
            )
        raise ResourceExhausted(
            exc.reason, stats=stats, unit=exc.unit, stratum=exc.stratum
        ) from None

    finalize()
    return EvalResult(
        program, db, stats, provenance,
        provenance_recorded=opts.record_provenance,
        prepared=prepared,
    )
