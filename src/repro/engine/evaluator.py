"""Bottom-up fixpoint evaluation: naive and semi-naive strategies.

This is the computation model the paper assumes (section 1.1): start
from the database relations with empty derived predicates and apply the
rules in stages until the least fixpoint is reached; the answer is the
appropriate selection over the query predicate's relation.

Two features beyond the textbook algorithm support the paper's
optimizations:

- **Boolean cut** (section 3.1): predicates named in
  ``EngineOptions.cut_predicates`` (the ``B_i`` introduced by the
  connected-component rewriting) have arity 0, so their relation is
  complete as soon as it is non-empty; their defining rules are then
  *retired* from the fixpoint loop.  This "captures some aspects of
  Prolog's cut appropriate to the bottom-up model".
- **Initial IDB facts**: the input database may already contain facts
  for derived predicates.  This is required by the *uniform* notions of
  equivalence (section 4), whose inputs are arbitrary DB instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..datalog.analysis import stratify
from ..datalog.ast import Atom, Program
from ..datalog.builtins import eval_builtin
from ..datalog.database import Database
from ..datalog.errors import EvaluationError, ValidationError
from ..datalog.terms import Constant, Variable
from .kernel import rule_kernel
from .plan import CompiledRule, DeltaIndex, compile_rule, match_plan
from .provenance import DerivationTree, Justification, derivation_tree
from .statistics import EvalStats

__all__ = ["EngineOptions", "EvalResult", "evaluate", "answers_of"]


@dataclass(frozen=True)
class EngineOptions:
    """Evaluation configuration.

    strategy
        ``"seminaive"`` (default) or ``"naive"``.
    cut_predicates
        Arity-0 predicates whose rules are retired once the predicate
        becomes true (the boolean subqueries of section 3.1).
    use_indexes
        Answer bound-position probes with lazily built hash indexes
        (default).  ``False`` forces every probe back to a full
        relation scan plus filter — the ``--no-index`` baseline the
        work-monotonicity regression measures against.  Answers are
        identical either way; only the work counters differ.
    use_kernels
        Evaluate rule bodies with compiled kernels (default): each
        join plan is code-generated once into a flat loop nest with
        slot-based registers (:mod:`repro.engine.kernel`) instead of
        the recursive plan interpreter.  ``False`` (the CLI's
        ``--no-kernel``) keeps the interpreter, which is retained as
        the differential oracle — answers, provenance, and every work
        counter except ``kernel_launches`` are bit-identical.
    record_provenance
        Record a first justification per derived fact, enabling
        :meth:`EvalResult.derivation`.
    max_iterations
        Abort with :class:`EvaluationError` if the fixpoint does not
        converge within this many iterations (None = unbounded).  All
        safe Datalog programs converge; the bound exists to fail fast on
        engine bugs.
    """

    strategy: str = "seminaive"
    cut_predicates: frozenset[str] = frozenset()
    use_indexes: bool = True
    use_kernels: bool = True
    record_provenance: bool = False
    max_iterations: Optional[int] = None

    def __post_init__(self):
        if self.strategy not in ("seminaive", "naive"):
            raise ValidationError(f"unknown strategy {self.strategy!r}")
        object.__setattr__(self, "cut_predicates", frozenset(self.cut_predicates))


@dataclass
class EvalResult:
    """The fixpoint database plus run metadata."""

    program: Program
    db: Database
    stats: EvalStats
    provenance: dict = field(default_factory=dict)

    def facts(self, predicate: str) -> frozenset[tuple]:
        """All rows of *predicate* at fixpoint."""
        return self.db.rows(predicate)

    def answers(self, query: Optional[Atom] = None) -> frozenset[tuple]:
        """Bindings for the query's variables (paper, section 1.1).

        Constants in the query act as selections; the result tuples
        list the values of the query's distinct variables in order of
        first occurrence.  Defaults to the program's query atom.
        """
        q = query if query is not None else self.program.query
        if q is None:
            raise ValidationError("program has no query and none was supplied")
        return answers_of(self.db, q)

    def has_answer(self) -> bool:
        return bool(self.answers())

    def derivation(self, predicate: str, row: tuple) -> DerivationTree:
        """The recorded derivation tree of ``predicate(row)``.

        Requires ``record_provenance=True`` at evaluation time.
        """
        if (predicate, row) not in self.provenance and row not in self.db.rows(predicate):
            raise EvaluationError(f"fact {predicate}{row!r} was not derived")
        return derivation_tree(self.provenance, predicate, row)


def answers_of(db: Database, query: Atom) -> frozenset[tuple]:
    """Apply the selection/projection a query atom denotes to *db*."""
    var_positions: list[int] = []
    seen_vars: dict[Variable, int] = {}
    for p, arg in enumerate(query.args):
        if isinstance(arg, Variable) and arg not in seen_vars:
            seen_vars[arg] = p
            var_positions.append(p)
    out = set()
    for row in db.rows(query.predicate):
        ok = True
        for p, arg in enumerate(query.args):
            if isinstance(arg, Constant):
                if row[p] != arg.value:
                    ok = False
                    break
            else:
                if row[seen_vars[arg]] != row[p]:
                    ok = False
                    break
        if ok:
            out.add(tuple(row[p] for p in var_positions))
    return frozenset(out)


def evaluate(
    program: Program,
    edb: Database,
    options: Optional[EngineOptions] = None,
) -> EvalResult:
    """Compute the least fixpoint of *program* over *edb*.

    The input database is not modified by evaluation; derived facts
    accumulate in a working database that *shares* the relations of
    predicates no rule can write (base relations) and copies the rest.
    Sharing means hash indexes built lazily over base relations stay
    materialized on *edb* itself, so a second ``evaluate`` over the
    same database starts warm instead of rebuilding every index from
    scratch.  Facts already present for derived predicates are kept
    (the uniform-equivalence input convention).
    """
    opts = options or EngineOptions()
    program.validate()
    db = edb.copy(mutating=program.idb_predicates())
    builds_before = db.index_builds()
    stats = EvalStats()
    provenance: dict = {}

    # Make sure every derived predicate has a relation, so that empty
    # results are observable and plans never miss a relation.
    arities = program.arities()
    for pred in program.idb_predicates():
        db.ensure(pred, arities[pred])

    # Seed fact rules (ground, body-less); the paper keeps facts in the
    # EDB but the parser tolerates them in programs.  Rules compile
    # against the input relation sizes: derived relations are empty (or
    # nearly so) at this point but typically grow past the base
    # relations, so the selectivity heuristic treats them as larger
    # than any stored relation when breaking join-order ties.
    sizes = db.relation_sizes()
    largest = max(sizes.values(), default=0)
    for pred in program.idb_predicates():
        sizes[pred] = max(sizes.get(pred, 0), largest + 1)
    compiled: list[CompiledRule] = []
    for i, r in enumerate(program.rules):
        if not r.body:
            if not r.head.is_ground():
                raise ValidationError(f"unsafe fact rule: {r}")
            if db.ensure(r.head.predicate, r.head.arity).add(r.head.as_fact()):
                stats.facts_derived += 1
            continue
        compiled.append(compile_rule(r, i, sizes=sizes))

    retire = _Retirer(opts.cut_predicates, stats)

    # Stratified evaluation (section-6 extension): rules run stratum by
    # stratum, so a negated literal always refers to a fully computed
    # lower-stratum relation.  Pure Datalog yields a single stratum.
    if program.has_negation():
        layers = stratify(program)
        index = {p: i for i, layer in enumerate(layers) for p in layer}
        grouped: dict[int, list[CompiledRule]] = {}
        for cr in compiled:
            grouped.setdefault(index[cr.rule.head.predicate], []).append(cr)
        strata = [grouped.get(i, []) for i in range(len(layers))]
    else:
        strata = [compiled] if compiled else []

    for stratum_rules in strata:
        active = retire.filter(stratum_rules, db)
        if not active:
            continue
        if opts.strategy == "naive":
            _naive_loop(active, db, stats, provenance, opts, retire)
        else:
            _seminaive_loop(active, db, stats, provenance, opts, retire)

    for pred in program.idb_predicates():
        stats.fact_counts[pred] = len(db.rows(pred))
    # Shared base relations may carry builds from earlier runs (that is
    # the point of sharing them); only builds during this run count.
    stats.index_builds = db.index_builds() - builds_before
    return EvalResult(program, db, stats, provenance)


class _Retirer:
    """Removes satisfied boolean (cut) rules from the active set."""

    def __init__(self, cut_predicates: frozenset[str], stats: EvalStats):
        self._cut = cut_predicates
        self._stats = stats

    def filter(self, rules: list[CompiledRule], db: Database) -> list[CompiledRule]:
        if not self._cut:
            return rules
        keep = []
        for cr in rules:
            head = cr.rule.head.predicate
            if head in self._cut and db.rows(head):
                self._stats.rules_retired += 1
            else:
                keep.append(cr)
        return keep


def _fire(
    cr: CompiledRule,
    plan_id: Optional[int],
    db: Database,
    stats: EvalStats,
    provenance: dict,
    opts: EngineOptions,
    added: dict[str, set],
    delta: Optional[DeltaIndex] = None,
) -> None:
    """Run one plan of one rule, inserting new head facts.

    *plan_id* selects the naive plan (``None``) or the delta plan
    starting at relational literal *plan_id*.  With
    ``opts.use_kernels`` the plan runs as a compiled kernel (built-ins,
    negation, and head construction are inside the kernel body); the
    interpreter below is the fallback and the differential oracle.
    """
    head_pred = cr.rule.head.predicate
    rel = db.relation(head_pred)
    assert rel is not None
    if opts.use_kernels:
        kernel = rule_kernel(
            cr,
            plan_id,
            use_indexes=opts.use_indexes,
            record_rows=opts.record_provenance,
        )
        if kernel is not None:
            stats.kernel_launches += 1
            new = added.get(head_pred)
            if opts.record_provenance:
                for values, body_rows in kernel(db, stats, delta):
                    if rel.add(values):
                        stats.facts_derived += 1
                        if new is None:
                            new = added.setdefault(head_pred, set())
                        new.add(values)
                        body = tuple(
                            (atom.predicate, row)
                            for atom, row in zip(cr.relational_body, body_rows)
                        )
                        provenance[(head_pred, values)] = Justification(
                            cr.rule_index, body
                        )
                    else:
                        stats.duplicates += 1
            else:
                for values in kernel(db, stats, delta):
                    if rel.add(values):
                        stats.facts_derived += 1
                        if new is None:
                            new = added.setdefault(head_pred, set())
                        new.add(values)
                    else:
                        stats.duplicates += 1
            return
    plans = cr.plan if plan_id is None else cr.delta_plans[plan_id]
    for subst, body_rows in match_plan(
        plans, db, stats, delta_rows=delta, use_indexes=opts.use_indexes
    ):
        if cr.builtins and not _builtins_hold(cr, subst):
            continue
        if cr.rule.negative and not _negatives_hold(cr, db, subst, stats):
            continue
        stats.rule_firings += 1
        values = cr.head_values(subst)
        if rel.add(values):
            stats.facts_derived += 1
            added.setdefault(head_pred, set()).add(values)
            if opts.record_provenance:
                body = tuple(
                    (atom.predicate, row)
                    for atom, row in zip(cr.relational_body, body_rows)
                )
                provenance[(head_pred, values)] = Justification(cr.rule_index, body)
        else:
            stats.duplicates += 1


def _builtins_hold(cr: CompiledRule, subst: dict) -> bool:
    """Evaluate the rule's comparison built-ins under a complete match."""
    for atom in cr.builtins:
        a, b = (
            t.value if isinstance(t, Constant) else subst[t] for t in atom.args
        )
        if not eval_builtin(atom.predicate, a, b):
            return False
    return True


def _negatives_hold(cr: CompiledRule, db: Database, subst: dict, stats: EvalStats) -> bool:
    """Check the negated literals of a rule under a complete positive
    match.  Safety guarantees every variable is bound; stratification
    guarantees the referenced relation is complete."""
    for atom in cr.rule.negative:
        rel = db.relation(atom.predicate)
        stats.join_probes += 1
        if rel is None:
            continue  # empty relation: the negation holds
        key = tuple(
            a.value if isinstance(a, Constant) else subst[a] for a in atom.args
        )
        if key in rel:
            return False
    return True


def _check_budget(stats: EvalStats, opts: EngineOptions) -> None:
    stats.iterations += 1
    if opts.max_iterations is not None and stats.iterations > opts.max_iterations:
        raise EvaluationError(
            f"fixpoint did not converge within {opts.max_iterations} iterations"
        )


def _naive_loop(active, db, stats, provenance, opts, retire) -> None:
    while True:
        _check_budget(stats, opts)
        added: dict[str, set] = {}
        for cr in active:
            _fire(cr, None, db, stats, provenance, opts, added)
        active = retire.filter(active, db)
        if not any(added.values()):
            return


def _seminaive_loop(active, db, stats, provenance, opts, retire) -> None:
    # Specialize each rule once per *recursive* literal — a body
    # position whose predicate is the head of some rule in this stratum
    # (including boolean cut rules that may retire later: their facts
    # still arrive as deltas) and can therefore ever change.  Literals
    # over stored or lower-stratum relations never change here, so no
    # delta body starts from them and the rule is never re-scanned in
    # full.
    recursive = {cr.rule.head.predicate for cr in active}
    specializations = [
        (
            cr,
            [
                (i, literal.predicate)
                for i, literal in enumerate(cr.relational_body)
                if literal.predicate in recursive
            ],
        )
        for cr in active
    ]

    # First round is naive: it also accounts for initial IDB facts,
    # which uniform-equivalence inputs may contain.
    _check_budget(stats, opts)
    delta: dict[str, set] = {}
    for cr in active:
        _fire(cr, None, db, stats, provenance, opts, delta)
    active = retire.filter(active, db)

    alive = set(map(id, active))
    while any(delta.values()):
        _check_budget(stats, opts)
        # One shared DeltaIndex per changed predicate: every rule
        # specialization probing that frontier this round reuses the
        # same lazily built position groupings.
        previous = {p: DeltaIndex(rows) for p, rows in delta.items() if rows}
        delta = {}
        for cr, delta_literals in specializations:
            if id(cr) not in alive:
                continue
            for i, predicate in delta_literals:
                frontier = previous.get(predicate)
                if frontier is None:
                    continue
                _fire(
                    cr,
                    i,
                    db,
                    stats,
                    provenance,
                    opts,
                    delta,
                    delta=frontier,
                )
        active = retire.filter(active, db)
        alive = set(map(id, active))
