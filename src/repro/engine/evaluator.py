"""Bottom-up fixpoint evaluation: naive and semi-naive strategies.

This is the computation model the paper assumes (section 1.1): start
from the database relations with empty derived predicates and apply the
rules in stages until the least fixpoint is reached; the answer is the
appropriate selection over the query predicate's relation.

Two features beyond the textbook algorithm support the paper's
optimizations:

- **Boolean cut** (section 3.1): predicates named in
  ``EngineOptions.cut_predicates`` (the ``B_i`` introduced by the
  connected-component rewriting) have arity 0, so their relation is
  complete as soon as it is non-empty; their defining rules are then
  *retired* from the fixpoint loop.  This "captures some aspects of
  Prolog's cut appropriate to the bottom-up model".
- **Initial IDB facts**: the input database may already contain facts
  for derived predicates.  This is required by the *uniform* notions of
  equivalence (section 4), whose inputs are arbitrary DB instances.

The fixpoint loops themselves live in :mod:`repro.engine.scheduler`:
by default each stratum is decomposed into its SCC-condensation DAG and
evaluated unit by unit (non-recursive units in a single pass, recursive
units in component-local fixpoints, independent units optionally in
parallel); ``use_scc=False`` keeps the previous monolithic per-stratum
loop, counter-for-counter identical to earlier releases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..datalog.analysis import analyze, stratify
from ..datalog.ast import Atom, Program
from ..datalog.database import Database
from ..datalog.errors import EvaluationError, ValidationError
from ..datalog.terms import Constant, Variable
from .plan import CompiledRule, compile_rule
from .provenance import DerivationTree, derivation_tree
from .scheduler import run_monolithic, run_scheduled
from .statistics import EvalStats

__all__ = ["EngineOptions", "EvalResult", "evaluate", "answers_of"]


@dataclass(frozen=True)
class EngineOptions:
    """Evaluation configuration.

    strategy
        ``"seminaive"`` (default) or ``"naive"``.
    cut_predicates
        Arity-0 predicates whose rules are retired once the predicate
        becomes true (the boolean subqueries of section 3.1).
    use_indexes
        Answer bound-position probes with lazily built hash indexes
        (default).  ``False`` forces every probe back to a full
        relation scan plus filter — the ``--no-index`` baseline the
        work-monotonicity regression measures against.  Answers are
        identical either way; only the work counters differ.
    use_kernels
        Evaluate rule bodies with compiled kernels (default): each
        join plan is code-generated once into a flat loop nest with
        slot-based registers (:mod:`repro.engine.kernel`) instead of
        the recursive plan interpreter.  ``False`` (the CLI's
        ``--no-kernel``) keeps the interpreter, which is retained as
        the differential oracle — answers, provenance, and every work
        counter except ``kernel_launches`` are bit-identical.
    use_scc
        Schedule each stratum as a topologically ordered DAG of
        SCC evaluation units (default; see
        :mod:`repro.engine.scheduler`).  ``False`` (the CLI's
        ``--no-scc``) runs each stratum as one monolithic fixpoint over
        all its rules — the pre-scheduler engine, kept bit-identical as
        the scheduler's differential oracle.
    parallel
        Thread-pool width for evaluation units at the same condensation
        depth (only meaningful with ``use_scc``).  ``1`` (default) runs
        units sequentially; results are deterministic for any value
        because per-unit statistics and provenance merge at a barrier
        in unit order.
    record_provenance
        Record a first justification per derived fact, enabling
        :meth:`EvalResult.derivation`.
    max_iterations
        Abort with :class:`EvaluationError` if the fixpoint does not
        converge within this many iterations (None = unbounded).  All
        safe Datalog programs converge; the bound exists to fail fast on
        engine bugs.  Under SCC scheduling each unit has its own
        iteration counter, so the bound is per-unit.
    """

    strategy: str = "seminaive"
    cut_predicates: frozenset[str] = frozenset()
    use_indexes: bool = True
    use_kernels: bool = True
    use_scc: bool = True
    parallel: int = 1
    record_provenance: bool = False
    max_iterations: Optional[int] = None

    def __post_init__(self):
        if self.strategy not in ("seminaive", "naive"):
            raise ValidationError(f"unknown strategy {self.strategy!r}")
        if self.parallel < 1:
            raise ValidationError(f"parallel must be >= 1, got {self.parallel}")
        object.__setattr__(self, "cut_predicates", frozenset(self.cut_predicates))


@dataclass
class EvalResult:
    """The fixpoint database plus run metadata."""

    program: Program
    db: Database
    stats: EvalStats
    provenance: dict = field(default_factory=dict)

    def facts(self, predicate: str) -> frozenset[tuple]:
        """All rows of *predicate* at fixpoint."""
        return self.db.rows(predicate)

    def answers(self, query: Optional[Atom] = None) -> frozenset[tuple]:
        """Bindings for the query's variables (paper, section 1.1).

        Constants in the query act as selections; the result tuples
        list the values of the query's distinct variables in order of
        first occurrence.  Defaults to the program's query atom.
        """
        q = query if query is not None else self.program.query
        if q is None:
            raise ValidationError("program has no query and none was supplied")
        return answers_of(self.db, q)

    def has_answer(self) -> bool:
        return bool(self.answers())

    def derivation(self, predicate: str, row: tuple) -> DerivationTree:
        """The recorded derivation tree of ``predicate(row)``.

        Requires ``record_provenance=True`` at evaluation time.
        """
        if (predicate, row) not in self.provenance and row not in self.db.rows(predicate):
            raise EvaluationError(f"fact {predicate}{row!r} was not derived")
        return derivation_tree(self.provenance, predicate, row)


def answers_of(db: Database, query: Atom) -> frozenset[tuple]:
    """Apply the selection/projection a query atom denotes to *db*."""
    var_positions: list[int] = []
    seen_vars: dict[Variable, int] = {}
    for p, arg in enumerate(query.args):
        if isinstance(arg, Variable) and arg not in seen_vars:
            seen_vars[arg] = p
            var_positions.append(p)
    out = set()
    for row in db.rows(query.predicate):
        ok = True
        for p, arg in enumerate(query.args):
            if isinstance(arg, Constant):
                if row[p] != arg.value:
                    ok = False
                    break
            else:
                if row[seen_vars[arg]] != row[p]:
                    ok = False
                    break
        if ok:
            out.add(tuple(row[p] for p in var_positions))
    return frozenset(out)


def evaluate(
    program: Program,
    edb: Database,
    options: Optional[EngineOptions] = None,
) -> EvalResult:
    """Compute the least fixpoint of *program* over *edb*.

    The input database is not modified by evaluation; derived facts
    accumulate in a working database that *shares* the relations of
    predicates no rule can write (base relations) and copies the rest.
    Sharing means hash indexes built lazily over base relations stay
    materialized on *edb* itself, so a second ``evaluate`` over the
    same database starts warm instead of rebuilding every index from
    scratch.  Facts already present for derived predicates are kept
    (the uniform-equivalence input convention).
    """
    opts = options or EngineOptions()
    program.validate()
    db = edb.copy(mutating=program.idb_predicates())
    builds_before = db.index_builds()
    stats = EvalStats()
    provenance: dict = {}

    # Make sure every derived predicate has a relation, so that empty
    # results are observable and plans never miss a relation.
    arities = program.arities()
    for pred in program.idb_predicates():
        db.ensure(pred, arities[pred])

    # Seed fact rules (ground, body-less); the paper keeps facts in the
    # EDB but the parser tolerates them in programs.  Rules compile
    # against the input relation sizes: derived relations are empty (or
    # nearly so) at this point but typically grow past the base
    # relations, so the selectivity heuristic treats them as larger
    # than any stored relation when breaking join-order ties.
    sizes = db.relation_sizes()
    largest = max(sizes.values(), default=0)
    for pred in program.idb_predicates():
        sizes[pred] = max(sizes.get(pred, 0), largest + 1)
    compiled: list[CompiledRule] = []
    for i, r in enumerate(program.rules):
        if not r.body:
            if not r.head.is_ground():
                raise ValidationError(f"unsafe fact rule: {r}")
            if db.ensure(r.head.predicate, r.head.arity).add(r.head.as_fact()):
                stats.facts_derived += 1
            continue
        compiled.append(compile_rule(r, i, sizes=sizes))

    # Stratified evaluation (section-6 extension): rules run stratum by
    # stratum, so a negated literal always refers to a fully computed
    # lower-stratum relation.  Pure Datalog yields a single stratum.
    info = analyze(program)
    if program.has_negation():
        layers = stratify(program, info)
        index = {p: i for i, layer in enumerate(layers) for p in layer}
        grouped: dict[int, list[CompiledRule]] = {}
        for cr in compiled:
            grouped.setdefault(index[cr.rule.head.predicate], []).append(cr)
        strata = [grouped.get(i, []) for i in range(len(layers))]
    else:
        strata = [compiled] if compiled else []

    if opts.use_scc:
        run_scheduled(strata, info, db, stats, provenance, opts)
    else:
        run_monolithic(strata, db, stats, provenance, opts)

    for pred in program.idb_predicates():
        stats.fact_counts[pred] = len(db.rows(pred))
    # Shared base relations may carry builds from earlier runs (that is
    # the point of sharing them); only builds during this run count.
    stats.index_builds = db.index_builds() - builds_before
    return EvalResult(program, db, stats, provenance)
