"""The resource governor: budgets, deadlines, cooperative cancellation.

Detection of existential arguments is undecidable (paper, Lemma 2.1),
so there is no static guard against pathological fixpoints: adversarial
programs and databases can always construct evaluations that are
correct but unaffordable.  A production engine therefore needs dynamic
limits with *structured* failure — stop cleanly, say why, and hand back
whatever partial state is sound — instead of hanging or exhausting
memory.

The :class:`Governor` enforces, cooperatively:

``deadline_s``
    A wall-clock budget for the whole evaluation.  Checked at
    iteration boundaries (windowed — the full check runs once per
    ``_ITER_WINDOW`` rounds on the fast path), every per-unit
    boundary, and between rule firings (the
    :func:`~repro.engine.scheduler._fire` entry; decimated to every
    fourth firing to keep the checkpoint cheap), so a run is cancelled
    within a few rule firings of the deadline.
``max_facts``
    A global budget on facts derived.  Enforced at the same
    checkpoints; a run may overshoot by at most a few rule firings'
    worth of facts past the limit before the trip.
``max_delta_rows``
    A global budget on rows entering semi-naive delta frontiers — a
    proxy for the total work recursion has enqueued, which trips
    earlier than ``max_facts`` on programs whose rounds grow
    geometrically.
``max_iterations``
    One **global** bound on fixpoint rounds across the whole run (the
    sum of every unit's rounds under SCC scheduling, identical to the
    monolithic count by construction).  Historically this bound was
    per-unit under SCC scheduling and global under the monolithic
    loop; the governor owns the unified global semantics.
``max_unit_iterations``
    The per-unit knob the old behaviour turned into: bounds the rounds
    of any single evaluation unit (the monolithic loop counts as one
    unit per stratum).

Limits are *cooperative*: the fixpoint loops call the governor at
round, unit, and rule boundaries; the governor never interrupts a
single join mid-flight.  When any thread trips a limit, a shared
cancellation flag makes every other unit abort at its next checkpoint,
and the scheduler merges whatever per-unit statistics were produced
before converting the trip into the configured ``on_limit`` policy:

``"raise"``
    :class:`ResourceExhausted` — an
    :class:`~repro.datalog.errors.EvaluationError` carrying the partial
    :class:`~repro.engine.statistics.EvalStats`, the offending unit
    label, and the stratum index.
``"partial"``
    A best-effort :class:`~repro.engine.evaluator.EvalResult` with
    ``stats.aborted_reason`` set; its answers are a sound **lower
    bound** (bottom-up evaluation only ever adds facts, so every
    derived fact is a true consequence — the run merely stopped before
    deriving all of them).
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from ..datalog.errors import EvaluationError
from .faults import FaultInjector

__all__ = ["Governor", "Guard", "ResourceExhausted", "BudgetExceeded"]


class ResourceExhausted(EvaluationError):
    """A governed evaluation hit one of its resource limits.

    ``reason`` is the limit that tripped (``"deadline"``,
    ``"max_facts"``, ``"max_delta_rows"``, ``"max_iterations"``,
    ``"max_unit_iterations"``); ``stats`` the partial
    :class:`~repro.engine.statistics.EvalStats` at abort (fact counts
    finalized); ``unit`` the label of the evaluation unit that tripped
    the limit (None under the monolithic loop); ``stratum`` the index
    of the stratum being evaluated.
    """

    def __init__(
        self,
        reason: str,
        *,
        stats=None,
        unit: Optional[str] = None,
        stratum: Optional[int] = None,
    ):
        self.reason = reason
        self.stats = stats
        self.unit = unit
        self.stratum = stratum
        where = f" in unit {unit!r}" if unit else ""
        where += f" (stratum {stratum})" if stratum is not None else ""
        super().__init__(f"ResourceExhausted: {reason} limit hit{where}")


class BudgetExceeded(Exception):
    """Internal control-flow signal raised at a governor checkpoint.

    Never escapes :func:`~repro.engine.evaluator.evaluate`, which
    converts it into :class:`ResourceExhausted` or a flagged partial
    result per ``EngineOptions.on_limit``.  Carries the trip context so
    the conversion can say *where* the limit hit.
    """

    def __init__(self, reason: str, unit: Optional[str] = None):
        self.reason = reason
        self.unit = unit
        self.stratum: Optional[int] = None
        super().__init__(reason)


class Governor:
    """Shared, thread-safe budget accounting for one evaluation run.

    Constructed once per :func:`~repro.engine.evaluator.evaluate` call
    from the options' limits and fault plan.  When no limit is set and
    no fault armed, ``enabled`` is False and every checkpoint is a
    single attribute test — the governed engine costs nothing unless
    governing was requested (the <3% overhead claim in EXPERIMENTS.md
    is measured with limits *set but not hit*, the expensive case).
    """

    __slots__ = (
        "deadline",
        "max_facts",
        "max_delta_rows",
        "max_iterations",
        "max_unit_iterations",
        "injector",
        "enabled",
        "_clock",
        "_lock",
        "_iterations",
        "_facts",
        "_delta_rows",
        "_published",
        "_iter_published",
        "_cancelled",
    )

    def __init__(self, opts, injector: Optional[FaultInjector] = None, *, clock=time.monotonic):
        self._clock = clock
        self.deadline = (
            None if opts.deadline_s is None else clock() + opts.deadline_s
        )
        self.max_facts = opts.max_facts
        self.max_delta_rows = opts.max_delta_rows
        self.max_iterations = opts.max_iterations
        self.max_unit_iterations = opts.max_unit_iterations
        self.injector = injector
        self.enabled = injector is not None or any(
            limit is not None
            for limit in (
                self.deadline,
                self.max_facts,
                self.max_delta_rows,
                self.max_iterations,
                self.max_unit_iterations,
            )
        )
        self._lock = threading.Lock()
        self._iterations = 0
        self._facts = 0
        self._delta_rows = 0
        #: id(stats) -> facts_derived already folded into the global
        #: count, so per-unit fragments publish increments, not totals;
        #: entries are popped by :meth:`flush` when a fragment retires
        #: (id() values may be reused by later fragments)
        self._published: dict[int, int] = {}
        #: id(stats) -> iterations already folded into the global count
        self._iter_published: dict[int, int] = {}
        self._cancelled: Optional[str] = None

    def guard(self, *, unit=None, ordinal: Optional[int] = None) -> "Guard":
        """A per-unit (or per-stratum, for the monolithic loop) view."""
        return Guard(self, unit, ordinal)

    # -- accounting (all called with self.enabled known True) ---------------

    def _trip(self, reason: str, unit: Optional[str]) -> None:
        with self._lock:
            if self._cancelled is None:
                self._cancelled = reason
        raise BudgetExceeded(reason, unit)

    def _publish_and_check_facts(self, stats, unit: Optional[str]) -> None:
        """Fold this fragment's fact count into the global total (under
        the lock) and trip ``max_facts`` on the exact value."""
        key = id(stats)
        with self._lock:
            seen = self._published.get(key, 0)
            self._facts += stats.facts_derived - seen
            self._published[key] = stats.facts_derived
            over = self._facts > self.max_facts
        if over:
            self._trip("max_facts", unit)

    def _check_shared(self, stats, unit: Optional[str]) -> None:
        """The checks every checkpoint performs: cross-thread
        cancellation, the deadline, and the global fact budget.

        Lock-free on the no-trip path: the fact-budget test uses this
        fragment's exact local count plus the other fragments' counts
        as of their last publish (an iteration boundary, so at most one
        round stale — within the documented overshoot slack).  Only
        when that estimate crosses the limit does the slow path take
        the lock, fold in the exact count, and re-check, so the trip
        point itself is exact and deterministic for sequential runs.
        """
        stats.governor_checks += 1
        cancelled = self._cancelled
        if cancelled is not None:
            raise BudgetExceeded(cancelled, unit)
        deadline = self.deadline
        if deadline is not None and self._clock() > deadline:
            self._trip("deadline", unit)
        max_facts = self.max_facts
        if max_facts is not None:
            local = stats.facts_derived
            others = self._facts - self._published.get(id(stats), 0)
            if others + local > max_facts:
                self._publish_and_check_facts(stats, unit)

    def iteration_slow(self, stats, unit: Optional[str], ordinal: Optional[int]) -> int:
        """The full iteration-boundary check (:meth:`Guard.iteration`
        is the entry point; it skips this for rounds inside the fast
        window this method returns).

        Performs every round-granularity check — injector hooks, the
        deadline clock, the exact per-unit round bound, the global
        round bound, and the fact-budget estimate — then computes the
        next local round number that needs a full check: the smallest
        of a fixed stride (``_ITER_WINDOW``: bounds deadline latency on
        fire-free rounds and cross-thread staleness), the per-unit
        bound, and the exact remaining global-round headroom.  The
        headroom term is what keeps sequential trip points *exact*:
        with a single live fragment the published global count is
        exact, so the window lands the next full check precisely on the
        first violating round.  Under parallelism sibling fragments may
        consume headroom concurrently, so a trip can be observed up to
        a window late — the same stride-staleness slack the fact budget
        documents.  With an injector armed the window collapses to 0 so
        per-round hooks (``slow-unit``) fire deterministically.
        """
        if self.injector is not None:
            self.injector.slow_down(ordinal)
        stats.governor_checks += 1
        cancelled = self._cancelled
        if cancelled is not None:
            raise BudgetExceeded(cancelled, unit)
        deadline = self.deadline
        if deadline is not None and self._clock() > deadline:
            self._trip("deadline", unit)
        local_iters = stats.iterations
        unit_limit = self.max_unit_iterations
        if unit_limit is not None and local_iters > unit_limit:
            self._trip("max_unit_iterations", unit)
        key = id(stats)
        window = local_iters + _ITER_WINDOW
        if unit_limit is not None:
            window = min(window, unit_limit + 1)
        limit = self.max_iterations
        if limit is not None:
            # publish the exact local count and check the global bound
            # under the lock; finished fragments are fully flushed (see
            # :meth:`flush`), so sequentially the total is exact
            with self._lock:
                self._iterations += (
                    local_iters - self._iter_published.get(key, 0)
                )
                self._iter_published[key] = local_iters
                total = self._iterations
            if total > limit:
                self._trip("max_iterations", unit)
            window = min(window, local_iters + (limit - total) + 1)
        max_facts = self.max_facts
        if max_facts is not None:
            local = stats.facts_derived
            seen = self._published.get(key, 0)
            if self._facts - seen + local > max_facts:
                self._publish_and_check_facts(stats, unit)
            elif local - seen >= _FACT_STRIDE:
                # publish only every ``_FACT_STRIDE`` new local facts,
                # so steady-state rounds stay lock-free (cross-thread
                # estimates are stale by at most the stride per
                # fragment; the exact re-check in the slow path still
                # makes the trip point deterministic)
                with self._lock:
                    self._facts += local - self._published.get(key, 0)
                    self._published[key] = local
        if self.injector is not None:
            return 0
        return window

    def checkpoint(self, stats, unit: Optional[str], ordinal: Optional[int]) -> None:
        """A rule firing is starting (between-rules boundary)."""
        if not self.enabled:
            return
        if self.injector is not None and ordinal is not None:
            self.injector.maybe_unit_error(ordinal, unit or "?")
        self._check_shared(stats, unit)

    def unit_boundary(self, stats, unit: Optional[str], ordinal: Optional[int]) -> None:
        """An evaluation unit is starting (per-unit boundary)."""
        if not self.enabled:
            return
        if self.injector is not None and ordinal is not None:
            self.injector.slow_down(ordinal)
            self.injector.maybe_kill_unit(ordinal, unit or "?")
        self._check_shared(stats, unit)

    def flush(self, stats) -> None:
        """Fold a retiring fragment's counters into the shared totals
        and drop its publish bookkeeping.

        Called when an evaluation unit finishes (success or failure).
        Two jobs: the unflushed tail of the fragment's facts and rounds
        becomes visible to every other thread's lock-free estimate, and
        the ``id(stats)`` keys are forgotten — the object may be freed
        and its id reused by a later fragment, which must start from a
        clean slate, not a dead fragment's publish history.
        """
        if not self.enabled:
            return
        key = id(stats)
        with self._lock:
            self._facts += stats.facts_derived - self._published.pop(key, 0)
            self._iterations += (
                stats.iterations - self._iter_published.pop(key, 0)
            )

    def note_delta(self, stats, rows: int, unit: Optional[str]) -> None:
        """*rows* new frontier rows entered a semi-naive delta.

        (Unbuffered; the hot loops go through :meth:`Guard.note_delta`,
        which batches small rounds before taking the lock.)"""
        if not self.enabled or self.max_delta_rows is None:
            return
        with self._lock:
            self._delta_rows += rows
            over = self._delta_rows > self.max_delta_rows
        if over:
            self._trip("max_delta_rows", unit)


#: publish a fragment's fact count to the shared total once per this
#: many new local facts (when no global round counter forces a per-round
#: lock anyway) — bounds both the locking rate and the cross-thread
#: staleness of the lock-free budget estimates
_FACT_STRIDE = 256

#: flush a guard's buffered delta-row count to the shared total once it
#: reaches this many rows; below it, rounds cost one addition
_DELTA_STRIDE = 1024

#: upper bound on how many fixpoint rounds may pass between full
#: iteration-boundary checks (the fast window
#: :meth:`Governor.iteration_slow` returns) — bounds deadline latency
#: across fire-free rounds and the staleness of the global round count
#: under parallelism; rounds that fire rules are additionally covered
#: by the between-rules checkpoint
_ITER_WINDOW = 8


class Guard:
    """A :class:`Governor` bound to one unit's identity.

    The fixpoint loops receive a guard instead of the raw governor so
    every checkpoint automatically carries the unit label and scheduling
    ordinal that :class:`ResourceExhausted` reports.  The guard also
    owns the per-unit delta-row buffer, so per-round bookkeeping is
    thread-local and lock-free until a stride's worth accumulates.
    """

    __slots__ = (
        "governor", "unit", "ordinal",
        "_delta_pending", "_ticks", "_fast_until", "_last_facts",
    )

    def __init__(self, governor: Governor, unit: Optional[str], ordinal: Optional[int]):
        self.governor = governor
        self.unit = unit
        self.ordinal = ordinal
        self._delta_pending = 0
        self._ticks = 0
        #: the first local round number that needs a full check; 0
        #: forces the slow path on the very first round so zero
        #: deadlines and zero budgets trip before any work happens
        self._fast_until = 0
        #: ``stats.facts_derived`` as of the previous semi-naive round
        #: boundary — the diff is exactly the rows entering this
        #: round's delta frontier (every new fact enters it once), so
        #: the delta-row budget costs one subtraction per round instead
        #: of a sum over the frontier
        self._last_facts = 0

    def iteration(self, stats, delta: Optional[dict] = None) -> None:
        """One fixpoint round is starting.  A semi-naive loop passes
        *delta* (its frontier) on every round after the first; when the
        delta-row budget is armed, the rows entering that frontier —
        computable as the facts derived since the previous boundary —
        are folded into the buffered accounting in the same call.

        Most rounds take the fast path: one counter increment, one
        bounds compare, one read of the cancellation flag.  The full
        check (:meth:`Governor.iteration_slow`) runs only when the
        precomputed window expires — sized so every budget still trips
        at its exact sequential round (see ``iteration_slow``)."""
        g = self.governor
        stats.iterations += 1
        if not g.enabled:
            return
        limit = g.max_delta_rows
        if limit is not None:
            local = stats.facts_derived
            if delta is None:
                # a loop is (re)starting: snapshot, so facts derived
                # outside semi-naive rounds never count as delta rows
                self._last_facts = local
            else:
                # :meth:`note_delta`'s buffered path, inlined: one
                # unlocked addition per round unless a stride fills or
                # the unlocked estimate says the budget may trip
                pending = self._delta_pending + (local - self._last_facts)
                self._last_facts = local
                if g._delta_rows + pending > limit or pending >= _DELTA_STRIDE:
                    self._delta_pending = 0
                    g.note_delta(stats, pending, self.unit)
                else:
                    self._delta_pending = pending
        if stats.iterations < self._fast_until:
            cancelled = g._cancelled
            if cancelled is None:
                return
            raise BudgetExceeded(cancelled, self.unit)
        self._fast_until = g.iteration_slow(stats, self.unit, self.ordinal)

    def checkpoint(self, stats) -> None:
        """The between-rules boundary, decimated: every call observes
        the cross-thread cancellation flag (aborts stay prompt), but
        the full check — deadline clock, fact-budget estimate — runs on
        every fourth firing.  Budgets are therefore enforced within a
        few rule firings rather than exactly one; every *round* still
        gets a full check at its iteration boundary.  With a fault
        injector armed the decimation is bypassed so injected unit
        errors fire at their exact configured ordinal."""
        g = self.governor
        if not g.enabled:
            return
        if g.injector is None:
            t = self._ticks + 1
            self._ticks = t
            if t & 3:
                cancelled = g._cancelled
                if cancelled is not None:
                    raise BudgetExceeded(cancelled, self.unit)
                return
        g.checkpoint(stats, self.unit, self.ordinal)

    def unit_boundary(self, stats) -> None:
        self.governor.unit_boundary(stats, self.unit, self.ordinal)

    def note_delta(self, stats, rows: int) -> None:
        """Buffered delta-row accounting: one unlocked addition per
        round; the shared counter (and its lock) is touched only when
        the buffer reaches a stride or the unlocked estimate says the
        budget is about to trip — at which point the exact flushed
        count decides, so sequential trip points are deterministic."""
        g = self.governor
        limit = g.max_delta_rows
        if limit is None:
            return
        pending = self._delta_pending + rows
        if g._delta_rows + pending > limit or pending >= _DELTA_STRIDE:
            self._delta_pending = 0
            g.note_delta(stats, pending, self.unit)
        else:
            self._delta_pending = pending

    def finish(self, stats) -> None:
        """The unit is done (successfully or not): flush the buffered
        delta rows and the fragment's counters to the shared totals.
        No trip is raised here — a crossed limit is detected by the
        next checkpoint's estimate, which now sees the flushed tail."""
        g = self.governor
        if not g.enabled:
            return
        if self._delta_pending:
            pending, self._delta_pending = self._delta_pending, 0
            with g._lock:
                g._delta_rows += pending
        g.flush(stats)

    def kernel_fault(self, stats, head_predicate: str) -> bool:
        """True iff an injected fault forbids the kernel for this rule
        (the kernel→interpreter degradation); records the degradation
        once per head predicate."""
        injector = self.governor.injector
        if injector is None or not injector.kernel_compile_fails(head_predicate):
            return False
        injector.record(stats, "kernel->interpreter", head_predicate)
        return True

    def columnar_fault(self, stats) -> bool:
        """True iff an injected fault forbids batch kernels (the
        columnar→tuple-kernel degradation); recorded once per run."""
        injector = self.governor.injector
        if injector is None or not injector.columnar_fails():
            return False
        injector.record(stats, "columnar->tuple")
        return True
