"""Prepared programs: analyze/stratify/compile once, evaluate many times.

Every ``evaluate()`` call used to re-derive the same artifacts from the
program text: the dependency analysis, the stratification, and one
:class:`~repro.engine.plan.CompiledRule` (with its naive and delta join
plans) per rule.  For one-shot queries that cost is noise; for an
always-on :class:`~repro.engine.incremental.IncrementalSession` — or a
benchmark loop re-running the same program shape — it is pure overhead
on every invocation.

:func:`prepare` bundles those artifacts into an immutable
:class:`PreparedProgram` and caches it in a bounded process-wide LRU,
keyed by the **canonical program text** (``str(program)`` — rules in
order, negation rendered, query included, and for adorned programs the
adornment is part of every predicate name) together with the
**log-bucketed size signature** the join-order heuristic consumed and
the **cost-model signature** when a cost-based planner ordered the
plans.  Two calls with the same key are guaranteed byte-identical
plans, so a cache hit changes no counter of any evaluation — it only
skips the planning work.  The signatures are part of the key precisely
because plans *depend* on them: caching across different profiles
would silently change join orders mid-differential-test.

Sizes are bucketed (:func:`repro.engine.cost.bucket_size`: powers of
two, representative = bucket maximum) *before* both keying and
planning: the greedy heuristic and the cost model only ever see the
representatives, so two EDBs in the same buckets share one cache entry
*and* provably identical plans.  This is what keeps an always-on serve
session from evicting its prepared plans every time a relation grows
by a handful of rows.

Compiled kernels need no second cache here: they are memoized on each
``CompiledRule`` and globally by generated source text
(:mod:`repro.engine.kernel`), so sharing the compiled rules across
evaluations shares their kernels too — a prepared-cache hit skips
parse-product analysis, planning *and* codegen.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Mapping, Optional

from ..datalog.analysis import DependencyInfo, analyze, stratify
from ..datalog.ast import Program
from ..datalog.errors import ValidationError
from .cost import CostModel, bucket_size
from .plan import CompiledRule, compile_rule

__all__ = [
    "PreparedProgram",
    "prepare",
    "prepared_cache_stats",
    "clear_prepared_cache",
]


@dataclass(frozen=True)
class PreparedProgram:
    """The reusable evaluation artifacts of one program + size profile.

    Everything here is immutable or treated as such; one instance may
    be shared by concurrent evaluations (compiled-rule kernel
    memoization is the only interior mutation and is idempotent).
    """

    program: Program
    #: the cache key this instance was prepared under
    key: tuple
    #: ground facts asserted by body-less program rules, as
    #: ``(predicate, row)`` pairs in rule order — seeded into the
    #: working database before the fixpoint (and after any reset)
    fact_rules: tuple[tuple[str, tuple], ...]
    #: compiled non-fact rules, in program order
    compiled: tuple[CompiledRule, ...]
    info: DependencyInfo
    #: compiled rules grouped by stratum, bottom-up (a single stratum
    #: for negation-free programs)
    strata: tuple[tuple[CompiledRule, ...], ...]
    #: head arities of every predicate occurring in the program
    arities: Mapping[str, int]
    #: rule bodies the cost model's DP search ordered while building
    #: this preparation (0 under the greedy planner).  Recorded here —
    #: not on the run — so a cache hit reports the same
    #: ``stats.plans_costed`` as the cold build it reuses: hits are
    #: bit-identical in every counter.
    plans_costed: int = 0

    def idb_predicates(self) -> frozenset[str]:
        return self.info.idb


def bucketed_sizes(sizes: Optional[Mapping[str, int]]) -> Optional[dict]:
    """*sizes* with every count replaced by its bucket representative —
    the only size view planning (greedy or cost-based) ever consumes."""
    if sizes is None:
        return None
    return {p: bucket_size(n) for p, n in sizes.items()}


def program_key(
    program: Program,
    sizes: Optional[Mapping[str, int]],
    cost_signature: tuple = (),
) -> tuple:
    """The cache key: canonical text, log-bucketed size signature, and
    the planner's cost-model signature (``()`` for pure greedy)."""
    size_sig = (
        tuple(sorted((p, bucket_size(n)) for p, n in sizes.items()))
        if sizes
        else ()
    )
    return (str(program), size_sig, cost_signature)


_CACHE: "OrderedDict[tuple, PreparedProgram]" = OrderedDict()
_CACHE_LOCK = threading.Lock()
_CACHE_MAX = 256
_HITS = 0
_MISSES = 0


def _build(
    program: Program,
    sizes: Optional[Mapping[str, int]],
    key: tuple,
    cost_model: Optional[CostModel] = None,
) -> PreparedProgram:
    fact_rules: list[tuple[str, tuple]] = []
    compiled: list[CompiledRule] = []
    rep_sizes = bucketed_sizes(sizes)
    for i, r in enumerate(program.rules):
        if not r.body:
            if not r.head.is_ground():
                raise ValidationError(f"unsafe fact rule: {r}")
            fact_rules.append((r.head.predicate, r.head.as_fact()))
            continue
        compiled.append(compile_rule(r, i, sizes=rep_sizes, cost_model=cost_model))
    info = analyze(program)
    if program.has_negation():
        layers = stratify(program, info)
        index = {p: i for i, layer in enumerate(layers) for p in layer}
        grouped: dict[int, list[CompiledRule]] = {}
        for cr in compiled:
            grouped.setdefault(index[cr.rule.head.predicate], []).append(cr)
        strata = tuple(
            tuple(grouped.get(i, [])) for i in range(len(layers))
        )
    else:
        strata = (tuple(compiled),) if compiled else ()
    return PreparedProgram(
        program=program,
        key=key,
        fact_rules=tuple(fact_rules),
        compiled=tuple(compiled),
        info=info,
        strata=strata,
        arities=dict(program.arities()),
        plans_costed=getattr(cost_model, "plans_costed", 0),
    )


def prepare(
    program: Program,
    sizes: Optional[Mapping[str, int]] = None,
    *,
    cost_model: Optional[CostModel] = None,
    use_cache: bool = True,
) -> PreparedProgram:
    """Return the (possibly cached) :class:`PreparedProgram`.

    *sizes* is the relation-size profile fed to the join-order
    heuristic, exactly as :func:`~repro.engine.evaluator.evaluate`
    computes it (IDB predicates bumped past the largest stored
    relation); planning consumes its bucket representatives, never the
    exact counts.  *cost_model*, when given, orders rule bodies
    (:mod:`repro.engine.cost`) and contributes its signature — which
    captures every profile the model plans from — to the cache key.  A
    hit returns plans identical to a fresh compile under the same key,
    so cached and uncached evaluations are bit-identical in every
    counter.
    """
    cost_sig = cost_model.signature() if cost_model is not None else ()
    key = program_key(program, sizes, cost_sig)
    global _HITS, _MISSES
    if use_cache:
        with _CACHE_LOCK:
            cached = _CACHE.get(key)
            if cached is not None:
                _CACHE.move_to_end(key)
                _HITS += 1
                return cached
    prepared = _build(program, sizes, key, cost_model=cost_model)
    if use_cache:
        with _CACHE_LOCK:
            if key in _CACHE:
                # a concurrent prepare won the race; keep its instance
                # so kernel memoization accumulates on one object
                _HITS += 1
                return _CACHE[key]
            _MISSES += 1
            _CACHE[key] = prepared
            while len(_CACHE) > _CACHE_MAX:
                _CACHE.popitem(last=False)
    return prepared


def prepared_cache_stats() -> dict:
    """Cache occupancy and hit/miss counters (for tests and benches)."""
    with _CACHE_LOCK:
        return {"entries": len(_CACHE), "hits": _HITS, "misses": _MISSES}


def clear_prepared_cache() -> None:
    """Drop every cached preparation and reset the counters."""
    global _HITS, _MISSES
    with _CACHE_LOCK:
        _CACHE.clear()
        _HITS = 0
        _MISSES = 0
