"""Fixpoint loops and the SCC-condensation component scheduler.

The paper's Phase 1 (section 3.1, Lemma 3.1) splits rule bodies into
connected components because disconnected boolean subqueries are
*independent* computations: each can be retired the moment it fires.
The evaluation-side counterpart implemented here applies the same idea
to the predicate dependency graph.  Instead of running every
negation-stratum as one monolithic semi-naive fixpoint — where a cheap
non-recursive rule keeps re-entering rounds alongside the most
expensive recursive predicate of its stratum — the stratum's rules are
partitioned into **evaluation units**, one per strongly connected
component of the dependency graph, and the units are scheduled over
the SCC condensation DAG in topological order:

- a **non-recursive** unit (a single predicate that does not depend on
  itself) runs as a single naive pass: all its inputs are complete by
  the time it is scheduled, so one pass reaches its fixpoint;
- a **recursive** unit runs its own semi-naive fixpoint over only its
  member rules, with delta specialization restricted to the unit's own
  predicates (everything else is frozen input);
- units at the same condensation depth have no dependency path between
  them, so they may execute **concurrently** (``EngineOptions.parallel``)
  — each unit writes only its own head relations, reads lower units'
  relations that no longer change, and keeps private statistics merged
  at a per-depth barrier in deterministic unit order;
- **component-local retirement** generalizes the boolean cut: when a
  unit's head predicates are all cut predicates and each has fired,
  the whole unit — not just individual rules — terminates, including
  mid-fixpoint with deltas still pending.

``run_monolithic`` preserves the previous per-stratum loop verbatim
(the CLI's ``--no-scc``); every ``EvalStats`` counter it produces is
bit-identical to the pre-scheduler engine, which keeps it available as
the differential oracle for the scheduler itself.

Both loops are *governed*: they accept a
:class:`~repro.engine.governor.Governor` whose cooperative checkpoints
run at iteration boundaries, per-unit boundaries, and between rule
firings.  With no limits configured the governor is disabled and every
checkpoint is a single attribute test, keeping the ungoverned hot path
unchanged.  Failure handling under scheduling is structured: a unit
that raises — a tripped budget, an injected fault, or a genuine bug —
has its exception *captured*, its partial statistics and provenance
merged at the depth barrier like any other unit's, and the first
failure in deterministic unit order re-raised afterwards (recoverable
:class:`~repro.engine.faults.WorkerDeath` faults are instead retried
sequentially — the parallel→sequential degradation rung).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Optional

try:  # numpy is optional; without it the vectorized path never engages
    import numpy as _np
except Exception:  # pragma: no cover - environment without numpy
    _np = None

from ..datalog.analysis import (
    DependencyInfo,
    component_depths,
    condensation,
    is_recursive_component,
)
from ..datalog.builtins import eval_builtin
from ..datalog.database import Database
from ..datalog.terms import Constant
from .batch_kernel import (
    batch_cold_debt,
    batch_rule_kernel,
    unpack_rows,
    vector_rule_kernel,
)

#: encode debt (rows to re-intern) above which a one-shot (naive-plan)
#: firing skips the batch tier for the tuple kernel: recursive delta
#: firings amortize the encode across rounds, a single firing cannot
_COLD_DEBT_LIMIT = 4096
from .cost import AdaptiveReplanner
from .faults import SchedulerFault, WorkerDeath
from .governor import BudgetExceeded, Governor, Guard
from .kernel import rule_kernel
from .plan import CompiledRule, DeltaIndex, match_plan, replan_delta_plans
from .provenance import Justification
from .statistics import EvalStats

__all__ = [
    "EvalUnit",
    "build_units",
    "run_monolithic",
    "run_scheduled",
    "run_seeded_unit",
]


# ---------------------------------------------------------------------------
# rule firing (shared by every loop)
# ---------------------------------------------------------------------------


def _fire(
    cr: CompiledRule,
    plan_id: Optional[int],
    db: Database,
    stats: EvalStats,
    provenance: dict,
    opts,
    added: dict[str, set],
    delta: Optional[DeltaIndex] = None,
    guard: Optional[Guard] = None,
) -> None:
    """Run one plan of one rule, inserting new head facts.

    *plan_id* selects the naive plan (``None``) or the delta plan
    starting at relational literal *plan_id*.  With
    ``opts.use_kernels`` the plan runs as a compiled kernel (built-ins,
    negation, and head construction are inside the kernel body); the
    interpreter below is the fallback and the differential oracle.

    *guard* is the governor's per-unit view: its checkpoint here is
    the between-rules cancellation boundary (deadline / fact budget /
    cross-thread cancel), and it decides the kernel→interpreter
    degradation when a kernel-compile fault is injected.
    """
    head_pred = cr.rule.head.predicate
    rel = db.relation(head_pred)
    assert rel is not None
    if guard is not None:
        guard.checkpoint(stats)
    use_kernels = opts.use_kernels
    injector_armed = guard is not None and guard.governor.injector is not None
    if use_kernels and injector_armed and guard.kernel_fault(stats, head_pred):
        # a kernel-compile fault fails the whole codegen tier: batch
        # kernels ride on it, so both fall to the interpreter
        use_kernels = False
    if use_kernels and getattr(opts, "use_columnar", True) and not opts.record_provenance:
        if injector_armed and guard.columnar_fault(stats):
            stats.columnar_fallbacks += 1
        else:
            vkernel = vector_rule_kernel(cr, plan_id, use_indexes=opts.use_indexes)
            if vkernel is not None:
                packed = vkernel(db, stats, delta)
                if packed is not None:
                    # the vectorized fast path committed (it charges
                    # the same counters as the batch kernel would)
                    stats.kernel_launches += 1
                    if len(packed):
                        _absorb_packed(rel, head_pred, packed, stats, added)
                    return
            bkernel = batch_rule_kernel(cr, plan_id, use_indexes=opts.use_indexes)
            if bkernel is None:
                # order-dependent shape: this rule runs on the tuple
                # kernel (the columnar→tuple degradation-ladder rung)
                stats.columnar_fallbacks += 1
            elif plan_id is None and (
                batch_cold_debt(cr, None, db, use_indexes=opts.use_indexes)
                > _COLD_DEBT_LIMIT
            ):
                # one-shot firing over cold encodings: the tuple kernel
                # reads the raw structures directly, dodging the encode
                # debt; counters are identical on either rung
                stats.columnar_fallbacks += 1
            else:
                stats.kernel_launches += 1
                produced = bkernel(db, stats, delta)
                if produced:
                    _absorb_batch(rel, head_pred, produced, stats, added)
                return
    cur = added.get(head_pred)
    if type(cur) is PackedDelta:
        # falling to a row-at-a-time tier: materialize the packed
        # frontier a sibling rule's vectorized absorb left this round
        added[head_pred] = set(cur)
    if use_kernels:
        kernel = rule_kernel(
            cr,
            plan_id,
            use_indexes=opts.use_indexes,
            record_rows=opts.record_provenance,
        )
        if kernel is not None:
            stats.kernel_launches += 1
            new = added.get(head_pred)
            if opts.record_provenance:
                for values, body_rows in kernel(db, stats, delta):
                    if rel.add(values):
                        stats.facts_derived += 1
                        if new is None:
                            new = added.setdefault(head_pred, set())
                        new.add(values)
                        body = tuple(
                            (atom.predicate, row)
                            for atom, row in zip(cr.relational_body, body_rows)
                        )
                        provenance[(head_pred, values)] = Justification(
                            cr.rule_index, body
                        )
                    else:
                        stats.duplicates += 1
            else:
                for values in kernel(db, stats, delta):
                    if rel.add(values):
                        stats.facts_derived += 1
                        if new is None:
                            new = added.setdefault(head_pred, set())
                        new.add(values)
                    else:
                        stats.duplicates += 1
            return
    plans = cr.plan if plan_id is None else cr.delta_plans[plan_id]
    for subst, body_rows in match_plan(
        plans, db, stats, delta_rows=delta, use_indexes=opts.use_indexes
    ):
        if cr.builtins and not _builtins_hold(cr, subst):
            continue
        if cr.rule.negative and not _negatives_hold(cr, db, subst, stats):
            continue
        stats.rule_firings += 1
        values = cr.head_values(subst)
        if rel.add(values):
            stats.facts_derived += 1
            added.setdefault(head_pred, set()).add(values)
            if opts.record_provenance:
                body = tuple(
                    (atom.predicate, row)
                    for atom, row in zip(cr.relational_body, body_rows)
                )
                provenance[(head_pred, values)] = Justification(cr.rule_index, body)
        else:
            stats.duplicates += 1


class PackedDelta:
    """One predicate's round frontier kept packed (int64 per row).

    The vectorized absorb path appends each rule's fresh chunk in
    derivation order; the next round's :meth:`DeltaIndex.from_packed`
    consumes the concatenation directly, so a fully vectorized fixpoint
    never materializes frontier tuples.  Iteration decodes — the escape
    hatch for raw consumers (seeded-unit propagation, mixed-tier
    rounds).
    """

    __slots__ = ("relation", "chunks")

    def __init__(self, relation):
        self.relation = relation
        self.chunks: list = []

    def __len__(self) -> int:
        return sum(len(c) for c in self.chunks)

    def __iter__(self):
        return iter(self.relation.decode_packed(self.packed()))

    def packed(self):
        chunks = self.chunks
        return chunks[0] if len(chunks) == 1 else _np.concatenate(chunks)


def _frontier(rows) -> DeltaIndex:
    """Wrap one predicate's round frontier as a DeltaIndex, keeping a
    packed frontier packed."""
    if type(rows) is PackedDelta:
        return DeltaIndex.from_packed(rows.packed(), rows.relation)
    return DeltaIndex(rows)


def _absorb_packed(rel, head_pred, produced, stats, added) -> None:
    """Insert a vectorized kernel's packed head rows.

    Mirrors :func:`_absorb_batch` in id space, one level down, with no
    per-row python: ``np.unique`` performs in-batch first-occurrence
    dedup (its index array restores production order, which equals
    tuple-kernel yield order), membership is a Bloom prefilter backed
    by precise probes of the relation's sorted packed runs
    (:meth:`Relation.packed_novel_mask`), and the fresh rows enter
    the relation deferred (:meth:`Relation.add_packed_deferred`) and
    the frontier packed (:class:`PackedDelta`).  When runs are
    unavailable (a constant id past the packing bound), the rows are
    unpacked and handed to the tuple-at-a-time absorb unchanged.
    """
    if rel.packed_runs() is None:
        _absorb_batch(
            rel, head_pred, unpack_rows(produced, rel.arity), stats, added
        )
        return
    n = len(produced)
    uniq = _np.sort(produced)
    first = None
    if n > 1 and not (uniq[1:] != uniq[:-1]).all():
        # in-batch duplicates: redo with the (costlier) index form so
        # first-occurrence order can be restored below
        uniq, first = _np.unique(produced, return_index=True)
    mask = rel.packed_novel_mask(uniq)
    k = int(mask.sum())
    stats.duplicates += n - k
    if not k:
        return
    stats.facts_derived += k
    fresh_sorted = uniq[mask]
    if k == n:
        fresh_ordered = produced
    elif first is None:
        # no in-batch dups: order within the round is production order,
        # so dropping the already-known rows keeps it
        fresh_ordered = produced[mask[uniq.searchsorted(produced)]]
    else:
        fresh_ordered = produced[_np.sort(first[mask])]
    rel.add_packed_deferred(fresh_ordered, fresh_sorted)
    cur = added.get(head_pred)
    if cur is None:
        added[head_pred] = cur = PackedDelta(rel)
        cur.chunks.append(fresh_ordered)
    elif type(cur) is PackedDelta:
        cur.chunks.append(fresh_ordered)
    else:
        # a row-at-a-time tier already left a raw frontier set for this
        # predicate this round; join it
        cur.update(rel.decode_packed(fresh_ordered))


def _absorb_batch(rel, head_pred, produced, stats, added) -> None:
    """Insert a batch kernel's encoded head tuples.

    Deduplication happens entirely in id space: ``dict.fromkeys``
    uniquifies preserving first-occurrence order (= tuple-kernel yield
    order), the store's row set drops already-known facts, and only
    the genuinely new rows are decoded and inserted — in order, so raw
    set insertion history and index posting order stay bit-identical
    to the per-yield tuple path.
    """
    store = rel.column_store()
    row_set = store.row_set
    fresh = [enc for enc in dict.fromkeys(produced) if enc not in row_set]
    stats.duplicates += len(produced) - len(fresh)
    if not fresh:
        return
    stats.facts_derived += len(fresh)
    rows = rel.add_encoded_batch(fresh)
    cur = added.get(head_pred)
    if cur is None:
        cur = added[head_pred] = set()
    elif type(cur) is PackedDelta:
        # a vectorized absorb left this predicate's round frontier
        # packed; materialize it once and continue raw
        cur = added[head_pred] = set(cur)
    cur.update(rows)


def _builtins_hold(cr: CompiledRule, subst: dict) -> bool:
    """Evaluate the rule's comparison built-ins under a complete match."""
    for atom in cr.builtins:
        a, b = (
            t.value if isinstance(t, Constant) else subst[t] for t in atom.args
        )
        if not eval_builtin(atom.predicate, a, b):
            return False
    return True


def _negatives_hold(cr: CompiledRule, db: Database, subst: dict, stats: EvalStats) -> bool:
    """Check the negated literals of a rule under a complete positive
    match.  Safety guarantees every variable is bound; stratification
    guarantees the referenced relation is complete."""
    for atom in cr.rule.negative:
        rel = db.relation(atom.predicate)
        stats.join_probes += 1
        if rel is None:
            continue  # empty relation: the negation holds
        key = tuple(
            a.value if isinstance(a, Constant) else subst[a] for a in atom.args
        )
        if key in rel:
            return False
    return True


class _Retirer:
    """Removes satisfied boolean (cut) rules from the active set.

    Constructed per stratum by the monolithic loop and per *unit* by
    the scheduler.  With *unit_heads* given and all of them cut
    predicates, :meth:`unit_satisfied` reports when the whole unit is
    complete (every head boolean has fired) — the component-local
    generalization of rule retirement.  Rule retirements are counted at
    most once per rule, so mid-loop filtering and end-of-unit
    retirement compose without double counting.
    """

    def __init__(
        self,
        cut_predicates: frozenset[str],
        stats: EvalStats,
        unit_heads: Optional[frozenset[str]] = None,
    ):
        self._cut = cut_predicates
        self._stats = stats
        self._retired_ids: set[int] = set()
        self._unit_heads = unit_heads
        self._unit_cut = bool(unit_heads) and unit_heads <= cut_predicates

    def filter(self, rules: list[CompiledRule], db: Database) -> list[CompiledRule]:
        if not self._cut:
            return rules
        keep = []
        for cr in rules:
            head = cr.rule.head.predicate
            if head in self._cut and db.rows(head):
                self._mark(cr)
            else:
                keep.append(cr)
        return keep

    def unit_satisfied(self, db: Database) -> bool:
        """True iff this retirer guards a unit whose head predicates are
        all cut predicates and every one of them has fired — the unit's
        relations are then complete and the unit can stop mid-fixpoint."""
        if not self._unit_cut:
            return False
        return all(db.rows(h) for h in self._unit_heads)

    def retire_all(self, rules) -> None:
        """Mark every rule of a satisfied cut unit as retired (idempotent)."""
        for cr in rules:
            self._mark(cr)

    def _mark(self, cr: CompiledRule) -> None:
        if id(cr) not in self._retired_ids:
            self._retired_ids.add(id(cr))
            self._stats.rules_retired += 1


# ---------------------------------------------------------------------------
# fixpoint loops
# ---------------------------------------------------------------------------


def _naive_loop(active, db, stats, provenance, opts, retire, guard) -> None:
    while True:
        guard.iteration(stats)
        added: dict[str, set] = {}
        for cr in active:
            _fire(cr, None, db, stats, provenance, opts, added, guard=guard)
        active = retire.filter(active, db)
        if not any(added.values()):
            return
        if retire.unit_satisfied(db):
            # component-local cut: the unit's booleans are all true, so
            # its relations are complete even though the last round
            # still derived facts
            stats.unit_early_exits += 1
            return


def _seminaive_loop(
    active, db, stats, provenance, opts, retire, guard,
    recursive: Optional[frozenset] = None,
    replan_rounds: int = 0,
) -> None:
    # Specialize each rule once per *recursive* literal — a body
    # position whose predicate can still change while this loop runs.
    # The monolithic stratum loop passes no set and conservatively uses
    # every head predicate of the stratum (including boolean cut rules
    # that may retire later: their facts still arrive as deltas); the
    # component scheduler passes the unit's own SCC members, so
    # literals over sibling components — frozen inputs here — never
    # seed a delta body and the rule is never re-scanned for them.
    if recursive is None:
        recursive = {cr.rule.head.predicate for cr in active}
    specializations = [
        (cr, cr.delta_literals(recursive)) for cr in active
    ]
    replanner = (
        AdaptiveReplanner(replan_rounds, frozenset(recursive))
        if replan_rounds
        else None
    )
    # everything this loop may re-profile: its own writes plus frozen
    # inputs.  Sibling units' relations are excluded — under parallel
    # scheduling they are being written concurrently, and this loop
    # never reads them anyway.
    replan_scope = (
        frozenset(recursive)
        | {a.predicate for cr in active for a in cr.relational_body}
        if replanner is not None
        else frozenset()
    )

    # First round is naive: it also accounts for initial IDB facts,
    # which uniform-equivalence inputs may contain.
    guard.iteration(stats)
    delta: dict[str, set] = {}
    for cr in active:
        _fire(cr, None, db, stats, provenance, opts, delta, guard=guard)
    active = retire.filter(active, db)

    alive = set(map(id, active))
    while any(delta.values()):
        if retire.unit_satisfied(db):
            # component-local cut: deltas are pending but every head
            # boolean of the unit has fired, so further rounds can only
            # rediscover facts nobody will read
            stats.unit_early_exits += 1
            return
        guard.iteration(stats, delta)
        # One shared DeltaIndex per changed predicate: every rule
        # specialization probing that frontier this round reuses the
        # same lazily built position groupings.
        previous = {p: _frontier(rows) for p, rows in delta.items() if rows}
        if replanner is not None:
            # Adaptive replanning: fold this round's true frontier
            # cardinalities into the decayed estimates; every
            # `replan_rounds` rounds, re-rank the delta plans from the
            # grown relations' fresh profiles.  Frontier sizes and
            # stored facts are bit-identical across every execution
            # tier, so all tiers replan identically; join order changes
            # work counters only, never answers or fact counts.
            replanner.observe({p: len(f) for p, f in previous.items()})
            if replanner.overestimate_max > stats.bound_overestimate_max:
                stats.bound_overestimate_max = replanner.overestimate_max
            if replanner.due():
                # None = every profile is still in its last bucket, so
                # the DP would reproduce the current orders; the skip
                # is tier-invariant (sizes only), so counters agree
                model = replanner.model_for(db, replan_scope)
            else:
                model = None
            if model is not None:
                stats.replans += 1
                renewed = [replan_delta_plans(cr, model) for cr in active]
                stats.plans_costed += model.plans_costed
                if any(new is not old for new, old in zip(renewed, active)):
                    active = renewed
                    specializations = [
                        (cr, cr.delta_literals(recursive)) for cr in active
                    ]
                    alive = set(map(id, active))
        delta = {}
        for cr, delta_literals in specializations:
            if id(cr) not in alive:
                continue
            for i, predicate in delta_literals:
                frontier = previous.get(predicate)
                if frontier is None:
                    continue
                _fire(
                    cr,
                    i,
                    db,
                    stats,
                    provenance,
                    opts,
                    delta,
                    delta=frontier,
                    guard=guard,
                )
        active = retire.filter(active, db)
        alive = set(map(id, active))


def _single_pass(active, db, stats, provenance, opts, retire, guard) -> None:
    """One naive pass over a non-recursive unit's rules.

    Every input relation is complete when the unit is scheduled and the
    head predicate does not occur in any of its own bodies, so one pass
    reaches the unit's fixpoint — no delta rounds, no final empty
    verification round, and no ``iterations`` charge: the pass is
    straight-line code outside any fixpoint loop, which is the point of
    scheduling non-recursive rules separately (``max_iterations`` only
    bounds loops that could diverge).  Cut units additionally stop
    between rules once every head boolean has fired (the remaining
    rules are retired unfired).
    """
    added: dict[str, set] = {}
    for fired, cr in enumerate(active):
        if fired and retire.unit_satisfied(db):
            stats.unit_early_exits += 1
            retire.retire_all(active)
            return
        _fire(cr, None, db, stats, provenance, opts, added, guard=guard)


def run_seeded_unit(
    unit: "EvalUnit",
    db: Database,
    stats: EvalStats,
    provenance: dict,
    opts,
    guard: Guard,
    seeds: dict[str, set],
    out: Optional[dict[str, set]] = None,
) -> dict[str, set]:
    """Resume one evaluation unit's fixpoint from a seed frontier.

    This is incremental maintenance's entry point into the semi-naive
    machinery (:mod:`repro.engine.incremental`): *seeds* maps
    predicates to rows that are **already inserted** into *db* but have
    not yet been propagated through this unit's rules.  The first round
    fires every delta specialization whose literal predicate is seeded
    (full relations already contain the new rows, so old–new and
    new–new combinations are both covered); subsequent rounds are the
    unit's ordinary member-delta fixpoint.  A non-recursive unit simply
    has nothing to do after the seeded round.

    Every row added to a head relation is folded into *out* (created if
    None) and returned — the caller's frontier for downstream units.
    Passing the same *out* on a retry after a recoverable fault, with
    the already-added rows merged back into *seeds*, makes the retry
    complete exactly the interrupted pass (re-derivations are
    duplicates, and rows added before the fault re-enter the frontier).

    Seeded runs never replan adaptively: maintenance frontiers are
    typically tiny, and keeping the session's prepared plans fixed
    keeps repeat maintenance passes byte-comparable — the cost planner
    still ordered the plans at prepare time.
    """
    if out is None:
        out = {}
    retire = _Retirer(opts.cut_predicates, stats, unit_heads=unit.heads)
    guard.unit_boundary(stats)
    active = retire.filter(list(unit.rules), db)
    if not active:
        return out

    changed = frozenset(p for p, rows in seeds.items() if rows) | unit.members
    seeded_spec = [(cr, cr.delta_literals(changed)) for cr in active]
    member_spec = {
        id(cr): cr.delta_literals(unit.members) for cr in active
    }

    guard.iteration(stats)
    previous = {p: _frontier(rows) for p, rows in seeds.items() if rows}
    delta: dict[str, set] = {}
    for cr, delta_literals in seeded_spec:
        for i, predicate in delta_literals:
            frontier = previous.get(predicate)
            if frontier is None:
                continue
            _fire(
                cr, i, db, stats, provenance, opts, delta,
                delta=frontier, guard=guard,
            )
    for p, rows in delta.items():
        if rows:
            out.setdefault(p, set()).update(rows)
    active = retire.filter(active, db)
    alive = set(map(id, active))

    while any(delta.values()):
        if retire.unit_satisfied(db):
            stats.unit_early_exits += 1
            break
        guard.iteration(stats, delta)
        previous = {p: _frontier(rows) for p, rows in delta.items() if rows}
        delta = {}
        for cr in active:
            if id(cr) not in alive:
                continue
            for i, predicate in member_spec[id(cr)]:
                frontier = previous.get(predicate)
                if frontier is None:
                    continue
                _fire(
                    cr, i, db, stats, provenance, opts, delta,
                    delta=frontier, guard=guard,
                )
        for p, rows in delta.items():
            if rows:
                out.setdefault(p, set()).update(rows)
        active = retire.filter(active, db)
        alive = set(map(id, active))
    if retire.unit_satisfied(db):
        retire.retire_all(unit.rules)
    return out


# ---------------------------------------------------------------------------
# the monolithic per-stratum loop (--no-scc)
# ---------------------------------------------------------------------------


def run_monolithic(
    strata, db, stats, provenance, opts, governor=None, replan_rounds: int = 0
) -> None:
    """Evaluate each stratum as one fixpoint over all its rules.

    This is the pre-scheduler engine, kept verbatim: with
    ``use_scc=False`` and no governor limits every counter is
    bit-identical to the previous releases, which makes this loop the
    differential oracle for :func:`run_scheduled`.  The whole loop is
    one "unit" per stratum as far as the governor is concerned, so
    ``max_iterations`` (global) and ``max_unit_iterations`` coincide
    here — both bound ``stats.iterations``.
    """
    governor = governor if governor is not None else Governor(opts)
    guard = governor.guard()
    retire = _Retirer(opts.cut_predicates, stats)
    for stratum_index, stratum_rules in enumerate(strata):
        active = retire.filter(stratum_rules, db)
        if not active:
            continue
        try:
            if opts.strategy == "naive":
                _naive_loop(active, db, stats, provenance, opts, retire, guard)
            else:
                _seminaive_loop(active, db, stats, provenance, opts, retire,
                                guard, replan_rounds=replan_rounds)
        except BudgetExceeded as exc:
            if exc.stratum is None:
                exc.stratum = stratum_index
            raise


# ---------------------------------------------------------------------------
# the SCC-condensation scheduler
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EvalUnit:
    """One schedulable evaluation unit: the rules of one SCC.

    ``members`` are the SCC's predicates (the delta-specialization set
    for recursive units); ``heads`` the subset actually heading rules
    in this stratum; ``depth`` the unit's layer in the condensation of
    its stratum — units sharing a depth have no dependency path between
    them and may run concurrently.
    """

    index: int
    depth: int
    members: frozenset[str]
    heads: frozenset[str]
    rules: tuple[CompiledRule, ...]
    recursive: bool

    @property
    def label(self) -> str:
        return "+".join(sorted(self.members))


def build_units(stratum_rules, info: DependencyInfo, edges, component_of) -> list[EvalUnit]:
    """Partition one stratum's compiled rules into topologically
    ordered evaluation units (deterministic: depth, then SCC index)."""
    groups: dict[int, list[CompiledRule]] = {}
    for cr in stratum_rules:
        groups.setdefault(component_of[cr.rule.head.predicate], []).append(cr)
    depths = component_depths(edges, groups)
    units = []
    for ci in sorted(groups, key=lambda c: (depths[c], c)):
        rules = tuple(groups[ci])
        scc = info.sccs[ci]
        units.append(
            EvalUnit(
                index=ci,
                depth=depths[ci],
                members=scc,
                heads=frozenset(cr.rule.head.predicate for cr in rules),
                rules=rules,
                recursive=is_recursive_component(scc, info.graph),
            )
        )
    return units


def _run_unit(
    unit: EvalUnit, db: Database, opts, guard: Guard, replan_rounds: int = 0
) -> tuple[EvalStats, dict, Optional[Exception]]:
    """Evaluate one unit to its local fixpoint.

    Returns the unit's private statistics, provenance fragment, and —
    instead of letting it escape the worker thread — any exception the
    unit raised; the caller merges stats and provenance at the depth
    barrier in unit order and re-raises the first captured failure, so
    a dying unit can never deadlock the barrier or swallow its error,
    and its partial counters stay mergeable.  Thread-safety contract:
    the unit writes only the relations of its own head predicates;
    every other relation it touches is read-only for the duration of
    its depth level (lazy index builds on shared relations are
    serialized inside :class:`~repro.datalog.database.Relation`).
    """
    stats = EvalStats()
    provenance: dict = {}
    failure: Optional[Exception] = None
    retire = _Retirer(opts.cut_predicates, stats, unit_heads=unit.heads)
    try:
        guard.unit_boundary(stats)
        active = retire.filter(list(unit.rules), db)
        if active:
            if not unit.recursive:
                _single_pass(active, db, stats, provenance, opts, retire, guard)
            elif opts.strategy == "naive":
                _naive_loop(active, db, stats, provenance, opts, retire, guard)
            else:
                _seminaive_loop(
                    active, db, stats, provenance, opts, retire, guard,
                    recursive=unit.members, replan_rounds=replan_rounds,
                )
        if retire.unit_satisfied(db):
            retire.retire_all(unit.rules)
    except Exception as exc:  # captured, not raised: the barrier decides
        failure = exc
    finally:
        # make the fragment's unflushed counters visible to the other
        # threads' budget estimates and retire its publish bookkeeping
        # (the stats object's id may be reused by a later fragment)
        guard.finish(stats)
    return stats, provenance, failure


def _merge_unit(stats, provenance, unit, unit_stats, unit_prov) -> None:
    """Fold one unit execution's private results into the run totals."""
    stats.units_scheduled += 1
    stats.unit_rounds[unit.label] = (
        stats.unit_rounds.get(unit.label, 0) + unit_stats.iterations
    )
    stats.merge(unit_stats)
    provenance.update(unit_prov)


def run_scheduled(
    strata, info: DependencyInfo, db, stats, provenance, opts, governor=None,
    replan_rounds: int = 0,
) -> None:
    """Evaluate every stratum as a topologically scheduled DAG of units.

    Units at the same condensation depth are independent; with
    ``opts.parallel > 1`` they run on a shared thread pool.  Results
    (statistics, provenance) are merged at the per-depth barrier in
    deterministic unit order, so per-unit counters are identical run to
    run regardless of thread interleaving.

    Failure protocol (see :func:`_run_unit`): exceptions raised inside
    units arrive at the barrier as captured values.  Every unit's
    partial statistics are merged first; then a recoverable
    :class:`~repro.engine.faults.WorkerDeath` triggers a sequential
    re-run of the dead unit (sound because rule firing is monotone and
    idempotent — re-deriving an already-inserted fact is a duplicate,
    not an error), and any other failure — a governor trip or a
    genuine error — is re-raised in unit order, original exception
    object intact.
    """
    governor = governor if governor is not None else Governor(opts)
    injector = governor.injector
    if injector is not None and injector.scheduler_fails():
        raise SchedulerFault("injected SCC scheduling failure")
    edges = condensation(info)
    component_of = {p: i for i, scc in enumerate(info.sccs) for p in scc}
    executor: Optional[ThreadPoolExecutor] = None
    ordinal = 0  # unit executions across the whole run, scheduling order
    try:
        for stratum_index, stratum_rules in enumerate(strata):
            if not stratum_rules:
                continue
            units = build_units(stratum_rules, info, edges, component_of)
            by_depth: dict[int, list[EvalUnit]] = {}
            for unit in units:
                by_depth.setdefault(unit.depth, []).append(unit)
            for depth in sorted(by_depth):
                batch = by_depth[depth]
                guards = []
                for unit in batch:
                    guards.append(governor.guard(unit=unit.label, ordinal=ordinal))
                    ordinal += 1
                if opts.parallel > 1 and len(batch) > 1:
                    if executor is None:
                        executor = ThreadPoolExecutor(max_workers=opts.parallel)
                    futures = [
                        executor.submit(
                            _run_unit, unit, db, opts, guard, replan_rounds
                        )
                        for unit, guard in zip(batch, guards)
                    ]
                    results = [f.result() for f in futures]
                    stats.units_parallel += len(batch)
                else:
                    results = [
                        _run_unit(unit, db, opts, guard, replan_rounds)
                        for unit, guard in zip(batch, guards)
                    ]
                # barrier: merge in unit order (deterministic), head
                # predicates are disjoint across units so provenance
                # fragments never collide; failures are handled after
                # every unit's partial stats are in
                pending: Optional[Exception] = None
                for unit, guard, (unit_stats, unit_prov, failure) in zip(
                    batch, guards, results
                ):
                    _merge_unit(stats, provenance, unit, unit_stats, unit_prov)
                    if isinstance(failure, WorkerDeath):
                        # parallel→sequential rung: the fault is one-shot,
                        # so an inline re-run of the unit completes it
                        injector.record(stats, "parallel->sequential", unit.label)
                        retry_stats, retry_prov, failure = _run_unit(
                            unit, db, opts, guard, replan_rounds
                        )
                        _merge_unit(stats, provenance, unit, retry_stats, retry_prov)
                    if failure is not None and pending is None:
                        pending = failure
                if pending is not None:
                    if isinstance(pending, BudgetExceeded) and pending.stratum is None:
                        pending.stratum = stratum_index
                    raise pending
    finally:
        if executor is not None:
            executor.shutdown(wait=True)
