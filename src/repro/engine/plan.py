"""Rule compilation: body ordering and index-aware literal matching.

A rule body is evaluated as a left-deep nested-loop join over hash
indexes.  :func:`order_body` picks a join order greedily by a
selectivity heuristic — at each step the literal with the most
already-bound argument positions is chosen (ties broken by smaller
relation size when the planner is given sizes, then by original body
order), so index lookups replace scans wherever possible.
:class:`CompiledRule` caches, per literal, which positions will be
bound when the literal is reached, so evaluation does no per-tuple
planning.

Each probe of a stored relation is counted in exactly one of two ways:
an **index probe** when the literal has bound positions and indexing is
enabled (the relation's lazily built hash index on those positions
answers the probe), or a **scan fallback** when no position is bound or
``use_indexes=False`` forces the engine back to the seed behaviour of
enumerating the whole relation and filtering.

Substitutions at evaluation time are plain ``dict[Variable, value]``
with raw Python values (not :class:`Constant` wrappers); this is the
engine's hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Mapping, Optional, Sequence

from ..datalog.ast import Atom, Rule
from ..datalog.builtins import is_builtin
from ..datalog.columnar import PACK_LIMIT, PACK_SHIFT, global_dictionary
from ..datalog.database import Database

try:  # numpy is optional; DeltaIndex.packed_rows needs it
    import numpy as _np
except Exception:  # pragma: no cover - environment without numpy
    _np = None
from ..datalog.terms import Constant, Variable
from .statistics import EvalStats

__all__ = [
    "CompiledRule",
    "DeltaIndex",
    "LiteralPlan",
    "order_body",
    "compile_rule",
    "rebind_plans",
    "replan_delta_plans",
]


@dataclass(frozen=True)
class LiteralPlan:
    """One body literal with its precomputed binding pattern.

    ``bound_positions`` are argument indexes whose value is known when
    this literal is matched (constants, or variables bound by earlier
    literals); an index on exactly those positions is used for lookup.
    ``free_positions`` maps the remaining indexes to their variables
    (with repeated free variables appearing at each of their positions;
    consistency is enforced during binding).
    """

    atom: Atom
    body_index: int  # position in the original rule body
    bound_positions: tuple[int, ...]
    free_positions: tuple[tuple[int, Variable], ...]
    #: every variable this literal newly binds is *dead* — unused by
    #: later plan steps, the head, built-ins and negated literals — so
    #: one matching row witnesses the literal and scanning further
    #: candidates can only repeat downstream work (the existential
    #: first-match cut; see compile_rule).
    existential: bool = False

    def key_for(self, subst: dict) -> Optional[tuple]:
        """The index key under *subst*; None is never returned — every
        bound position is a constant or a variable guaranteed bound."""
        key = []
        for p in self.bound_positions:
            arg = self.atom.args[p]
            if isinstance(arg, Constant):
                key.append(arg.value)
            else:
                key.append(subst[arg])
        return tuple(key)

    def bind(self, row: Sequence, subst: dict) -> Optional[dict]:
        """Extend *subst* with the free positions of *row*.

        Returns the extended substitution (a new dict) or ``None`` if a
        repeated free variable is inconsistent.  A fully-bound literal
        binds nothing, so the input substitution is returned as-is
        (substitutions are never mutated downstream, so sharing is
        safe and skips a dict copy per candidate row).
        """
        if not self.free_positions:
            return subst
        out = dict(subst)
        for p, var in self.free_positions:
            value = row[p]
            bound = out.get(var, _UNBOUND)
            if bound is _UNBOUND:
                out[var] = value
            elif bound != value:
                return None
        return out


_UNBOUND = object()
_NO_ROWS: list = []
_PACK_FAIL = object()  # memoized "frontier cannot be packed" sentinel


class DeltaIndex:
    """The semi-naive delta frontier with lazy position groupings.

    The frontier is shared by every rule specialization probing the
    same predicate in a round, so grouping its rows by a literal's
    bound positions happens once per ``(round, positions)`` instead of
    re-scanning the frontier linearly on every probe.  Probing the
    frontier is the semi-naive discipline itself, so it is charged as a
    ``join_probe`` but never as an index probe or scan fallback, and
    only delivered rows count toward ``rows_scanned`` — exactly the
    accounting of the previous linear filter.
    """

    __slots__ = ("_rows", "_groups", "_encoded", "_packed", "_relation")

    def __init__(self, rows):
        self._rows: Optional[list] = list(rows)
        self._groups: dict[tuple[int, ...], dict[tuple, list]] = {}
        self._encoded: Optional[list] = None
        self._packed = None
        self._relation = None

    @classmethod
    def from_packed(cls, packed, relation) -> "DeltaIndex":
        """A frontier born packed (the vectorized absorb path kept the
        round's fresh rows as one int64 per row).  Raw and encoded
        views materialize lazily — a round handled entirely by the
        vectorized kernels never pays for them."""
        self = cls.__new__(cls)
        self._rows = None
        self._groups = {}
        self._encoded = None
        self._packed = packed
        self._relation = relation
        return self

    def all_rows(self) -> list:
        rows = self._rows
        if rows is None:
            rows = self._rows = self._relation.decode_packed(self._packed)
        return rows

    def encoded_rows(self) -> list:
        """The frontier dictionary-encoded, in ``all_rows`` order (the
        batch kernels' delta feed); encoded once per frontier."""
        enc = self._encoded
        if enc is None:
            if self._rows is None:
                # unpack ids straight from the packed image — no raw
                # tuples, no dictionary probes
                arr = self._packed
                arity = self._relation.arity
                mask = PACK_LIMIT - 1
                cols = [
                    ((arr >> (PACK_SHIFT * (arity - 1 - p))) & mask).tolist()
                    for p in range(arity)
                ]
                enc = (
                    list(zip(*cols))
                    if arity > 1
                    else [(v,) for v in cols[0]]
                    if arity
                    else [()] * len(arr)
                )
            else:
                intern = global_dictionary().intern
                enc = [tuple(intern(v) for v in row) for row in self._rows]
            self._encoded = enc
        return enc

    def packed_rows(self, relation):
        """The frontier as one packed int64 per row, in ``all_rows``
        order (the vectorized kernels' delta feed), or None when
        packing is unavailable (no numpy, arity > 3, id overflow).

        *relation* is the frontier predicate's relation; rows the
        vectorized absorb path derived hit its packed cache, so only
        tuple-path contributions (typically the naive round) pay the
        per-value intern here.  Cached per frontier — shared by every
        rule probing it this round.
        """
        cached = self._packed
        if cached is not None:
            return None if cached is _PACK_FAIL else cached
        arr = self._pack(relation)
        self._packed = arr if arr is not None else _PACK_FAIL
        return arr

    def _pack(self, relation):
        rows = self._rows
        if _np is None or not rows or len(rows[0]) > 3:
            return None
        cache = relation.packed_cache() if relation is not None else {}
        packed = list(map(cache.get, rows))
        if None in packed:
            intern = global_dictionary().intern
            for i, v in enumerate(packed):
                if v is not None:
                    continue
                p = 0
                for value in rows[i]:
                    c = intern(value)
                    if c >= PACK_LIMIT:
                        return None
                    p = (p << PACK_SHIFT) | c
                packed[i] = p
                cache[rows[i]] = p
        return _np.array(packed, dtype=_np.int64)

    def __len__(self) -> int:
        rows = self._rows
        return len(rows) if rows is not None else len(self._packed)

    def lookup(self, positions: tuple[int, ...], key: tuple) -> list:
        """Frontier rows whose values at *positions* equal *key*."""
        if not positions:
            return self.all_rows()
        group = self._groups.get(positions)
        if group is None:
            group = {}
            for row in self.all_rows():
                group.setdefault(tuple(row[p] for p in positions), []).append(row)
            self._groups[positions] = group
        return group.get(tuple(key), _NO_ROWS)


def _plan_literal(atom: Atom, body_index: int, bound_vars: set[Variable]) -> LiteralPlan:
    bound_positions = []
    free_positions = []
    for p, arg in enumerate(atom.args):
        if isinstance(arg, Constant) or arg in bound_vars:
            bound_positions.append(p)
        else:
            free_positions.append((p, arg))
    return LiteralPlan(atom, body_index, tuple(bound_positions), tuple(free_positions))


def order_body(
    body: Sequence[Atom],
    first: Optional[int] = None,
    sizes: Optional[Mapping[str, int]] = None,
    cost_model=None,
    needed: frozenset = frozenset(),
) -> tuple[LiteralPlan, ...]:
    """Choose a join order and compute binding patterns.

    *first*, when given, forces that body index to the front — used by
    the semi-naive evaluator to start from the delta literal.  When
    *cost_model* is given (a :class:`repro.engine.cost.CostModel`), the
    rest of the order comes from its bound-driven DP search over the
    remaining literals (*needed* is the rule's always-live variable
    set, which the model uses for the existential d-position cap); a
    model that declines — wide bodies past its DP limit — falls
    through to the greedy heuristic below, the planner's fallback rung.

    The greedy heuristic orders by most bound argument positions
    first, ties broken by smaller relation size (when *sizes* gives an
    estimate for the predicate; unknown predicates sort as largest).

    **Deterministic tie-break contract:** candidates equal on both
    criteria are taken in original body order.  The selection key ends
    in ``-i`` under ``max``, so the smallest body index always wins an
    exact tie; cost-model orders break exact-cost ties the same way
    (lexicographically smallest index sequence).  This is pinned by
    tests — cost-vs-greedy differentials rely on both planners being
    exactly reproducible, never on hash or insertion order.
    """
    remaining = list(range(len(body)))
    plans: list[LiteralPlan] = []
    bound_vars: set[Variable] = set()
    unknown = (max(sizes.values(), default=0) + 1) if sizes else 0

    def size_of(atom: Atom) -> int:
        if not sizes:
            return 0
        return sizes.get(atom.predicate, unknown)

    def take(i: int) -> None:
        remaining.remove(i)
        plan = _plan_literal(body[i], i, bound_vars)
        plans.append(plan)
        bound_vars.update(v for _, v in plan.free_positions)

    if first is not None:
        take(first)
    if cost_model is not None and remaining:
        order = cost_model.order_remaining(
            body, tuple(remaining), frozenset(bound_vars), needed
        )
        if order is not None:
            for i in order:
                take(i)
            return tuple(plans)
    while remaining:
        best = max(
            remaining,
            key=lambda i: (
                sum(
                    1
                    for arg in body[i].args
                    if isinstance(arg, Constant) or arg in bound_vars
                ),
                -size_of(body[i]),
                -i,
            ),
        )
        take(best)
    return tuple(plans)


@dataclass(frozen=True)
class CompiledRule:
    """A rule together with its join plans.

    ``plan`` is the default (naive) plan; ``delta_plans[i]`` is the plan
    that starts from *relational* body literal *i*, used when that
    literal is matched against a delta relation during semi-naive
    evaluation.  Built-in comparison literals are split out into
    ``builtins`` and evaluated as filters once a match is complete
    (safety guarantees their variables are bound by then).
    """

    rule: Rule
    rule_index: int
    #: the body literals that denote stored relations, in body order
    relational_body: tuple[Atom, ...]
    #: evaluable comparison literals (lt/le/gt/ge/eq/neq)
    builtins: tuple[Atom, ...]
    plan: tuple[LiteralPlan, ...]
    delta_plans: tuple[tuple[LiteralPlan, ...], ...]

    def head_values(self, subst: dict) -> tuple:
        """Instantiate the head under a complete substitution."""
        return tuple(
            a.value if isinstance(a, Constant) else subst[a] for a in self.rule.head.args
        )

    def delta_literals(self, recursive) -> tuple[tuple[int, str], ...]:
        """The relational body positions whose predicate is in
        *recursive* — i.e. can still change while the current fixpoint
        runs, so their delta plan must be fired each round.  The
        monolithic loop passes the stratum's head predicates; the
        component scheduler passes the unit's own SCC members, which is
        typically a much smaller set and prunes delta firings over
        frozen sibling components."""
        return tuple(
            (i, literal.predicate)
            for i, literal in enumerate(self.relational_body)
            if literal.predicate in recursive
        )


def _mark_existential(
    plans: tuple[LiteralPlan, ...], always_needed: frozenset[Variable]
) -> tuple[LiteralPlan, ...]:
    """Flag plan steps whose newly bound variables are all dead.

    A flagged literal is a pure existence test: any single matching row
    produces the same downstream substitution (its new bindings are
    invisible to later steps, the head, built-ins and negations), so
    :func:`match_plan` stops at the first match instead of enumerating
    every candidate — this keeps dead existential variables (the
    hallmark of the paper's queries, and a frequent by-product of
    unfolding) from cross-multiplying into duplicate rule firings.
    """
    marked = list(plans)
    needed = set(always_needed)
    for i in range(len(plans) - 1, -1, -1):
        plan = plans[i]
        new_vars = {v for _, v in plan.free_positions}
        if new_vars and not (new_vars & needed):
            marked[i] = replace(plan, existential=True)
        needed.update(
            a for a in plan.atom.args if isinstance(a, Variable)
        )
    return tuple(marked)


def _always_needed(rule: Rule, builtins: tuple[Atom, ...]) -> frozenset[Variable]:
    """Variables no plan step may treat as dead: the head's, the
    built-in filters', and the negated literals'."""
    return frozenset(
        a
        for atom in (rule.head, *builtins, *rule.negative)
        for a in atom.args
        if isinstance(a, Variable)
    )


def compile_rule(
    rule: Rule,
    rule_index: int,
    sizes: Optional[Mapping[str, int]] = None,
    cost_model=None,
) -> CompiledRule:
    """Compile *rule*: one naive plan plus one delta plan per
    relational literal; built-ins become post-match filters.  *sizes*
    (relation row counts) feeds the join-order selectivity heuristic;
    *cost_model*, when given, orders bodies by bound-driven DP search
    instead (:mod:`repro.engine.cost`), with the greedy heuristic as
    its fallback rung."""
    relational = tuple(a for a in rule.body if not is_builtin(a.predicate))
    builtins = tuple(a for a in rule.body if is_builtin(a.predicate))
    always_needed = _always_needed(rule, builtins)
    plan = _mark_existential(
        order_body(relational, sizes=sizes, cost_model=cost_model,
                   needed=always_needed),
        always_needed,
    )
    delta_plans = tuple(
        _mark_existential(
            order_body(relational, first=i, sizes=sizes,
                       cost_model=cost_model, needed=always_needed),
            always_needed,
        )
        for i in range(len(relational))
    )
    return CompiledRule(rule, rule_index, relational, builtins, plan, delta_plans)


def replan_delta_plans(cr: CompiledRule, cost_model) -> CompiledRule:
    """*cr* with every delta plan re-ordered by *cost_model*.

    The adaptive replanner calls this between fixpoint rounds with a
    model built from observed cardinalities.  The naive plan is left
    untouched (it already ran); only the delta plans — the per-round
    hot path — are re-ranked.  Returns *cr* itself when every order is
    unchanged, so kernels memoized on the object survive no-op
    replans; otherwise a fresh :class:`CompiledRule` whose kernels are
    re-generated on demand (amortized by the process-wide source-text
    caches in :mod:`repro.engine.kernel` / ``batch_kernel``).
    """
    always_needed = _always_needed(cr.rule, cr.builtins)
    delta_plans = tuple(
        _mark_existential(
            order_body(cr.relational_body, first=i, cost_model=cost_model,
                       needed=always_needed),
            always_needed,
        )
        for i in range(len(cr.relational_body))
    )
    if delta_plans == cr.delta_plans:
        return cr
    return replace(cr, delta_plans=delta_plans)


def _rebind(plan: LiteralPlan, bound: Mapping) -> LiteralPlan:
    """*plan* with every free position whose variable is in *bound*
    promoted to a bound (index-keyed) position.

    Join plans are compiled knowing only which variables earlier body
    literals bind; a goal-directed caller of :func:`match_plan` (the
    rederivation support probe) additionally pre-binds the head
    variables through ``subst``.  Promoting those positions turns what
    the compile-time pattern thought was an unbound first literal —
    a full scan — into an index probe on the pre-bound values.  The
    initial substitution only ever grows, so the promotion is sound at
    every plan step.
    """
    extra = tuple(p for p, var in plan.free_positions if var in bound)
    if not extra:
        return plan
    return replace(
        plan,
        bound_positions=tuple(sorted(plan.bound_positions + extra)),
        free_positions=tuple(
            (p, var) for p, var in plan.free_positions if var not in bound
        ),
    )


def rebind_plans(
    plans: Sequence[LiteralPlan], bound: "Mapping | frozenset"
) -> tuple[LiteralPlan, ...]:
    """Rebind every plan step for a known pre-bound variable set.

    Goal-directed callers that probe the same plan for many different
    bindings of one fixed variable set (the rederivation support probe:
    the head variables, one probe per overdeleted row) should rebind
    once through this helper and reuse the result — :func:`match_plan`
    still accepts raw plans plus ``subst`` and rebinds on the fly, but
    that costs a plan reconstruction per call.
    """
    return tuple(_rebind(plan, bound) for plan in plans)


def match_plan(
    plans: Sequence[LiteralPlan],
    db: Database,
    stats: EvalStats,
    delta_rows: "Optional[DeltaIndex | frozenset]" = None,
    subst: Optional[dict] = None,
    use_indexes: bool = True,
) -> Iterator[tuple[dict, tuple]]:
    """Enumerate substitutions satisfying the planned body.

    Yields ``(substitution, body_rows)`` where ``body_rows[i]`` is the
    matched row of the literal at *original* body index *i* (used for
    provenance).  When *delta_rows* is given (a :class:`DeltaIndex` or
    any iterable of rows), the first plan step is matched against
    exactly those rows instead of the stored relation — this is the
    semi-naive delta position, answered through the frontier's lazy
    position groupings.  A non-empty *subst* pre-binds variables before
    the first step; the binding patterns are rebound accordingly so
    pre-bound positions are answered by index probes rather than the
    scans the compile-time patterns would fall back to.  With
    ``use_indexes=False``
    every probe of a stored relation enumerates the whole relation and
    filters (the pre-index seed behaviour, kept as the ``--no-index``
    baseline); ``stats.rows_scanned`` then counts every enumerated row,
    matching or not.
    """
    start = dict(subst) if subst else {}
    if start:
        plans = [_rebind(plan, start) for plan in plans]
    n = len(plans)
    body_rows: list = [None] * n
    delta = (
        delta_rows
        if delta_rows is None or isinstance(delta_rows, DeltaIndex)
        else DeltaIndex(delta_rows)
    )

    def step(i: int, subst: dict) -> Iterator[tuple[dict, tuple]]:
        if i == n:
            yield subst, tuple(body_rows)
            return
        plan = plans[i]
        if i == 0 and delta is not None:
            stats.join_probes += 1
            if not plan.bound_positions:
                candidates = delta.all_rows()
            else:
                candidates = delta.lookup(plan.bound_positions, plan.key_for(subst))
        else:
            rel = db.relation(plan.atom.predicate)
            if rel is None:
                return
            stats.join_probes += 1
            if not plan.bound_positions:
                # no binding available: a full scan is the only option
                # (snapshot: the head relation may be the one scanned)
                stats.scan_fallbacks += 1
                candidates = list(rel)
            elif use_indexes:
                stats.index_probes += 1
                if not plan.free_positions:
                    # fully bound: the key *is* the candidate row, so
                    # the row set answers the probe directly — building
                    # a whole-relation index to return at most one row
                    # would cost O(|rel|) for nothing
                    key = plan.key_for(subst)
                    candidates = [key] if key in rel else _NO_ROWS
                else:
                    candidates = rel.lookup(
                        plan.bound_positions, plan.key_for(subst)
                    )
            else:
                stats.scan_fallbacks += 1
                candidates = _scan_filter(plan, rel, plan.key_for(subst), stats)
        for row in candidates:
            stats.rows_scanned += 1
            extended = plan.bind(row, subst)
            if extended is None:
                continue
            body_rows[i] = (plan.body_index, row)
            yield from step(i + 1, extended)
            if plan.existential:
                # one witness is enough: every further candidate binds
                # only dead variables, replaying identical downstream
                # work (and identical head facts) per extra row
                return

    for final_subst, rows in step(0, start):
        ordered: list = [None] * n
        for body_index, row in rows:
            ordered[body_index] = row
        yield final_subst, tuple(ordered)


def _scan_filter(plan: LiteralPlan, rel, key: tuple, stats: EvalStats):
    """Enumerate *rel* fully, yielding rows matching the bound
    positions.  Rejected rows are charged to ``rows_scanned`` here
    (delivered rows are charged by the caller), so the counter reflects
    the full scan the missing index forced."""
    positions = plan.bound_positions
    for row in list(rel):
        if all(row[p] == key[i] for i, p in enumerate(positions)):
            yield row
        else:
            stats.rows_scanned += 1


