"""Rule compilation: body ordering and index-aware literal matching.

A rule body is evaluated as a left-deep nested-loop join over hash
indexes.  :func:`order_body` picks a join order greedily — at each step
the literal with the most already-bound argument positions is chosen, so
index lookups replace scans wherever possible.  :class:`CompiledRule`
caches, per literal, which positions will be bound when the literal is
reached, so evaluation does no per-tuple planning.

Substitutions at evaluation time are plain ``dict[Variable, value]``
with raw Python values (not :class:`Constant` wrappers); this is the
engine's hot path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from ..datalog.ast import Atom, Rule
from ..datalog.builtins import is_builtin
from ..datalog.database import Database
from ..datalog.terms import Constant, Variable
from .statistics import EvalStats

__all__ = ["CompiledRule", "LiteralPlan", "order_body", "compile_rule"]


@dataclass(frozen=True)
class LiteralPlan:
    """One body literal with its precomputed binding pattern.

    ``bound_positions`` are argument indexes whose value is known when
    this literal is matched (constants, or variables bound by earlier
    literals); an index on exactly those positions is used for lookup.
    ``free_positions`` maps the remaining indexes to their variables
    (with repeated free variables appearing at each of their positions;
    consistency is enforced during binding).
    """

    atom: Atom
    body_index: int  # position in the original rule body
    bound_positions: tuple[int, ...]
    free_positions: tuple[tuple[int, Variable], ...]

    def key_for(self, subst: dict) -> Optional[tuple]:
        """The index key under *subst*; None is never returned — every
        bound position is a constant or a variable guaranteed bound."""
        key = []
        for p in self.bound_positions:
            arg = self.atom.args[p]
            if isinstance(arg, Constant):
                key.append(arg.value)
            else:
                key.append(subst[arg])
        return tuple(key)

    def bind(self, row: Sequence, subst: dict) -> Optional[dict]:
        """Extend *subst* with the free positions of *row*.

        Returns the extended substitution (a new dict) or ``None`` if a
        repeated free variable is inconsistent.
        """
        out = dict(subst)
        for p, var in self.free_positions:
            value = row[p]
            bound = out.get(var, _UNBOUND)
            if bound is _UNBOUND:
                out[var] = value
            elif bound != value:
                return None
        return out


_UNBOUND = object()


def _plan_literal(atom: Atom, body_index: int, bound_vars: set[Variable]) -> LiteralPlan:
    bound_positions = []
    free_positions = []
    for p, arg in enumerate(atom.args):
        if isinstance(arg, Constant) or arg in bound_vars:
            bound_positions.append(p)
        else:
            free_positions.append((p, arg))
    return LiteralPlan(atom, body_index, tuple(bound_positions), tuple(free_positions))


def order_body(body: Sequence[Atom], first: Optional[int] = None) -> tuple[LiteralPlan, ...]:
    """Choose a join order and compute binding patterns.

    *first*, when given, forces that body index to the front — used by
    the semi-naive evaluator to start from the delta literal.  The rest
    is ordered greedily by bound-argument count (ties broken by original
    body order, keeping plans deterministic).
    """
    remaining = list(range(len(body)))
    plans: list[LiteralPlan] = []
    bound_vars: set[Variable] = set()

    def take(i: int) -> None:
        remaining.remove(i)
        plan = _plan_literal(body[i], i, bound_vars)
        plans.append(plan)
        bound_vars.update(v for _, v in plan.free_positions)

    if first is not None:
        take(first)
    while remaining:
        best = max(
            remaining,
            key=lambda i: (
                sum(
                    1
                    for arg in body[i].args
                    if isinstance(arg, Constant) or arg in bound_vars
                ),
                -i,
            ),
        )
        take(best)
    return tuple(plans)


@dataclass(frozen=True)
class CompiledRule:
    """A rule together with its join plans.

    ``plan`` is the default (naive) plan; ``delta_plans[i]`` is the plan
    that starts from *relational* body literal *i*, used when that
    literal is matched against a delta relation during semi-naive
    evaluation.  Built-in comparison literals are split out into
    ``builtins`` and evaluated as filters once a match is complete
    (safety guarantees their variables are bound by then).
    """

    rule: Rule
    rule_index: int
    #: the body literals that denote stored relations, in body order
    relational_body: tuple[Atom, ...]
    #: evaluable comparison literals (lt/le/gt/ge/eq/neq)
    builtins: tuple[Atom, ...]
    plan: tuple[LiteralPlan, ...]
    delta_plans: tuple[tuple[LiteralPlan, ...], ...]

    def head_values(self, subst: dict) -> tuple:
        """Instantiate the head under a complete substitution."""
        return tuple(
            a.value if isinstance(a, Constant) else subst[a] for a in self.rule.head.args
        )


def compile_rule(rule: Rule, rule_index: int) -> CompiledRule:
    """Compile *rule*: one naive plan plus one delta plan per
    relational literal; built-ins become post-match filters."""
    relational = tuple(a for a in rule.body if not is_builtin(a.predicate))
    builtins = tuple(a for a in rule.body if is_builtin(a.predicate))
    plan = order_body(relational)
    delta_plans = tuple(
        order_body(relational, first=i) for i in range(len(relational))
    )
    return CompiledRule(rule, rule_index, relational, builtins, plan, delta_plans)


def match_plan(
    plans: Sequence[LiteralPlan],
    db: Database,
    stats: EvalStats,
    delta_rows: Optional[frozenset] = None,
    subst: Optional[dict] = None,
) -> Iterator[tuple[dict, tuple]]:
    """Enumerate substitutions satisfying the planned body.

    Yields ``(substitution, body_rows)`` where ``body_rows[i]`` is the
    matched row of the literal at *original* body index *i* (used for
    provenance).  When *delta_rows* is given, the first plan step is
    matched against exactly those rows instead of the stored relation —
    this is the semi-naive delta position.
    """
    n = len(plans)
    body_rows: list = [None] * n

    def step(i: int, subst: dict) -> Iterator[tuple[dict, tuple]]:
        if i == n:
            yield subst, tuple(body_rows)
            return
        plan = plans[i]
        if i == 0 and delta_rows is not None:
            candidates = _filter_rows(plan, delta_rows, subst, stats)
        else:
            rel = db.relation(plan.atom.predicate)
            if rel is None:
                return
            stats.join_probes += 1
            candidates = rel.lookup(plan.bound_positions, plan.key_for(subst))
        for row in candidates:
            stats.rows_scanned += 1
            extended = plan.bind(row, subst)
            if extended is None:
                continue
            body_rows[i] = (plan.body_index, row)
            yield from step(i + 1, extended)

    start = dict(subst) if subst else {}
    for final_subst, rows in step(0, start):
        ordered: list = [None] * n
        for body_index, row in rows:
            ordered[body_index] = row
        yield final_subst, tuple(ordered)


def _filter_rows(plan: LiteralPlan, rows: frozenset, subst: dict, stats: EvalStats):
    """Rows from an explicit set matching the plan's bound positions."""
    stats.join_probes += 1
    if not plan.bound_positions:
        return list(rows)
    key = plan.key_for(subst)
    out = []
    for row in rows:
        if all(row[p] == key[i] for i, p in enumerate(plan.bound_positions)):
            out.append(row)
    return out
