"""A tabled top-down evaluator (QSQR-style), for comparison and
cross-checking.

The paper (section 1) frames its work inside the *bottom-up* model and
notes that its boolean rewriting "captures some aspects of Prolog's cut
operator that are appropriate to the bottom-up model".  To make that
comparison concrete, this module provides the other side: a goal-
directed evaluator with memoization (tabling), the declarative cousin
of Prolog's SLD resolution that terminates on all safe Datalog.

Like Prolog, it only explores subgoals *relevant to the query* — the
behaviour Magic Sets simulates bottom-up — so on selective queries it
does far less work than the unrestricted fixpoint; like the bottom-up
engine, it is complete (tabling removes SLD's infinite loops).

Algorithm: iterate-to-fixpoint QSQR.  A *subgoal* is a predicate plus a
call pattern (argument values, or ``None`` for free positions).
Tables map subgoals to answer rows.  Each pass re-solves every
registered subgoal against the current tables, registering new
subgoals as rule bodies demand them; passes repeat until no table
grows.  Subgoals and answers range over the active domain, so the
fixpoint is finite.

Scope: positive Datalog with comparison built-ins.  Stratified
negation is served by the bottom-up engine (`repro.engine.evaluate`);
mixing negation into tabling needs SLG resolution, which is out of
scope here and documented as such.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..datalog.ast import Atom, Program
from ..datalog.builtins import eval_builtin, is_builtin
from ..datalog.database import Database
from ..datalog.errors import EvaluationError, ValidationError
from ..datalog.terms import Constant, Variable
from .statistics import EvalStats

__all__ = ["TopDownResult", "evaluate_topdown"]

#: a call pattern: one entry per argument; a concrete value, or None
Pattern = tuple


@dataclass
class TopDownResult:
    """Answers plus the tabling state, for inspection and benchmarks."""

    program: Program
    query: Atom
    answers: frozenset[tuple]
    #: subgoal -> answer rows
    tables: dict[tuple[str, Pattern], frozenset[tuple]]
    stats: EvalStats

    @property
    def subgoal_count(self) -> int:
        return len(self.tables)


def _pattern_of(atom: Atom, subst: dict) -> Pattern:
    """The call pattern of *atom* under the current bindings."""
    out = []
    for a in atom.args:
        if isinstance(a, Constant):
            out.append(a.value)
        else:
            out.append(subst.get(a))
    return tuple(out)


def _matches(row: tuple, pattern: Pattern) -> bool:
    return all(p is None or p == v for p, v in zip(pattern, row))


class _Tabling:
    def __init__(self, program: Program, edb: Database, max_passes: int):
        if program.has_negation():
            raise ValidationError(
                "the top-down engine handles positive programs; use the "
                "bottom-up engine for stratified negation"
            )
        program.validate()
        self.program = program
        self.edb = edb
        self.idb = program.idb_predicates()
        self.rules_for = {
            p: program.rules_for(p) for p in self.idb
        }
        self.tables: dict[tuple[str, Pattern], set[tuple]] = {}
        #: consumer subgoals to re-solve when a producer's table grows
        self.dependents: dict[tuple[str, Pattern], set[tuple[str, Pattern]]] = {}
        self.stats = EvalStats()
        self.max_passes = max_passes
        self._worklist: list[tuple[str, Pattern]] = []
        self._queued: set[tuple[str, Pattern]] = set()
        self._consumer: Optional[tuple[str, Pattern]] = None
        self._grew = False

    # -- subgoal management -------------------------------------------------

    def register(self, pred: str, pattern: Pattern) -> tuple[str, Pattern]:
        key = (pred, pattern)
        if key not in self.tables:
            # Seed with any input facts for the derived predicate — the
            # uniform-equivalence input convention (section 4) lets the
            # database pre-populate IDB predicates, and the bottom-up
            # engine honors that; tabling must agree.
            rel = self.edb.relation(pred)
            if rel is not None:
                self.tables[key] = {
                    row for row in rel.rows() if _matches(row, pattern)
                }
                self.stats.facts_derived += len(self.tables[key])
            else:
                self.tables[key] = set()
            self._enqueue(key)
        return key

    def _enqueue(self, key: tuple[str, Pattern]) -> None:
        if key not in self._queued:
            self._queued.add(key)
            self._worklist.append(key)

    # -- solving -------------------------------------------------------------

    def solve(self, query: Atom) -> frozenset[tuple]:
        """Dependency-driven saturation: re-solve a subgoal only when a
        table it consumes has grown since its last solve (plus once at
        registration).  Each solve that grows a table wakes exactly its
        recorded consumers, so deep call chains converge in work
        proportional to the propagation, not passes × program."""
        root = self.register(query.predicate, _pattern_of(query, {}))
        steps = 0
        while self._worklist:
            steps += 1
            if steps > self.max_passes * max(len(self.tables), 1):
                raise EvaluationError(
                    "top-down tabling did not converge (budget exceeded)"
                )
            key = self._worklist.pop()
            self._queued.discard(key)
            self.stats.iterations += 1
            grew = self._solve_subgoal(*key)
            if grew:
                for consumer in self.dependents.get(key, ()):
                    self._enqueue(consumer)
        return frozenset(self.tables[root])

    def _solve_subgoal(self, pred: str, pattern: Pattern) -> bool:
        table = self.tables[(pred, pattern)]
        self._consumer = (pred, pattern)
        self._grew = False
        for rule in self.rules_for.get(pred, ()):
            rule = rule.rename_apart("_td")
            # bind head against the call pattern
            subst: dict = {}
            ok = True
            for arg, value in zip(rule.head.args, pattern):
                if value is None:
                    continue
                if isinstance(arg, Constant):
                    if arg.value != value:
                        ok = False
                        break
                elif arg in subst:
                    if subst[arg] != value:
                        ok = False
                        break
                else:
                    subst[arg] = value
            if not ok:
                continue
            for solution in self._solve_body(list(rule.body), subst):
                row = tuple(
                    a.value if isinstance(a, Constant) else solution[a]
                    for a in rule.head.args
                )
                if _matches(row, pattern) and row not in table:
                    table.add(row)
                    self.stats.facts_derived += 1
                    self._grew = True
        return self._grew

    def _solve_body(self, body: list, subst: dict) -> Iterator[dict]:
        if not body:
            yield subst
            return
        literal, rest = body[0], body[1:]
        if is_builtin(literal.predicate):
            a, b = (
                t.value if isinstance(t, Constant) else subst[t]
                for t in literal.args
            )
            if eval_builtin(literal.predicate, a, b):
                yield from self._solve_body(rest, subst)
            return

        if literal.predicate in self.idb:
            key = self.register(literal.predicate, _pattern_of(literal, subst))
            if self._consumer is not None:
                self.dependents.setdefault(key, set()).add(self._consumer)
            rows: Iterator[tuple] = iter(list(self.tables[key]))
        else:
            rel = self.edb.relation(literal.predicate)
            rows = iter(rel.rows()) if rel is not None else iter(())
        self.stats.join_probes += 1
        for row in rows:
            self.stats.rows_scanned += 1
            extended = dict(subst)
            ok = True
            for arg, value in zip(literal.args, row):
                if isinstance(arg, Constant):
                    if arg.value != value:
                        ok = False
                        break
                elif arg in extended:
                    if extended[arg] != value:
                        ok = False
                        break
                else:
                    extended[arg] = value
            if ok:
                yield from self._solve_body(rest, extended)


def evaluate_topdown(
    program: Program,
    edb: Database,
    query: Optional[Atom] = None,
    max_passes: int = 10_000,
) -> TopDownResult:
    """Answer *query* (default: the program's query) by tabled
    resolution.

    Returns the same answer tuples as
    ``evaluate(program, edb).answers(query)`` — the bindings of the
    query's distinct variables in first-occurrence order — but explores
    only subgoals reachable from the query, like Prolog with tabling.
    """
    q = query if query is not None else program.query
    if q is None:
        raise ValidationError("top-down evaluation requires a query")
    engine = _Tabling(program, edb, max_passes)
    rows = engine.solve(q)

    # project rows onto the query's distinct variables (same convention
    # as EvalResult.answers)
    var_positions: list[int] = []
    seen: dict[Variable, int] = {}
    for i, a in enumerate(q.args):
        if isinstance(a, Variable) and a not in seen:
            seen[a] = i
            var_positions.append(i)
    answers = set()
    for row in rows:
        consistent = all(
            row[seen[a]] == row[i]
            for i, a in enumerate(q.args)
            if isinstance(a, Variable)
        )
        if consistent:
            answers.add(tuple(row[i] for i in var_positions))

    return TopDownResult(
        program=program,
        query=q,
        answers=frozenset(answers),
        tables={k: frozenset(v) for k, v in engine.tables.items()},
        stats=engine.stats,
    )
