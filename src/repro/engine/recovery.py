"""Crash recovery for durable sessions: snapshot + WAL-suffix replay.

:func:`recover` rebuilds an :class:`~repro.engine.incremental.IncrementalSession`
from the files a durable session (or its crash) left behind, following
this decision table:

===============================================  ================================
situation                                        outcome
===============================================  ================================
WAL missing / bad magic / corrupt header         ``RecoveryError`` (refuse)
mid-log checksum mismatch                        ``RecoveryError`` (refuse)
batch sequence gap                               ``RecoveryError`` (refuse)
program text drift                               ``RecoveryError`` (refuse)
engine-flag drift, ``on_flag_drift="refuse"``    ``RecoveryError`` (refuse)
engine-flag drift, ``on_flag_drift="scratch"``   from-scratch rung
torn **final** WAL record                        dropped; replay to the last
                                                 complete record
newest snapshot corrupt / truncated              skipped; next-newest anchors
                                                 (longer replay)
no loadable snapshot covers the log              ``RecoveryError`` (refuse)
anchor snapshot dirty (governed partial)         from-scratch rung
options request provenance recording             from-scratch rung (snapshots
                                                 do not persist justifications)
otherwise                                        snapshot + seeded IVM replay
===============================================  ================================

The **replay rung** loads the newest valid snapshot (intern-free — ids
decode through the snapshot's embedded table) and pushes every WAL
record after the snapshot's sequence number through the session's
normal :meth:`insert`/:meth:`retract` path — the exact seeded-unit IVM
machinery whose batch-by-batch equality with from-scratch evaluation
the differential oracle proves, which is what makes log replay
verifiable to the bit.  Replay runs with resource limits and fault
plans stripped (a governed trip or a re-armed fault during recovery
would make the recovered state partial); the user's options are
restored on the returned session afterwards.

The **from-scratch rung** is the durability entry on the engine's
degradation ladder (``recovery->scratch``): when seeded replay cannot
be trusted — flag drift under ``"scratch"`` policy, a dirty anchor, or
a provenance request — the base facts are reconstructed (snapshot base
relations + given-IDB rows, then the WAL suffix's base deltas) and the
program is re-evaluated in full.  Slower, never wrong.  A fresh
baseline snapshot + WAL re-anchor durability afterwards.

Refusal is structured and loud by design: a
:class:`~repro.datalog.errors.RecoveryError` names the offending WAL
record (or snapshot) and a stable reason code.  Recovery never returns
a state it cannot argue equals a from-scratch evaluation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Optional

from ..datalog.ast import Program
from ..datalog.database import Database
from ..datalog.errors import RecoveryError
from .durability import (
    DurabilityConfig,
    DurableLog,
    WriteAheadLog,
    flag_signature,
    list_snapshots,
    load_snapshot,
    program_signature,
    read_wal,
)
from .evaluator import EngineOptions
from .incremental import IncrementalSession

__all__ = ["recover", "RecoveryReport"]


@dataclass
class RecoveryReport:
    """What :func:`recover` did, for operators and the oracle."""

    #: ``"replay"`` (snapshot + WAL suffix through the IVM path) or
    #: ``"scratch"`` (full re-evaluation — the degradation rung)
    source: str
    snapshot_seq: int
    snapshot_path: Optional[str]
    base_seq: int
    last_seq: int
    replayed_batches: int
    torn_tail_dropped: bool
    #: ``(path, reason)`` per snapshot that could not anchor recovery
    skipped_snapshots: list = field(default_factory=list)
    recovery_ms: float = 0.0


def _strip_limits(opts: EngineOptions) -> EngineOptions:
    """Replay options: no fault plan (an armed crash point must not
    re-fire during recovery) and no resource limits (a governed trip
    would leave the recovered state partial)."""
    return replace(
        opts,
        fault_plan=None,
        deadline_s=None,
        max_facts=None,
        max_delta_rows=None,
        record_provenance=False,
    )


def _rebuild_edb(program: Program, snapshot, records) -> Database:
    """The from-scratch rung's input: base facts at crash time.

    Base (EDB) relations and the given-IDB row sets are exact in every
    snapshot — even a dirty one, because a batch applies its base
    deltas before any propagation can trip the governor — so the EDB at
    the anchor plus the WAL suffix's base deltas is the EDB the crashed
    session had accepted.
    """
    idb = program.idb_predicates()
    edb = Database()
    for pred in sorted(snapshot.db.predicates()):
        if pred in idb:
            continue
        rel = snapshot.db.relation(pred)
        edb.ensure(pred, rel.arity).bulk_load(rel.rows())
    for pred, rows in snapshot.initial.items():
        if rows:
            arity = len(next(iter(rows)))
            edb.ensure(pred, arity).bulk_load(rows)
    for record in records:
        for pred, rows in record["facts"].items():
            if record["kind"] == "insert":
                arity = len(next(iter(rows))) if rows else 0
                rel = edb.ensure(pred, arity)
                for row in rows:
                    rel.add(row)
            else:
                rel = edb.relation(pred)
                if rel is not None:
                    for row in rows:
                        rel.discard(row)
    return edb


def recover(
    program: Program,
    config: DurabilityConfig,
    options: Optional[EngineOptions] = None,
) -> tuple[IncrementalSession, RecoveryReport]:
    """Rebuild a durable session from its WAL and snapshots.

    Returns ``(session, report)``; the session has durability
    re-attached (appends resume at the next sequence number) and
    carries the recovering *options*.  Raises
    :class:`~repro.datalog.errors.RecoveryError` per the decision
    table in the module docstring.
    """
    t0 = time.perf_counter()
    opts = options or EngineOptions()
    sig = flag_signature(opts)
    psig = program_signature(program)

    data = read_wal(config.wal_path)
    if data.header.get("program") != psig:
        raise RecoveryError(
            "program-drift",
            f"WAL {config.wal_path} was written for program "
            f"{data.header.get('program')!r}, recovering program is {psig!r}",
        )
    drift = data.header.get("flags") != sig
    if drift and config.on_flag_drift == "refuse":
        raise RecoveryError(
            "flag-drift",
            f"WAL {config.wal_path} was written under engine flags "
            f"{data.header.get('flags')!r}, recovering under {sig!r}; "
            f"set on_flag_drift='scratch' to re-evaluate instead",
        )

    # newest loadable snapshot whose replay suffix the WAL still covers
    skipped: list = []
    anchor = None
    for path in list_snapshots(config):
        try:
            candidate = load_snapshot(path)
        except RecoveryError as exc:
            skipped.append((str(path), exc.reason))
            continue
        if candidate.program != data.header.get("program"):
            skipped.append((str(path), "program-drift"))
            continue
        if candidate.flags != data.header.get("flags"):
            skipped.append((str(path), "flag-drift"))
            continue
        if candidate.seq < data.base_seq:
            # compaction already folded records this old away
            skipped.append((str(path), "pre-compaction"))
            continue
        if candidate.seq > data.last_seq:
            # a snapshot "from the future" relative to the log: the WAL
            # lost records after they were snapshotted — refuse rather
            # than silently serve the shorter history
            raise RecoveryError(
                "sequence-gap",
                f"snapshot {path} is at seq {candidate.seq} but the WAL "
                f"ends at {data.last_seq}",
                record=candidate.seq,
            )
        anchor = candidate
        break
    if anchor is None:
        raise RecoveryError(
            "no-valid-snapshot",
            f"no loadable snapshot next to {config.wal_path} covers the "
            f"log (skipped: {skipped or 'none found'})",
        )

    suffix = [r for r in data.records if r["seq"] > anchor.seq]
    replay_opts = _strip_limits(opts)
    scratch_reason = None
    if drift:
        scratch_reason = "flag drift under on_flag_drift='scratch'"
    elif anchor.dirty:
        scratch_reason = "anchor snapshot is a governed partial state"
    elif opts.record_provenance:
        scratch_reason = "snapshots do not persist provenance"

    if scratch_reason is None:
        session = IncrementalSession._restore(
            program, anchor.db, anchor.initial, replay_opts
        )
        for record in suffix:
            if record["kind"] == "insert":
                session.insert(record["facts"])
            else:
                session.retract(record["facts"])
            session.stats.wal_replays += 1
        session.options = opts
        wal = WriteAheadLog.open_append(
            config.wal_path,
            config.fsync,
            data.header,
            data.last_seq + 1,
            truncate_at=data.torn_offset,
        )
        session._durable = DurableLog.attach(
            config, wal, batches_since_snapshot=len(suffix)
        )
        report = RecoveryReport(
            source="replay",
            snapshot_seq=anchor.seq,
            snapshot_path=anchor.path,
            base_seq=data.base_seq,
            last_seq=data.last_seq,
            replayed_batches=len(suffix),
            torn_tail_dropped=data.torn_offset is not None,
            skipped_snapshots=skipped,
        )
    else:
        edb = _rebuild_edb(program, anchor, suffix)
        # full re-evaluation honours the provenance request (it was the
        # reason for this rung); only faults and limits stay stripped
        scratch_opts = replace(
            _strip_limits(opts), record_provenance=opts.record_provenance
        )
        session = IncrementalSession(program, edb, scratch_opts)
        session.options = opts
        session.stats.degradations["recovery->scratch"] = (
            session.stats.degradations.get("recovery->scratch", 0) + 1
        )
        # re-anchor: the old log's flags/history no longer describe
        # this state, so durability restarts from a fresh baseline
        session._durable = DurableLog.create(config, session)
        report = RecoveryReport(
            source="scratch",
            snapshot_seq=anchor.seq,
            snapshot_path=anchor.path,
            base_seq=data.base_seq,
            last_seq=data.last_seq,
            replayed_batches=len(suffix),
            torn_tail_dropped=data.torn_offset is not None,
            skipped_snapshots=skipped,
        )

    elapsed = (time.perf_counter() - t0) * 1000.0
    session.stats.recovery_ms = elapsed
    report.recovery_ms = elapsed
    return session, report
