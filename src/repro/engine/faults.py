"""Deterministic fault injection for the evaluation engine.

The engine claims a graceful-degradation ladder: a rule whose kernel
cannot compile falls back to the plan interpreter, an engine whose
index build fails falls back to full scans, a stratum whose SCC
scheduling fails falls back to the monolithic loop, and a parallel
batch whose worker dies falls back to sequential execution.  Each of
those paths is reachable in principle but almost never taken in
practice — which is exactly how fallback code rots.  A
:class:`FaultPlan` makes every rung of the ladder *fire on demand*,
deterministically, so the fallbacks are tested continuously instead of
trusted.

Faults are declarative (a frozen plan attached to
:class:`~repro.engine.evaluator.EngineOptions`) and stateful injection
bookkeeping lives in a per-run :class:`FaultInjector`, so the same
options object can be reused across evaluations and each run sees the
plan fresh.  One-shot faults (worker death) fire exactly once per run;
persistent faults (kernel compile, index build) fire every time their
site is reached.

Fault kinds and the degradation they exercise:

``columnar``
    Batch-kernel selection "fails" for every rule — the engine must
    fall back to the tuple kernels mid-run with identical answers
    (**columnar → tuple-kernel**, the ladder's top rung).
``kernel-compile[:pred]``
    Kernel compilation "fails" for rules heading *pred* (every rule
    without the suffix) — the engine must fall back to the plan
    interpreter per rule (**kernel → interpreter**).  Batch kernels
    ride on the tuple-kernel machinery, so this fault disables both
    tiers for the affected rules.
``index-build``
    Hash-index construction "fails" at engine start — the run degrades
    to full-scan probing (**index → scan**).
``scheduler``
    SCC scheduling fails before any unit runs — the evaluator falls
    back to the monolithic per-stratum loop (**SCC → monolithic**).
    During incremental maintenance the same fault instead fails the
    seeded delta scheduler, and the batch recomputes the affected cone
    from its initial rows (**incremental → recompute**).
``worker-death:N``
    The N-th scheduled evaluation unit (0-based, scheduling order)
    dies once with :class:`WorkerDeath`; the scheduler re-runs the
    unit sequentially (**parallel → sequential**).
``unit-error:N``
    The N-th scheduled unit raises a genuine
    :class:`InjectedUnitError` mid-unit.  *Not* recoverable: the
    original exception must surface to the caller (with per-unit stats
    already merged), never a deadlock or a swallowed future.
``slow-unit:N[:SECONDS]``
    The N-th scheduled unit sleeps at its start and at every iteration
    boundary — a deterministic way to make a deadline fire inside a
    chosen unit.
``wal-crash:POINT[:SEQ]``
    Simulated process death at a chosen durability crash point
    (:mod:`repro.engine.durability`): the injector performs exactly the
    disk damage a real crash at that point leaves behind, then raises
    :class:`WalCrash`, which the session deliberately does **not**
    catch — the "process" is dead, and the test recovers from the
    files.  POINT is ``before-append`` (nothing written),
    ``after-append`` (record durable, in-memory apply never ran),
    ``torn-record`` (a half-written final record), ``mid-snapshot`` (a
    partial snapshot temp file, never renamed) or
    ``truncated-snapshot`` (a renamed snapshot with its tail cut off).
    SEQ pins the crash to one WAL batch sequence number; without it the
    first reached site fires.

The soundness contract (asserted by ``tests/oracle/test_faults.py``):
under any fault plan a run either returns the exact un-faulted answer
set, a flagged partial subset, or a structured error — never a
silently wrong answer.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from typing import Iterable, Optional

from ..datalog.errors import EvaluationError

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "WorkerDeath",
    "SchedulerFault",
    "InjectedUnitError",
    "WalCrash",
    "WAL_CRASH_POINTS",
    "parse_fault_specs",
]

#: the durability crash points ``wal-crash`` can simulate (see the
#: module docstring and :mod:`repro.engine.durability`)
WAL_CRASH_POINTS = frozenset(
    {
        "before-append",
        "after-append",
        "torn-record",
        "mid-snapshot",
        "truncated-snapshot",
    }
)


class InjectedFault(EvaluationError):
    """Base class for exceptions raised by deterministic fault
    injection.  Subclasses mark which degradation rung handles them."""


class WorkerDeath(InjectedFault):
    """A scheduled evaluation unit "died" (simulated worker-thread
    death).  Recoverable: the scheduler re-runs the unit sequentially
    and records a ``parallel->sequential`` degradation."""


class SchedulerFault(InjectedFault):
    """SCC scheduling failed before any unit ran.  Recoverable: the
    evaluator re-runs the strata through the monolithic loop and
    records an ``scc->monolithic`` degradation."""


class WalCrash(InjectedFault):
    """Simulated process death at a durability crash point.  *Not*
    recoverable in-process: the session lets it propagate with the
    batch half-done, exactly like a real kill, and correctness is
    re-established by :func:`repro.engine.recovery.recover` from the
    on-disk WAL and snapshots."""


class InjectedUnitError(RuntimeError):
    """A genuine (non-recoverable) error raised inside an evaluation
    unit.  Deliberately *not* an :class:`~repro.datalog.errors.ReproError`:
    nothing in the engine may catch it — it must surface verbatim."""


@dataclass(frozen=True)
class FaultPlan:
    """A declarative, deterministic set of faults for one evaluation.

    All fields default to "no fault"; combine freely.  Unit ordinals
    count scheduled unit *executions* in scheduling order (depth, then
    SCC index), starting at 0.
    """

    #: head predicates whose kernel compilation fails ("*" = every rule)
    kernel_compile: frozenset[str] = frozenset()
    #: batch-kernel selection fails; every rule runs on tuple kernels
    columnar: bool = False
    #: hash-index construction fails; the run degrades to full scans
    index_build: bool = False
    #: SCC scheduling fails at startup; fall back to the monolithic loop
    scheduler: bool = False
    #: ordinal of the unit that dies once with :class:`WorkerDeath`
    worker_death: Optional[int] = None
    #: ordinal of the unit that raises :class:`InjectedUnitError`
    unit_error: Optional[int] = None
    #: ordinal of the unit slowed by ``slow_s`` per boundary
    slow_unit: Optional[int] = None
    #: sleep per boundary for ``slow_unit`` (seconds)
    slow_s: float = 0.05
    #: durability crash point (one of :data:`WAL_CRASH_POINTS`), fired
    #: once per run as :class:`WalCrash` after the simulated damage
    wal_crash: Optional[str] = None
    #: WAL batch sequence number the crash is pinned to (None = the
    #: first site reached)
    wal_crash_seq: Optional[int] = None

    def __post_init__(self):
        object.__setattr__(self, "kernel_compile", frozenset(self.kernel_compile))
        if self.slow_s < 0:
            raise ValueError(f"slow_s must be >= 0, got {self.slow_s}")
        if self.wal_crash is not None and self.wal_crash not in WAL_CRASH_POINTS:
            raise ValueError(
                f"unknown wal-crash point {self.wal_crash!r}; expected one "
                f"of {sorted(WAL_CRASH_POINTS)}"
            )

    def any(self) -> bool:
        """True iff at least one fault is armed."""
        return bool(
            self.kernel_compile
            or self.columnar
            or self.index_build
            or self.scheduler
            or self.worker_death is not None
            or self.unit_error is not None
            or self.slow_unit is not None
            or self.wal_crash is not None
        )


def parse_fault_specs(specs: Iterable[str]) -> FaultPlan:
    """Build a :class:`FaultPlan` from CLI ``--inject-fault`` specs.

    Accepted forms: ``columnar``, ``kernel-compile``,
    ``kernel-compile:PRED``, ``index-build``, ``scheduler``,
    ``worker-death:N``, ``unit-error:N``, ``slow-unit:N``,
    ``slow-unit:N:SECONDS``, ``wal-crash:POINT`` and
    ``wal-crash:POINT:SEQ``.  Specs merge left to right into one plan.
    """
    plan = FaultPlan()
    for spec in specs:
        kind, _, rest = spec.partition(":")
        try:
            if kind == "wal-crash":
                point, _, seq = rest.partition(":")
                if point not in WAL_CRASH_POINTS:
                    raise ValueError
                plan = replace(plan, wal_crash=point)
                if seq:
                    plan = replace(plan, wal_crash_seq=int(seq))
            elif kind == "kernel-compile":
                plan = replace(
                    plan,
                    kernel_compile=plan.kernel_compile | {rest or "*"},
                )
            elif kind == "columnar" and not rest:
                plan = replace(plan, columnar=True)
            elif kind == "index-build" and not rest:
                plan = replace(plan, index_build=True)
            elif kind == "scheduler" and not rest:
                plan = replace(plan, scheduler=True)
            elif kind == "worker-death":
                plan = replace(plan, worker_death=int(rest))
            elif kind == "unit-error":
                plan = replace(plan, unit_error=int(rest))
            elif kind == "slow-unit":
                ordinal, _, seconds = rest.partition(":")
                plan = replace(plan, slow_unit=int(ordinal))
                if seconds:
                    plan = replace(plan, slow_s=float(seconds))
            else:
                raise ValueError
        except ValueError:
            raise EvaluationError(
                f"unknown fault spec {spec!r}; expected columnar, "
                f"kernel-compile[:pred], index-build, scheduler, "
                f"worker-death:N, unit-error:N, slow-unit:N[:seconds], "
                f"or wal-crash:POINT[:seq] with POINT one of "
                f"{sorted(WAL_CRASH_POINTS)}"
            ) from None
    return plan


class FaultInjector:
    """Per-run injection state for one :class:`FaultPlan`.

    Thread-safe: parallel evaluation units consult the same injector,
    and one-shot faults fire in exactly one of them.  Degradations are
    recorded at most once per ``(kind, key)`` so counters stay small
    and deterministic.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._fired: set = set()

    def _once(self, key) -> bool:
        """True the first time *key* is seen, False afterwards."""
        with self._lock:
            if key in self._fired:
                return False
            self._fired.add(key)
            return True

    # -- injection sites -----------------------------------------------------

    def kernel_compile_fails(self, head_predicate: str) -> bool:
        """Should the kernel for a rule heading *head_predicate* fail?"""
        kc = self.plan.kernel_compile
        return bool(kc) and ("*" in kc or head_predicate in kc)

    def columnar_fails(self) -> bool:
        """Should batch-kernel selection fail (for every rule)?"""
        return self.plan.columnar

    def index_build_fails(self) -> bool:
        return self.plan.index_build

    def scheduler_fails(self) -> bool:
        return self.plan.scheduler

    def maybe_kill_unit(self, ordinal: int, label: str) -> None:
        """Raise the armed per-unit fault for *ordinal*, at most once."""
        if self.plan.worker_death == ordinal and self._once(("death", ordinal)):
            raise WorkerDeath(
                f"injected worker death in unit {ordinal} ({label})"
            )

    def maybe_unit_error(self, ordinal: int, label: str) -> None:
        if self.plan.unit_error == ordinal and self._once(("error", ordinal)):
            raise InjectedUnitError(
                f"injected unit error in unit {ordinal} ({label})"
            )

    def slow_down(self, ordinal: Optional[int]) -> None:
        """Sleep if *ordinal* is the plan's slow unit (every boundary)."""
        if ordinal is not None and self.plan.slow_unit == ordinal:
            time.sleep(self.plan.slow_s)

    def wal_crash_fires(self, point: str, seq: int) -> bool:
        """Should the durability layer simulate a crash at *point* for
        WAL batch *seq*?  Fires at most once per injector (the process
        only dies once); the caller performs the simulated disk damage
        and raises :class:`WalCrash`."""
        plan = self.plan
        if plan.wal_crash != point:
            return False
        if plan.wal_crash_seq is not None and plan.wal_crash_seq != seq:
            return False
        return self._once(("wal-crash",))

    # -- bookkeeping ---------------------------------------------------------

    def record(self, stats, degradation: str, key=None) -> None:
        """Count one injected fault and its degradation, once per
        ``(degradation, key)``; *stats* may be a unit-private fragment —
        dict counters merge at the scheduler's barrier."""
        if self._once(("record", degradation, key)):
            stats.faults_injected += 1
            stats.degradations[degradation] = (
                stats.degradations.get(degradation, 0) + 1
            )
