"""Derivation trees (section 1.1 of the paper).

For each fact in a derived predicate there is a finite derivation tree:
the fact at the root, base facts at the leaves, and each internal node
labeled by the rule that generates its fact from the facts labeling its
children.  The engine records, for every derived fact, the *first*
justification that produced it; :func:`derivation_tree` reconstructs the
corresponding tree.  Trees are used by tests to validate the engine and
to illustrate the replacement argument of Lemma 5.1's proof sketch
(a subtree rooted at an occurrence ``p.n`` can be re-rooted under the
query via a unit rule ``p.k``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

__all__ = ["DerivationTree", "Justification", "derivation_tree"]

FactKey = Tuple[str, tuple]  # (predicate, row)


@dataclass(frozen=True)
class Justification:
    """Why a fact holds: the rule index and the body facts it consumed."""

    rule_index: int
    body: tuple[FactKey, ...]


@dataclass(frozen=True)
class DerivationTree:
    """A derivation tree; ``rule_index`` is None at base-fact leaves."""

    predicate: str
    row: tuple
    rule_index: Optional[int]
    children: tuple["DerivationTree", ...] = ()

    @property
    def is_leaf(self) -> bool:
        return self.rule_index is None

    def height(self) -> int:
        """Height per the paper's convention: a base fact has height 1."""
        if not self.children:
            return 1
        return 1 + max(c.height() for c in self.children)

    def size(self) -> int:
        """Number of nodes in the tree."""
        return 1 + sum(c.size() for c in self.children)

    def facts(self) -> frozenset[FactKey]:
        """All facts labeling nodes of the tree."""
        out = {(self.predicate, self.row)}
        for c in self.children:
            out |= c.facts()
        return frozenset(out)

    def render(self, indent: int = 0) -> str:
        """A human-readable multi-line rendering."""
        label = f"{self.predicate}{self.row!r}"
        if self.rule_index is not None:
            label += f"  [rule {self.rule_index}]"
        lines = ["  " * indent + label]
        for c in self.children:
            lines.append(c.render(indent + 1))
        return "\n".join(lines)


def derivation_tree(
    provenance: Mapping[FactKey, Justification],
    predicate: str,
    row: tuple,
    _depth_guard: Optional[set] = None,
) -> DerivationTree:
    """Reconstruct the derivation tree of ``predicate(row)``.

    Facts absent from *provenance* are base facts (leaves).  Because the
    engine records the first justification of every fact, and a fact's
    first justification can only consume facts derived strictly earlier,
    the reconstruction always terminates; the guard set is a defensive
    check against corrupted provenance maps.
    """
    key: FactKey = (predicate, row)
    guard = _depth_guard if _depth_guard is not None else set()
    if key in guard:
        raise ValueError(f"cyclic provenance at {key}")
    just = provenance.get(key)
    if just is None:
        return DerivationTree(predicate, row, None)
    guard.add(key)
    children = tuple(
        derivation_tree(provenance, p, r, guard) for p, r in just.body
    )
    guard.discard(key)
    return DerivationTree(predicate, row, just.rule_index, children)
