"""Bottom-up evaluation engine: plans, fixpoints, provenance, statistics.

Public entry point: :func:`evaluate`.

>>> from repro.datalog import parse, Database
>>> from repro.engine import evaluate
>>> program = parse('''
...     tc(X, Y) :- edge(X, Y).
...     tc(X, Y) :- edge(X, Z), tc(Z, Y).
...     ?- tc(1, Y).
... ''')
>>> db = Database.from_dict({"edge": [(1, 2), (2, 3)]})
>>> sorted(evaluate(program, db).answers())
[(2,), (3,)]
"""

from .cost import (
    AdaptiveReplanner,
    BoundCostModel,
    CostModel,
    RelationProfile,
    bucket_size,
    profile_database,
    rule_intermediate_bound,
)
from .durability import (
    DurabilityConfig,
    DurableLog,
    WriteAheadLog,
    flag_signature,
    list_snapshots,
    load_snapshot,
    read_wal,
)
from .evaluator import EngineOptions, EvalResult, answers_of, evaluate
from .incremental import IncrementalSession
from .recovery import RecoveryReport, recover
from .prepared import (
    PreparedProgram,
    clear_prepared_cache,
    prepare,
    prepared_cache_stats,
)
from .faults import (
    WAL_CRASH_POINTS,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    InjectedUnitError,
    SchedulerFault,
    WalCrash,
    WorkerDeath,
    parse_fault_specs,
)
from .governor import Governor, Guard, ResourceExhausted
from .kernel import (
    KernelError,
    clear_kernel_cache,
    kernel_cache_stats,
    kernel_source,
    rule_kernel,
)
from .plan import CompiledRule, DeltaIndex, LiteralPlan, compile_rule, order_body
from .provenance import DerivationTree, Justification, derivation_tree
from .scheduler import EvalUnit, build_units, run_seeded_unit
from .statistics import EvalStats
from .topdown import TopDownResult, evaluate_topdown

__all__ = [
    "EngineOptions",
    "EvalResult",
    "evaluate",
    "answers_of",
    "IncrementalSession",
    "DurabilityConfig",
    "DurableLog",
    "WriteAheadLog",
    "flag_signature",
    "read_wal",
    "load_snapshot",
    "list_snapshots",
    "recover",
    "RecoveryReport",
    "WalCrash",
    "WAL_CRASH_POINTS",
    "PreparedProgram",
    "prepare",
    "prepared_cache_stats",
    "clear_prepared_cache",
    "Governor",
    "Guard",
    "ResourceExhausted",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "InjectedUnitError",
    "SchedulerFault",
    "WorkerDeath",
    "parse_fault_specs",
    "CompiledRule",
    "DeltaIndex",
    "LiteralPlan",
    "compile_rule",
    "order_body",
    "CostModel",
    "BoundCostModel",
    "AdaptiveReplanner",
    "RelationProfile",
    "profile_database",
    "bucket_size",
    "rule_intermediate_bound",
    "KernelError",
    "kernel_source",
    "rule_kernel",
    "kernel_cache_stats",
    "clear_kernel_cache",
    "DerivationTree",
    "Justification",
    "derivation_tree",
    "EvalUnit",
    "build_units",
    "run_seeded_unit",
    "EvalStats",
    "TopDownResult",
    "evaluate_topdown",
]
