"""Durable session runtime: write-ahead log + columnar snapshots.

An :class:`~repro.engine.incremental.IncrementalSession` today lives and
dies with its process: a crash mid-batch loses the materialized fixpoint
and every update since load.  This module makes a session *durable*:

**Write-ahead log.**  Every accepted ``insert``/``retract`` batch is
appended to a per-session WAL *before* it is applied in memory, as a
length-prefixed, CRC32-checksummed JSON record carrying the batch
sequence number, the engine-flag signature, and the batch's base facts.
The fsync policy is configurable: ``always`` (flush + ``os.fsync`` per
record — survives power loss), ``batch`` (flush per record — survives
process death, the serving default) or ``off`` (OS-buffered — fastest,
weakest).  Append happens before apply, so a record's presence means
the batch was *accepted*; replaying it through the seeded IVM path
reproduces the exact post-batch state even when the original process
died mid-apply (or the batch tripped a governor limit and left only a
partial lower bound in memory).

**Columnar snapshots.**  Periodically — every ``snapshot_every``
batches, past ``max_wal_bytes`` of log, past ``max_wal_age_s`` of log
age, or on a forced ``.checkpoint`` — the materialized state is
serialized through the columnar plane: each relation's
:class:`~repro.datalog.columnar.ColumnStore` provides dict-encoded
int64 columns, and the snapshot embeds the id → value interning table
those columns reference.  Loading decodes by direct table indexing —
no per-cell re-interning against the process dictionary, and no
dependence on the current dictionary epoch (the satellite test clears
the dictionary and the prepared cache between write and load).  Writes
are atomic (temp file + fsync + rename) and verified by per-section
CRCs on load, so a torn snapshot is *detected*, never half-loaded.

**Snapshot-then-truncate compaction.**  After a snapshot at sequence
``S`` the WAL is rewritten to drop records already folded into the
*oldest retained* snapshot: ``keep_snapshots`` snapshots are kept (≥ 2
recommended), so a snapshot that later turns out corrupt still has an
older anchor whose replay suffix survives in the log.

Recovery itself — newest-valid-snapshot selection, suffix replay, and
the structured refusal rules — lives in :mod:`repro.engine.recovery`.

**Crash points.**  :class:`~repro.engine.faults.FaultPlan` can arm
``wal-crash:POINT[:SEQ]``; the injector hooks in this module perform
exactly the disk damage a real crash at that point leaves behind
(nothing, a durable-but-unapplied record, a torn final record, a
partial snapshot temp file, a truncated snapshot) and then raise
:class:`~repro.engine.faults.WalCrash`, which the session lets
propagate — the recovery oracle then rebuilds from the damaged files
and compares against from-scratch evaluation.
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping, Optional

from ..datalog.database import Database, Relation
from ..datalog.errors import DurabilityError, RecoveryError
from .governor import BudgetExceeded

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .evaluator import EngineOptions
    from .incremental import IncrementalSession

__all__ = [
    "DurabilityConfig",
    "DurableLog",
    "WriteAheadLog",
    "Snapshot",
    "WalData",
    "flag_signature",
    "program_signature",
    "read_wal",
    "load_snapshot",
    "list_snapshots",
    "write_snapshot",
    "WAL_MAGIC",
    "SNAPSHOT_MAGIC",
]

#: file magics, versioned by suffix digit — bump on layout change
WAL_MAGIC = b"RWAL1\n"
SNAPSHOT_MAGIC = b"RSNAP1\n"

#: every frame is ``<u32 payload length> <u32 crc32(payload)> payload``
_FRAME = struct.Struct("<II")

#: the engine flags that participate in the WAL/snapshot signature:
#: the knobs that select *which engine* maintained the state.  Replay
#: under a different engine configuration is refused (or degraded to
#: the from-scratch rung) rather than trusted.
_SIGNATURE_FIELDS = (
    "strategy",
    "use_indexes",
    "use_kernels",
    "use_columnar",
    "use_cost_planner",
    "use_scc",
    "cut_predicates",
)

#: the only value types the JSON codec round-trips losslessly; exact
#: type check on purpose (a tuple would silently come back as a list)
_SCALARS = (str, int, float, bool)


def flag_signature(options: "EngineOptions") -> str:
    """The canonical engine-flag signature recorded with every WAL
    record and snapshot; drift between writer and recoverer is refused
    (see :class:`~repro.datalog.errors.RecoveryError`)."""
    parts = []
    for name in _SIGNATURE_FIELDS:
        value = getattr(options, name)
        if isinstance(value, frozenset):
            value = ",".join(sorted(value))
        parts.append(f"{name}={value}")
    return ";".join(parts)


def program_signature(program) -> str:
    """CRC of the canonical program text (``str(program)`` — the same
    canonical form the prepared-program cache keys on).  A WAL replayed
    against a different program would be silently wrong; the signature
    makes it a structured refusal instead."""
    text = str(program).encode("utf-8")
    return f"{zlib.crc32(text) & 0xFFFFFFFF:08x}:{len(text)}"


@dataclass(frozen=True)
class DurabilityConfig:
    """Opt-in durability settings for one session.

    wal_path
        The write-ahead log file; snapshots live next to it as
        ``<wal_path>.snap-<seq>``.
    fsync
        ``"always"`` / ``"batch"`` / ``"off"`` (see module docstring).
    snapshot_every
        Automatic snapshot every N accepted batches (0 = only forced
        ``.checkpoint`` snapshots and the size/age policy below).
    max_wal_bytes / max_wal_age_s
        Additional compaction triggers: snapshot as soon as the log
        exceeds this size / this age since its last compaction.
    keep_snapshots
        Snapshots retained after compaction.  The WAL is only truncated
        up to the *oldest retained* snapshot, so with the default 2 a
        corrupt newest snapshot degrades to the previous one plus a
        longer replay instead of an unrecoverable gap.
    on_flag_drift
        What :func:`~repro.engine.recovery.recover` does when the
        recorded engine-flag signature differs from the recovering
        options: ``"refuse"`` (default) raises
        :class:`~repro.datalog.errors.RecoveryError`; ``"scratch"``
        degrades to from-scratch re-evaluation over the reconstructed
        EDB — the ``recovery->scratch`` rung of the degradation ladder.
    """

    wal_path: str
    fsync: str = "batch"
    snapshot_every: int = 64
    max_wal_bytes: Optional[int] = None
    max_wal_age_s: Optional[float] = None
    keep_snapshots: int = 2
    on_flag_drift: str = "refuse"

    def __post_init__(self):
        if self.fsync not in ("always", "batch", "off"):
            raise DurabilityError(
                f"fsync must be 'always', 'batch' or 'off', got {self.fsync!r}"
            )
        if self.snapshot_every < 0:
            raise DurabilityError(
                f"snapshot_every must be >= 0, got {self.snapshot_every}"
            )
        if self.keep_snapshots < 1:
            raise DurabilityError(
                f"keep_snapshots must be >= 1, got {self.keep_snapshots}"
            )
        if self.on_flag_drift not in ("refuse", "scratch"):
            raise DurabilityError(
                f"on_flag_drift must be 'refuse' or 'scratch', "
                f"got {self.on_flag_drift!r}"
            )
        if self.max_wal_bytes is not None and self.max_wal_bytes < 0:
            raise DurabilityError(
                f"max_wal_bytes must be >= 0, got {self.max_wal_bytes}"
            )
        if self.max_wal_age_s is not None and self.max_wal_age_s < 0:
            raise DurabilityError(
                f"max_wal_age_s must be >= 0, got {self.max_wal_age_s}"
            )

    def snapshot_path(self, seq: int) -> Path:
        return Path(f"{self.wal_path}.snap-{seq:010d}")

    def snapshot_glob(self) -> list[Path]:
        base = Path(self.wal_path)
        return sorted(base.parent.glob(base.name + ".snap-*"))


# ---------------------------------------------------------------------------
# framing


def _encode_rows(rows: Iterable[tuple]) -> list[list]:
    out = []
    for row in rows:
        for v in row:
            if type(v) not in _SCALARS:
                raise DurabilityError(
                    f"value {v!r} of type {type(v).__name__} cannot be "
                    f"logged durably; WAL/snapshot values must be "
                    f"str/int/float/bool"
                )
        out.append(list(row))
    out.sort(key=repr)
    return out


def _frame(payload: bytes) -> bytes:
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def _read_frame(buf: bytes, offset: int):
    """Parse one frame at *offset*.  Returns ``(payload, next_offset)``
    or ``(None, offset)`` when the remaining bytes are a *torn* frame
    (shorter than their declared length — the shape an interrupted
    append leaves).  A complete frame with a bad CRC is *corruption*,
    reported as ``(False, offset)`` — the caller decides whether its
    position (final vs mid-file) makes it a tear or a refusal."""
    end = len(buf)
    if offset + _FRAME.size > end:
        return None, offset
    length, crc = _FRAME.unpack_from(buf, offset)
    start = offset + _FRAME.size
    if start + length > end:
        return None, offset
    payload = buf[start:start + length]
    if zlib.crc32(payload) != crc:
        return False, offset
    return payload, start + length


# ---------------------------------------------------------------------------
# the write-ahead log


class WriteAheadLog:
    """Append side of one session's WAL (see the module docstring for
    the on-disk layout)."""

    def __init__(self, path: str, fsync: str, header: dict, next_seq: int):
        self.path = str(path)
        self.fsync = fsync
        self.header = header
        self.next_seq = next_seq
        self._file = None

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def create(
        cls, path: str, fsync: str, flags: str, program: str, base_seq: int
    ) -> "WriteAheadLog":
        """Write a fresh (empty) log whose records will start at
        ``base_seq + 1``."""
        header = {
            "version": 1,
            "flags": flags,
            "program": program,
            "base_seq": base_seq,
            "created": time.time(),
        }
        wal = cls(path, fsync, header, base_seq + 1)
        f = open(path, "wb")
        f.write(WAL_MAGIC)
        f.write(_frame(json.dumps(header, sort_keys=True).encode("utf-8")))
        f.flush()
        if fsync != "off":
            os.fsync(f.fileno())
        wal._file = f
        return wal

    @classmethod
    def open_append(
        cls,
        path: str,
        fsync: str,
        header: dict,
        next_seq: int,
        truncate_at: Optional[int] = None,
    ) -> "WriteAheadLog":
        """Reopen an existing, already-validated log for appending;
        *truncate_at* drops a torn tail first (recovery's repair)."""
        wal = cls(path, fsync, header, next_seq)
        f = open(path, "r+b")
        if truncate_at is not None:
            f.truncate(truncate_at)
        f.seek(0, os.SEEK_END)
        wal._file = f
        return wal

    def close(self) -> None:
        f = self._file
        if f is not None and not f.closed:
            f.flush()
            f.close()

    # -- appending -----------------------------------------------------------

    def size(self) -> int:
        self._file.flush()
        return os.fstat(self._file.fileno()).st_size

    def age_s(self) -> float:
        return max(0.0, time.time() - self.header.get("created", time.time()))

    def append(
        self,
        kind: str,
        facts: Mapping[str, Iterable[tuple]],
        injector=None,
    ) -> int:
        """Append one accepted batch; returns its sequence number.

        The payload is fully serialized (and every value vetted for
        round-trippability) *before* the first byte is written, so a
        :class:`~repro.datalog.errors.DurabilityError` never leaves a
        partial record behind."""
        from .faults import WalCrash

        seq = self.next_seq
        record = {
            "seq": seq,
            "kind": kind,
            "flags": self.header["flags"],
            "facts": {p: _encode_rows(facts[p]) for p in sorted(facts)},
        }
        payload = json.dumps(
            record, sort_keys=True, allow_nan=False
        ).encode("utf-8")
        framed = _frame(payload)
        f = self._file
        if injector is not None and injector.wal_crash_fires("before-append", seq):
            raise WalCrash(f"injected crash before WAL append of seq {seq}")
        if injector is not None and injector.wal_crash_fires("torn-record", seq):
            # a real torn append: the frame header promises more bytes
            # than ever reached the disk
            f.write(framed[: _FRAME.size + max(1, len(payload) // 2)])
            f.flush()
            raise WalCrash(f"injected torn WAL record at seq {seq}")
        f.write(framed)
        if self.fsync == "always":
            f.flush()
            os.fsync(f.fileno())
        elif self.fsync == "batch":
            f.flush()
        self.next_seq = seq + 1
        if injector is not None and injector.wal_crash_fires("after-append", seq):
            f.flush()
            raise WalCrash(f"injected crash after WAL append of seq {seq}")
        return seq

    def compact(self, base_seq: int, keep_records: list[dict]) -> None:
        """Atomically rewrite the log with a fresh header at *base_seq*
        keeping only *keep_records* (snapshot-then-truncate)."""
        header = dict(self.header)
        header["base_seq"] = base_seq
        header["created"] = time.time()
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as f:
            f.write(WAL_MAGIC)
            f.write(_frame(json.dumps(header, sort_keys=True).encode("utf-8")))
            for record in keep_records:
                f.write(
                    _frame(
                        json.dumps(
                            record, sort_keys=True, allow_nan=False
                        ).encode("utf-8")
                    )
                )
            f.flush()
            os.fsync(f.fileno())
        self.close()
        os.replace(tmp, self.path)
        self.header = header
        f = open(self.path, "r+b")
        f.seek(0, os.SEEK_END)
        self._file = f


@dataclass
class WalData:
    """The validated contents of one WAL file (see :func:`read_wal`)."""

    header: dict
    records: list[dict]
    #: byte offset where a torn final record starts (None = clean tail);
    #: recovery truncates here before appending resumes
    torn_offset: Optional[int]
    #: total bytes of valid frames (== file size when not torn)
    end_offset: int

    @property
    def base_seq(self) -> int:
        return self.header["base_seq"]

    @property
    def last_seq(self) -> int:
        return self.records[-1]["seq"] if self.records else self.base_seq


def read_wal(path: str) -> WalData:
    """Parse and validate a WAL file.

    Tolerates exactly one kind of damage — an incomplete or
    CRC-mismatched **final** record (the artifact an interrupted append
    leaves) — reporting it as a torn tail.  Everything else is a
    structured :class:`~repro.datalog.errors.RecoveryError`: a bad
    magic/header, a mid-file checksum mismatch, a sequence gap, or a
    record whose flag signature differs from the header's.
    """
    try:
        with open(path, "rb") as f:
            buf = f.read()
    except OSError as exc:
        raise RecoveryError("missing-wal", f"cannot read WAL {path}: {exc}") from exc
    if not buf.startswith(WAL_MAGIC):
        raise RecoveryError("bad-header", f"{path} is not a WAL file (bad magic)")
    offset = len(WAL_MAGIC)
    payload, offset = _read_frame(buf, offset)
    if payload in (None, False):
        raise RecoveryError(
            "bad-header", f"{path}: WAL header frame is torn or corrupt"
        )
    try:
        header = json.loads(payload)
    except ValueError as exc:
        raise RecoveryError(
            "bad-header", f"{path}: WAL header is not valid JSON: {exc}"
        ) from exc
    if not isinstance(header, dict) or "base_seq" not in header:
        raise RecoveryError("bad-header", f"{path}: WAL header missing base_seq")

    records: list[dict] = []
    expected = header["base_seq"] + 1
    torn_offset: Optional[int] = None
    while offset < len(buf):
        payload, next_offset = _read_frame(buf, offset)
        if payload is None:
            # bytes run out mid-frame: a torn append — only tolerable
            # at the very end, which this is by construction
            torn_offset = offset
            break
        if payload is False:
            # complete frame, bad checksum.  At the tail this is the
            # other face of a torn append (the length landed, part of
            # the payload did not); anywhere else it is corruption.
            length, _ = _FRAME.unpack_from(buf, offset)
            if offset + _FRAME.size + length >= len(buf):
                torn_offset = offset
                break
            raise RecoveryError(
                "checksum-mismatch",
                f"{path}: WAL record after seq {expected - 1} fails its "
                f"checksum mid-log",
                record=expected,
            )
        try:
            record = json.loads(payload)
        except ValueError as exc:
            raise RecoveryError(
                "checksum-mismatch",
                f"{path}: WAL record {expected} is not valid JSON: {exc}",
                record=expected,
            ) from exc
        seq = record.get("seq")
        if seq != expected:
            raise RecoveryError(
                "sequence-gap",
                f"{path}: expected WAL seq {expected}, found {seq}",
                record=seq,
            )
        if record.get("flags") != header.get("flags"):
            raise RecoveryError(
                "flag-drift",
                f"{path}: WAL record {seq} was written under engine flags "
                f"{record.get('flags')!r} but the log header says "
                f"{header.get('flags')!r}",
                record=seq,
            )
        record["facts"] = {
            p: [tuple(r) for r in rows]
            for p, rows in record.get("facts", {}).items()
        }
        records.append(record)
        expected += 1
        offset = next_offset
    return WalData(header, records, torn_offset, offset)


# ---------------------------------------------------------------------------
# columnar snapshots


@dataclass
class Snapshot:
    """A decoded snapshot: the materialized database plus the session
    bookkeeping needed to resume maintenance (see :func:`load_snapshot`)."""

    seq: int
    flags: str
    program: str
    #: True iff the state was a governed partial lower bound when
    #: written; seeded replay from a dirty anchor is unsound, so
    #: recovery takes the from-scratch rung instead
    dirty: bool
    db: Database
    #: given (retractable) rows of derived predicates — the session's
    #: ``_initial`` map
    initial: dict[str, set]
    path: str


def _snapshot_entries(db: Database, initial: Mapping[str, set]):
    """Yield ``(name, kind, arity, rows)`` for everything a snapshot
    persists: every relation (rows None — the columnar image is the
    source), then the initial-IDB row sets."""
    for pred in sorted(db.predicates()):
        rel = db.relation(pred)
        yield pred, "relation", rel.arity, None
    for pred in sorted(initial):
        rows = initial[pred]
        if not rows:
            continue
        arity = len(next(iter(rows)))
        yield pred, "initial", arity, rows


def write_snapshot(
    config: DurabilityConfig,
    seq: int,
    db: Database,
    initial: Mapping[str, set],
    flags: str,
    program: str,
    dirty: bool,
    *,
    stats=None,
    guard=None,
    injector=None,
) -> Path:
    """Serialize the session state through the columnar plane into
    ``<wal>.snap-<seq>``, atomically (temp + fsync + rename).

    Columns come from each relation's
    :meth:`~repro.datalog.database.Relation.column_store` — the same
    dict-encoded int64 arrays the batch kernels run on — and the
    embedded ``dict`` table is the id → value prefix those columns
    reference, captured after every store is built so all ids resolve.
    *guard* (a :class:`~repro.engine.governor.Guard`) is checkpointed
    between relations, so snapshot work counts against the batch's
    deadline like any other engine work.
    """
    from ..datalog.columnar import global_dictionary
    from .faults import WalCrash

    entries = []
    stores = []
    for name, kind, arity, rows in _snapshot_entries(db, initial):
        if guard is not None and stats is not None:
            guard.checkpoint(stats)
        if kind == "relation":
            store = db.relation(name).column_store()
            nrows = len(store.columns[0]) if arity else len(db.relation(name))
            if arity and nrows != len(db.relation(name)):  # pragma: no cover
                raise DurabilityError(
                    f"columnar image of {name!r} has {nrows} rows but the "
                    f"relation holds {len(db.relation(name))}"
                )
            columns = store.columns
        else:
            # initial-IDB row sets are tiny; encode them through the
            # same dictionary so one embedded table serves everything
            dictionary = global_dictionary()
            enc = sorted(dictionary.intern_row(r) for r in rows)
            from array import array

            columns = [array("q", (r[p] for r in enc)) for p in range(arity)]
            nrows = len(enc)
        entries.append(
            {"name": name, "kind": kind, "arity": arity, "rows": nrows}
        )
        stores.append(columns)

    # captured AFTER all stores exist: building a store may intern
    # values, and every id used above must resolve in this table
    values = list(global_dictionary().values_list())
    for v in values:
        if type(v) not in _SCALARS:
            raise DurabilityError(
                f"interned value {v!r} of type {type(v).__name__} cannot "
                f"be snapshotted; values must be str/int/float/bool"
            )
    header = {
        "version": 1,
        "seq": seq,
        "flags": flags,
        "program": program,
        "dirty": dirty,
        "byteorder": __import__("sys").byteorder,
        "dict": values,
        "entries": entries,
    }

    path = config.snapshot_path(seq)
    tmp = Path(str(path) + ".tmp")
    f = open(tmp, "wb")
    try:
        f.write(SNAPSHOT_MAGIC)
        f.write(_frame(json.dumps(header, sort_keys=True, allow_nan=False).encode("utf-8")))
        for i, columns in enumerate(stores):
            if guard is not None and stats is not None:
                guard.checkpoint(stats)
            blob = b"".join(
                col.tobytes() if hasattr(col, "tobytes") else bytes(col)
                for col in columns
            )
            f.write(_frame(blob))
            if (
                injector is not None
                and i == 0
                and injector.wal_crash_fires("mid-snapshot", seq)
            ):
                f.flush()
                raise WalCrash(
                    f"injected crash mid-snapshot at seq {seq} "
                    f"(partial temp file left behind)"
                )
        f.flush()
        os.fsync(f.fileno())
    except BaseException:
        f.close()
        raise
    f.close()
    os.replace(tmp, path)
    if injector is not None and injector.wal_crash_fires("truncated-snapshot", seq):
        with open(path, "r+b") as g:
            size = os.fstat(g.fileno()).st_size
            g.truncate(max(len(SNAPSHOT_MAGIC), size - max(16, size // 4)))
        raise WalCrash(
            f"injected truncated snapshot at seq {seq} "
            f"(tail cut after rename)"
        )
    return path


def list_snapshots(config: DurabilityConfig) -> list[Path]:
    """Snapshot files next to the WAL, newest (highest seq) first;
    leftover ``.tmp`` files from interrupted writes are ignored."""
    out = [p for p in config.snapshot_glob() if not p.name.endswith(".tmp")]
    out.sort(key=lambda p: p.name, reverse=True)
    return out


def _snapshot_damage(path, message: str) -> RecoveryError:
    return RecoveryError("snapshot-corrupt", message, record=str(path))


def load_snapshot(path) -> Snapshot:
    """Decode one snapshot file; raises a structured
    :class:`~repro.datalog.errors.RecoveryError` (``snapshot-corrupt``)
    on any damage — a truncated file, a failed CRC, or a row-count
    mismatch — so a bad snapshot is skipped, never half-trusted.

    Decoding is intern-free: column ids index the embedded value table
    directly, and rows enter each relation through
    :meth:`~repro.datalog.database.Relation.bulk_load` (the columnar
    image rebuilds lazily the first time the batch engine needs it).
    """
    import sys as _sys
    from array import array

    try:
        with open(path, "rb") as f:
            buf = f.read()
    except OSError as exc:
        raise _snapshot_damage(path, f"cannot read snapshot: {exc}") from exc
    if not buf.startswith(SNAPSHOT_MAGIC):
        raise _snapshot_damage(path, f"{path} is not a snapshot (bad magic)")
    offset = len(SNAPSHOT_MAGIC)
    payload, offset = _read_frame(buf, offset)
    if payload in (None, False):
        raise _snapshot_damage(path, f"{path}: snapshot header torn or corrupt")
    try:
        header = json.loads(payload)
    except ValueError as exc:
        raise _snapshot_damage(path, f"{path}: header is not JSON: {exc}") from exc
    values = header.get("dict", [])
    swap = header.get("byteorder") != _sys.byteorder

    db = Database()
    initial: dict[str, set] = {}
    for entry in header.get("entries", ()):
        payload, offset = _read_frame(buf, offset)
        if payload in (None, False):
            raise _snapshot_damage(
                path,
                f"{path}: data section for {entry.get('name')!r} is torn "
                f"or fails its checksum",
            )
        name, kind = entry["name"], entry["kind"]
        arity, nrows = entry["arity"], entry["rows"]
        if len(payload) != arity * nrows * 8:
            raise _snapshot_damage(
                path,
                f"{path}: section for {name!r} holds {len(payload)} bytes, "
                f"expected {arity * nrows * 8}",
            )
        if arity == 0:
            rows = [()] * nrows
        else:
            ids = array("q")
            ids.frombytes(payload)
            if swap:
                ids.byteswap()
            try:
                cols = [
                    list(map(values.__getitem__, ids[p * nrows:(p + 1) * nrows]))
                    for p in range(arity)
                ]
            except IndexError as exc:
                raise _snapshot_damage(
                    path,
                    f"{path}: section for {name!r} references an id beyond "
                    f"the embedded dictionary",
                ) from exc
            rows = list(zip(*cols)) if arity > 1 else [(v,) for v in cols[0]]
        if kind == "relation":
            db.ensure(name, arity).bulk_load(rows)
        else:
            initial[name] = set(rows)
    return Snapshot(
        seq=header["seq"],
        flags=header.get("flags", ""),
        program=header.get("program", ""),
        dirty=bool(header.get("dirty", False)),
        db=db,
        initial=initial,
        path=str(path),
    )


# ---------------------------------------------------------------------------
# the session-facing coordinator


class DurableLog:
    """One session's durability runtime: WAL appends, the snapshot
    policy, and snapshot-then-truncate compaction."""

    def __init__(self, config: DurabilityConfig, wal: WriteAheadLog):
        self.config = config
        self.wal = wal
        self._batches_since_snapshot = 0
        #: a policy snapshot that had to be skipped (partial state or a
        #: tripped governor); retried after the next clean batch
        self._pending_snapshot = False

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def create(
        cls, config: DurabilityConfig, session: "IncrementalSession"
    ) -> "DurableLog":
        """Start durability for a freshly materialized session: write
        the baseline snapshot (seq 0) and a fresh WAL, so recovery is
        self-contained from the first batch on."""
        flags = flag_signature(session.options)
        program = program_signature(session.program)
        for stale in config.snapshot_glob():
            stale.unlink(missing_ok=True)
        Path(config.wal_path).parent.mkdir(parents=True, exist_ok=True)
        write_snapshot(
            config, 0, session.db, session._initial, flags, program,
            session.is_partial,
        )
        wal = WriteAheadLog.create(config.wal_path, config.fsync, flags, program, 0)
        log = cls(config, wal)
        session.stats.snapshots_written += 1
        return log

    @classmethod
    def attach(
        cls,
        config: DurabilityConfig,
        wal: WriteAheadLog,
        batches_since_snapshot: int = 0,
    ) -> "DurableLog":
        """Resume durability on recovered state (recovery already
        validated and, if needed, repaired the log)."""
        log = cls(config, wal)
        log._batches_since_snapshot = batches_since_snapshot
        return log

    def close(self) -> None:
        self.wal.close()

    # -- the per-batch hooks -------------------------------------------------

    def append_batch(self, kind: str, facts, stats, injector=None) -> int:
        seq = self.wal.append(kind, facts, injector=injector)
        stats.wal_appends += 1
        self._batches_since_snapshot += 1
        return seq

    def _snapshot_due(self) -> bool:
        if self._pending_snapshot:
            return True
        cfg = self.config
        if cfg.snapshot_every and self._batches_since_snapshot >= cfg.snapshot_every:
            return True
        if cfg.max_wal_bytes is not None and self.wal.size() > cfg.max_wal_bytes:
            return True
        if cfg.max_wal_age_s is not None and self.wal.age_s() > cfg.max_wal_age_s:
            return True
        return False

    def maybe_snapshot(
        self, session: "IncrementalSession", stats, governor, injector=None
    ) -> bool:
        """Apply the snapshot policy after an applied batch.

        A partial (governed lower-bound) state is never snapshotted —
        seeded replay from a non-fixpoint anchor would be unsound — and
        a governor trip *during* the snapshot abandons the temp file
        and defers: the previous snapshot stays valid and the policy
        retries after the next batch.  Neither case fails the batch,
        which is already applied and logged.
        """
        if not self._snapshot_due():
            return False
        if session.is_partial:
            self._pending_snapshot = True
            return False
        guard = governor.guard(unit="snapshot") if governor is not None else None
        try:
            self.checkpoint(session, stats, guard=guard, injector=injector)
        except BudgetExceeded:
            self._pending_snapshot = True
            stats.degradations["snapshot->deferred"] = (
                stats.degradations.get("snapshot->deferred", 0) + 1
            )
            tmp = Path(str(self.config.snapshot_path(self.wal.next_seq - 1)) + ".tmp")
            tmp.unlink(missing_ok=True)
            return False
        return True

    def checkpoint(
        self, session: "IncrementalSession", stats, *, guard=None, injector=None
    ) -> int:
        """Write a snapshot of the current state at the last appended
        sequence number, then compact the WAL up to the oldest retained
        snapshot.  Returns the snapshot's sequence number."""
        seq = self.wal.next_seq - 1
        write_snapshot(
            self.config, seq, session.db, session._initial,
            self.wal.header["flags"], self.wal.header["program"],
            session.is_partial,
            stats=stats, guard=guard, injector=injector,
        )
        stats.snapshots_written += 1
        self._batches_since_snapshot = 0
        self._pending_snapshot = False
        self._compact(seq)
        return seq

    def _compact(self, newest_seq: int) -> None:
        """Snapshot-then-truncate: retain ``keep_snapshots`` snapshot
        files, then drop WAL records already folded into the *oldest*
        retained one (so a corrupt newest snapshot still has a replay
        anchor)."""
        snapshots = list_snapshots(self.config)
        keep = snapshots[: self.config.keep_snapshots]
        for stale in snapshots[self.config.keep_snapshots:]:
            stale.unlink(missing_ok=True)
        if not keep:  # pragma: no cover - checkpoint just wrote one
            return
        oldest_kept = int(keep[-1].name.rsplit("-", 1)[1])
        data = read_wal(self.wal.path)
        if oldest_kept <= data.base_seq:
            return
        remaining = [r for r in data.records if r["seq"] > oldest_kept]
        self.wal.compact(oldest_kept, remaining)
