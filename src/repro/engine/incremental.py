"""Incremental view maintenance: fixpoints that survive EDB updates.

Every other entry point in this package recomputes the least fixpoint
from scratch.  An :class:`IncrementalSession` instead *materializes* a
program's fixpoint once and then maintains it under
:meth:`~IncrementalSession.insert` / :meth:`~IncrementalSession.retract`
batches, keeping the database state bit-identical to what a from-scratch
re-evaluation over the updated EDB would produce — that equivalence is
the contract the differential IVM oracle (``tests/oracle/test_incremental.py``)
enforces across the whole engine flag matrix.

**Insertions** are the easy direction, because semi-naive deltas are
already the engine's native currency: new rows are inserted into their
relations and then handed to
:func:`~repro.engine.scheduler.run_seeded_unit` as the seed frontier of
each affected evaluation unit, walking the SCC condensation in
topological order.  Units whose input predicates did not change are
skipped entirely (``units_reactivated`` vs ``units_scheduled``).

**Retractions** follow the DRed delete–rederive discipline
(Gupta–Mumick–Subrahmanian):

1. *Overdelete* — compute the closure of facts with **some** derivation
   touching a deleted fact, by firing the existing delta plans with the
   deletions as the frontier against the **unmodified** database
   (removing rows eagerly would under-estimate when two body facts of
   one derivation die together).  Facts asserted by program fact rules
   or still present as initial IDB facts are *protected*: their
   derivations are unconditional, so they never enter the closure.
2. *Delete* — discard the closure (copy-on-write: shared EDB relations
   are privatized first, so sibling sessions over the same database
   never observe the retraction).
3. *Rederive* — walk the affected units in topological order.  For a
   **non-recursive** unit each overdeleted fact is decided by a single
   goal-directed support probe (head bound, body matched against the
   fully maintained lower relations) — the counting-style check, no
   fixpoint needed.  A **recursive** unit additionally reseeds its
   component-local fixpoint with the directly rederived facts, which
   re-derives exactly the overdeleted facts that remain reachable.

Updates whose affected cone crosses a **negative** dependency edge are
non-monotone: the affected units are reset to their initial rows and
recomputed from scratch in topological order (still skipping everything
outside the cone).  The same recompute path doubles as a degradation
rung (``incremental->recompute``) when a scheduler fault is injected.

The **governor** applies per update batch: each ``insert``/``retract``
constructs a fresh :class:`~repro.engine.governor.Governor` from the
session options, so deadlines and budgets bound each batch, not the
session lifetime.  A tripped batch leaves the database in a *sound
lower bound* state (documented per phase in the code below), flags the
session via :attr:`IncrementalSession.is_partial`, and either raises
:class:`~repro.engine.governor.ResourceExhausted` or returns partial
stats per ``on_limit``; :meth:`~IncrementalSession.refresh` restores
exactness by re-running the fixpoint from the current state.

Repeat sessions skip parse/analysis/planning/codegen through the
prepared-program cache (:mod:`repro.engine.prepared`), keyed by the
canonical program text and size signature.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import replace
from typing import Iterable, Optional, Union

from ..datalog.analysis import condensation, negative_dependencies
from ..datalog.ast import Atom, Program
from ..datalog.database import Database
from ..datalog.errors import ArityError, ValidationError
from ..datalog.terms import Constant, Variable
from .evaluator import EngineOptions, EvalResult, answers_of, evaluate
from .faults import FaultInjector, WorkerDeath
from .governor import BudgetExceeded, Governor, ResourceExhausted
from .plan import CompiledRule, DeltaIndex, match_plan, rebind_plans
from .provenance import Justification
from .scheduler import (
    EvalUnit,
    _builtins_hold,
    _negatives_hold,
    _run_unit,
    build_units,
    run_monolithic,
    run_scheduled,
    run_seeded_unit,
)
from .statistics import EvalStats

__all__ = ["IncrementalSession", "Facts"]

#: accepted update-batch shapes: ``{"pred": [(1, 2), ...]}``, an
#: iterable of ground :class:`Atom` facts, or ``("pred", row)`` pairs
Facts = Union[
    Mapping[str, Iterable[tuple]],
    Iterable[Union[Atom, tuple]],
]

_EMPTY: frozenset = frozenset()


def _head_binding(cr: CompiledRule, row: tuple) -> Optional[dict]:
    """Unify a rule head with a concrete row (the goal-directed entry
    of the rederivation probe); None on a constant or repeated-variable
    mismatch."""
    subst: dict = {}
    for arg, value in zip(cr.rule.head.args, row):
        if isinstance(arg, Constant):
            if arg.value != value:
                return None
        else:
            bound = subst.get(arg, _EMPTY)
            if bound is _EMPTY:
                subst[arg] = value
            elif bound != value:
                return None
    return subst


class IncrementalSession:
    """A materialized fixpoint maintained under insert/retract batches.

    >>> from repro.datalog import parse, Database
    >>> from repro.engine.incremental import IncrementalSession
    >>> program = parse('''
    ...     tc(X, Y) :- edge(X, Y).
    ...     tc(X, Y) :- edge(X, Z), tc(Z, Y).
    ...     ?- tc(1, Y).
    ... ''')
    >>> db = Database.from_dict({"edge": [(1, 2), (2, 3)]})
    >>> session = IncrementalSession(program, db)
    >>> sorted(session.answers())
    [(2,), (3,)]
    >>> _ = session.insert({"edge": [(3, 4)]})
    >>> sorted(session.answers())
    [(2,), (3,), (4,)]
    >>> _ = session.retract({"edge": [(2, 3)]})
    >>> sorted(session.answers())
    [(2,)]

    The input database is never mutated: base relations are shared by
    reference until the session first writes one, at which point it is
    privatized (copy-on-write) — two sessions over one EDB stay fully
    independent.
    """

    def __init__(
        self,
        program: Program,
        edb: Database,
        options: Optional[EngineOptions] = None,
        *,
        durable=None,
    ):
        opts = options or EngineOptions()
        result = evaluate(program, edb, opts)
        self.program = program
        self.options = opts
        self.prepared = result.prepared
        self.db = result.db
        self.provenance = result.provenance
        #: cumulative counters across the session (init + every batch)
        self.stats = result.stats
        #: counters of the most recent operation (init, batch, refresh)
        self.last_stats = result.stats
        self._idb = program.idb_predicates()
        self._arities = dict(self.prepared.arities)
        #: base relations still shared by reference with the caller's
        #: EDB — privatized (copied) before the session's first write
        self._shared = {
            p
            for p in edb.predicates()
            if self.db.relation(p) is edb.relation(p)
        }
        #: given (retractable) facts of derived predicates: the initial
        #: IDB rows of the input database plus rows inserted into IDB
        #: predicates later — the uniform-equivalence input convention
        self._initial: dict[str, set] = {
            p: set(edb.rows(p)) for p in self._idb if edb.rows(p)
        }
        #: rows asserted by body-less program rules, per predicate;
        #: program-mandated, hence never retractable
        self._fact_rows: dict[str, frozenset] = {}
        grouped: dict[str, set] = {}
        for pred, row in self.prepared.fact_rules:
            grouped.setdefault(pred, set()).add(row)
        self._fact_rows = {p: frozenset(rows) for p, rows in grouped.items()}
        self._dirty = result.is_partial
        self._wire_schedule()
        #: the durability runtime (WAL + snapshots), None for the
        #: default in-memory session
        self._durable = None
        if durable is not None:
            from .durability import DurabilityConfig, DurableLog

            if isinstance(durable, (str, bytes)) or hasattr(durable, "__fspath__"):
                durable = DurabilityConfig(wal_path=str(durable))
            self._durable = DurableLog.create(durable, self)

    @classmethod
    def _restore(
        cls,
        program: Program,
        db: Database,
        initial: Mapping[str, Iterable[tuple]],
        options: Optional[EngineOptions] = None,
    ) -> "IncrementalSession":
        """Build a session directly over an already-materialized
        database — the recovery path: the fixpoint comes from a
        snapshot, so no evaluation runs here.  The caller owns *db*
        (nothing is shared copy-on-write) and vouches that it **is**
        the program's least fixpoint over its base facts; *initial* is
        the snapshot's given-IDB row map (the session ``_initial``)."""
        from .cost import BoundCostModel
        from .prepared import prepare

        self = object.__new__(cls)
        opts = options or EngineOptions()
        # the same prepare() entry evaluate() uses, so the prepared
        # cache is shared and the plan shape matches a live session's
        sizes = db.relation_sizes()
        largest = max(sizes.values(), default=0)
        for pred in program.idb_predicates():
            sizes[pred] = max(sizes.get(pred, 0), largest + 1)
        cost_model = (
            BoundCostModel.from_database(db, sizes)
            if opts.use_cost_planner
            else None
        )
        self.program = program
        self.options = opts
        self.prepared = prepare(program, sizes, cost_model=cost_model)
        self.db = db
        self.provenance = {}
        stats = EvalStats()
        self.stats = stats
        self.last_stats = stats
        self._idb = program.idb_predicates()
        self._arities = dict(self.prepared.arities)
        self._shared = set()
        self._initial = {
            p: set(rows) for p, rows in initial.items() if rows
        }
        grouped: dict[str, set] = {}
        for pred, row in self.prepared.fact_rules:
            grouped.setdefault(pred, set()).add(row)
        self._fact_rows = {p: frozenset(rows) for p, rows in grouped.items()}
        self._dirty = False
        self._wire_schedule()
        self._durable = None
        for pred in self._idb:
            rel = db.relation(pred)
            stats.fact_counts[pred] = len(rel) if rel is not None else 0
        return self

    def _wire_schedule(self) -> None:
        # The maintenance schedule: every evaluation unit of every
        # stratum, flattened in global topological order (stratum, then
        # condensation depth, then SCC index).  Maintenance always
        # walks units — ``use_scc`` only selects the *initial*
        # materialization engine — because unit granularity is what
        # lets unaffected components be skipped.
        info = self.prepared.info
        edges = condensation(info)
        component_of = {p: i for i, scc in enumerate(info.sccs) for p in scc}
        self._units: list[EvalUnit] = []
        for stratum_rules in self.prepared.strata:
            if stratum_rules:
                self._units.extend(
                    build_units(stratum_rules, info, edges, component_of)
                )
        #: per unit: the predicates its rule bodies read (the seed set)
        self._unit_inputs = {
            id(unit): frozenset(
                atom.predicate
                for cr in unit.rules
                for atom in cr.relational_body
            )
            for unit in self._units
        }
        #: reverse dependency graph, for affected-cone computation
        self._rev: dict[str, set] = {}
        for head, deps in info.graph.items():
            for dep in deps:
                self._rev.setdefault(dep, set()).add(head)
        self._neg_edges = negative_dependencies(self.program)
        #: per compiled rule: the goal-directed probe (head-rebound
        #: plans + the head's variable tuple when it is all distinct
        #: variables), built lazily on the first retraction hitting it
        self._goal_probe: dict[int, tuple] = {}

    # -- queries ------------------------------------------------------------

    @property
    def is_partial(self) -> bool:
        """True iff a governed batch stopped early: the state is a
        sound lower bound until :meth:`refresh` completes."""
        return self._dirty

    def query(self, predicate: Union[str, Atom, None] = None) -> frozenset:
        """Current answers: for a predicate name, its rows; for a query
        atom, its selected bindings; default, the program query's
        answers."""
        if predicate is None:
            q = self.program.query
            if q is None:
                raise ValidationError(
                    "program has no query and none was supplied"
                )
            return answers_of(self.db, q)
        if isinstance(predicate, Atom):
            return answers_of(self.db, predicate)
        return self.db.rows(predicate)

    def answers(self, query: Optional[Atom] = None) -> frozenset:
        return self.query(query if query is not None else None)

    def facts(self, predicate: str) -> frozenset:
        return self.db.rows(predicate)

    def known_predicates(self) -> frozenset:
        """Every predicate the program or the current database defines
        — what front ends validate update batches against, so a typo'd
        predicate is rejected instead of silently creating a relation
        nothing ever reads."""
        return frozenset(self._arities) | self.db.predicates()

    def result(self) -> EvalResult:
        """A snapshot :class:`~repro.engine.evaluator.EvalResult` over
        the session's live database (not a copy)."""
        return EvalResult(
            self.program,
            self.db,
            self.stats,
            self.provenance,
            provenance_recorded=self.options.record_provenance,
            prepared=self.prepared,
        )

    # -- updates ------------------------------------------------------------

    def insert(self, facts: Facts) -> EvalStats:
        """Apply a batch of new base facts and propagate their
        consequences; returns the batch's counters."""
        return self._update(self._normalize(facts), {})

    def retract(self, facts: Facts) -> EvalStats:
        """Remove a batch of base facts and every derived fact that no
        longer has a derivation; returns the batch's counters."""
        return self._update({}, self._normalize(facts))

    def refresh(self) -> EvalStats:
        """Re-run the fixpoint from the current state, restoring
        exactness after a partial (governed) batch."""
        opts = self.options
        stats = EvalStats()
        builds_before = self.db.index_builds()
        governor = Governor(opts)
        try:
            if opts.use_scc:
                run_scheduled(
                    self.prepared.strata, self.prepared.info, self.db,
                    stats, self.provenance, opts, governor,
                )
            else:
                run_monolithic(
                    self.prepared.strata, self.db, stats,
                    self.provenance, opts, governor,
                )
        except BudgetExceeded as exc:
            self._finalize(stats, builds_before)
            self._dirty = True
            if opts.on_limit == "partial":
                stats.aborted_reason = exc.reason
                self._absorb(stats)
                return stats
            self._absorb(stats)
            raise ResourceExhausted(
                exc.reason, stats=stats, unit=exc.unit, stratum=exc.stratum
            ) from None
        self._dirty = False
        self._finalize(stats, builds_before)
        if self._durable is not None:
            # a snapshot deferred during a partial batch retries here,
            # now that exactness is restored
            self._durable.maybe_snapshot(self, stats, governor, None)
        self._absorb(stats)
        return stats

    # -- update machinery ---------------------------------------------------

    def _normalize(self, facts: Facts) -> dict[str, set]:
        out: dict[str, set] = {}

        def put(pred: str, row) -> None:
            row = tuple(row)
            known = self._arities.get(pred)
            if known is None:
                rel = self.db.relation(pred)
                known = rel.arity if rel is not None else None
            if known is not None and len(row) != known:
                raise ArityError(
                    f"row of length {len(row)} for predicate {pred!r} "
                    f"of arity {known}"
                )
            out.setdefault(pred, set()).add(row)

        if isinstance(facts, Mapping):
            for pred, rows in facts.items():
                for row in rows:
                    put(pred, row)
        else:
            for item in facts:
                if isinstance(item, Atom):
                    put(item.predicate, item.as_fact())
                else:
                    pred, row = item
                    put(pred, row)
        return out

    def _update(self, additions: dict, deletions: dict) -> EvalStats:
        opts = self.options
        stats = EvalStats()
        stats.incremental_updates = 1
        builds_before = self.db.index_builds()
        # Per-batch governor and injector: deadlines/budgets bound this
        # batch, and one-shot faults fire fresh each batch.
        injector = (
            FaultInjector(opts.fault_plan)
            if opts.fault_plan is not None and opts.fault_plan.any()
            else None
        )
        governor = Governor(opts, injector)
        if self._durable is not None and (additions or deletions):
            # Write-ahead: the batch is logged before the first byte of
            # in-memory state changes, so a crash at any later point
            # replays to exactly the accepted-batch boundary.  A
            # DurabilityError (unloggable value) is raised before any
            # bytes hit the log, leaving WAL and state both untouched.
            self._durable.append_batch(
                "insert" if additions else "retract",
                additions or deletions,
                stats,
                injector=injector,
            )
        force_recompute = False
        if injector is not None:
            if injector.index_build_fails():
                injector.record(stats, "index->scan")
                opts = replace(opts, use_indexes=False)
            if injector.scheduler_fails():
                # incremental->recompute rung: seeded maintenance
                # "failed", so the affected cone is recomputed from its
                # initial rows — same state, more work
                injector.record(stats, "incremental->recompute")
                force_recompute = True
        try:
            if deletions:
                self._retract_batch(
                    deletions, stats, opts, governor, injector,
                    force_recompute,
                )
            if additions:
                self._insert_batch(
                    additions, stats, opts, governor, injector,
                    force_recompute,
                )
        except BudgetExceeded as exc:
            # Every trip handler below leaves the database a *sound
            # lower bound* of the updated fixpoint; refresh() restores
            # exactness.
            self._finalize(stats, builds_before)
            self._dirty = True
            if opts.on_limit == "partial":
                stats.aborted_reason = exc.reason
                self._absorb(stats)
                return stats
            self._absorb(stats)
            raise ResourceExhausted(
                exc.reason, stats=stats, unit=exc.unit, stratum=exc.stratum
            ) from None
        self._finalize(stats, builds_before)
        if self._durable is not None:
            # after apply, before absorb: a snapshot failure can then
            # never un-apply the batch, and its counters land in stats
            self._durable.maybe_snapshot(self, stats, governor, injector)
        self._absorb(stats)
        return stats

    # -- durability ---------------------------------------------------------

    @property
    def durable(self) -> bool:
        """True iff this session writes a WAL and snapshots."""
        return self._durable is not None

    def checkpoint(self) -> int:
        """Force a snapshot of the current state (then compact the
        WAL); returns the snapshot's sequence number.  Requires a
        durable session."""
        from ..datalog.errors import DurabilityError

        if self._durable is None:
            raise DurabilityError(
                "checkpoint() requires a durable session "
                "(pass durable= to IncrementalSession)"
            )
        return self._durable.checkpoint(self, self.stats)

    def close(self) -> None:
        """Flush and close the durability runtime (no-op for in-memory
        sessions); the session remains queryable but no longer durable."""
        if self._durable is not None:
            self._durable.close()
            self._durable = None

    def _finalize(self, stats: EvalStats, builds_before: int) -> None:
        for pred in self._idb:
            rel = self.db.relation(pred)
            # len(rel), not len(rows()): rows() snapshots a frozenset
            # copy, O(|relation|) per batch for a counter
            stats.fact_counts[pred] = len(rel) if rel is not None else 0
        # privatized copies restart their build counters, so the
        # session-wide total can shrink mid-batch; clamp at zero
        stats.index_builds += max(0, self.db.index_builds() - builds_before)

    def _absorb(self, batch: EvalStats) -> None:
        self.last_stats = batch
        self.stats.merge(batch)
        # cumulative fact counts are a snapshot, not a sum
        self.stats.fact_counts = dict(batch.fact_counts)
        self.stats.aborted_reason = batch.aborted_reason

    def _merge_fragment(
        self, stats: EvalStats, unit: EvalUnit, frag: EvalStats, fprov: dict
    ) -> None:
        stats.unit_rounds[unit.label] = (
            stats.unit_rounds.get(unit.label, 0) + frag.iterations
        )
        stats.merge(frag)
        self.provenance.update(fprov)

    def _privatize(self, pred: str) -> None:
        if pred in self._shared:
            self.db.privatize(pred)
            self._shared.discard(pred)

    def _protected(self, pred: str) -> frozenset:
        """Rows of *pred* with an unconditional derivation: program
        fact rules plus (still-)initial given facts."""
        initial = self._initial.get(pred)
        facts = self._fact_rows.get(pred, _EMPTY)
        if not initial:
            return facts
        return facts | frozenset(initial)

    def _affected_idb(self, changed: Iterable[str]) -> frozenset[str]:
        """Derived predicates whose value may depend on *changed*."""
        seen: set[str] = set()
        stack = list(changed)
        while stack:
            pred = stack.pop()
            if pred in seen:
                continue
            seen.add(pred)
            stack.extend(self._rev.get(pred, ()))
        return frozenset(p for p in seen if p in self._idb)

    def _crosses_negation(
        self, affected: frozenset[str], changed: Iterable[str]
    ) -> bool:
        """True iff propagation through the affected cone would pass a
        rule whose *negated* predicate may itself change — seeded
        deltas and delete–rederive are only exact for monotone cones."""
        dirty = affected | set(changed)
        return any(
            head in affected and neg in dirty
            for head, neg in self._neg_edges
        )

    # -- insertion ----------------------------------------------------------

    def _insert_batch(
        self, additions, stats, opts, governor, injector, force_recompute
    ) -> None:
        changed: dict[str, set] = {}
        for pred in sorted(additions):
            rows = additions[pred]
            self._privatize(pred)
            arity = self._arities.get(pred)
            if arity is None:
                arity = len(next(iter(rows)))
            rel = self.db.ensure(pred, arity)
            fresh = {row for row in rows if rel.add(row)}
            if not fresh:
                continue
            stats.facts_derived += len(fresh)
            if pred in self._idb:
                self._initial.setdefault(pred, set()).update(fresh)
            changed[pred] = set(fresh)
        if not changed:
            return
        affected = self._affected_idb(changed)
        if force_recompute or self._crosses_negation(affected, changed):
            self._recompute_affected(affected, stats, opts, governor, injector)
            return
        # Monotone seeded propagation: walk units in topological order,
        # reseeding only those whose inputs changed.  A governor trip
        # mid-walk is already sound — bottom-up insertion only adds
        # true consequences.
        ordinal = 0
        for unit in self._units:
            stats.units_scheduled += 1
            inputs = self._unit_inputs[id(unit)]
            seeds = {p: changed[p] for p in inputs if changed.get(p)}
            if not seeds:
                continue
            stats.units_reactivated += 1
            guard = governor.guard(unit=unit.label, ordinal=ordinal)
            ordinal += 1
            out = self._run_seeded(unit, seeds, stats, opts, guard, injector)
            for p, rows in out.items():
                if rows:
                    changed.setdefault(p, set()).update(rows)

    def _run_seeded(
        self, unit, seeds, stats, opts, guard, injector
    ) -> dict[str, set]:
        out: dict[str, set] = {}
        frag = EvalStats()
        fprov: dict = {}
        try:
            try:
                run_seeded_unit(
                    unit, self.db, frag, fprov, opts, guard, seeds, out
                )
            except WorkerDeath:
                # parallel->sequential rung: retry inline, reseeding
                # with everything already added so the interrupted
                # pass completes (re-derivations are duplicates)
                injector.record(frag, "parallel->sequential", unit.label)
                retry = {p: set(rows) for p, rows in seeds.items()}
                for p, rows in out.items():
                    retry.setdefault(p, set()).update(rows)
                run_seeded_unit(
                    unit, self.db, frag, fprov, opts, guard, retry, out
                )
        finally:
            guard.finish(frag)
            self._merge_fragment(stats, unit, frag, fprov)
        return out

    # -- retraction ---------------------------------------------------------

    def _retract_batch(
        self, deletions, stats, opts, governor, injector, force_recompute
    ) -> None:
        present: dict[str, set] = {}
        for pred in sorted(deletions):
            rows = deletions[pred]
            initial = self._initial.get(pred)
            if initial:
                initial.difference_update(rows)
            rel = self.db.relation(pred)
            if rel is None:
                continue
            protected = self._fact_rows.get(pred, _EMPTY)
            hits = {r for r in rows if r in rel and r not in protected}
            if hits:
                present[pred] = hits
        if not present:
            return
        affected = self._affected_idb(present)
        if force_recompute or self._crosses_negation(affected, present):
            self._discard_rows(present, stats)
            self._recompute_affected(affected, stats, opts, governor, injector)
            return
        closure_guard = governor.guard()
        try:
            deleted = self._overdelete_closure(
                present, affected, stats, opts, closure_guard
            )
        except BudgetExceeded:
            # The closure ran against the unmodified database, so
            # nothing is applied yet; applying the base deletions and
            # resetting the whole affected cone to its initial rows is
            # the cheapest sound lower bound.
            self._discard_rows(present, stats)
            self._reset_affected(affected, stats)
            raise
        self._discard_rows(deleted, stats)
        # A trip inside rederivation needs no cleanup: every fact not
        # in the closure keeps a derivation avoiding the deleted facts,
        # and rederived facts were re-added with a live support probe —
        # the state is a sound lower bound wherever the walk stopped.
        self._rederive(deleted, stats, opts, governor, injector)

    def _overdelete_closure(
        self, base_deleted, affected, stats, opts, guard
    ) -> dict[str, set]:
        """The DRed overestimate: every fact with *some* derivation
        using a deleted fact, computed with the delta plans against the
        **unmodified** database (protected facts excluded).  Returns
        the base deletions merged with the derived closure."""
        deleted = {p: set(rows) for p, rows in base_deleted.items()}
        for unit in self._units:
            if not (unit.heads & affected):
                continue
            inputs = self._unit_inputs[id(unit)]
            pending = {
                p: set(deleted[p]) for p in inputs if deleted.get(p)
            }
            protected: dict[str, frozenset] = {}
            while pending:
                guard.checkpoint(stats)
                previous = {
                    p: DeltaIndex(rows) for p, rows in pending.items()
                }
                new: dict[str, set] = {}
                for cr in unit.rules:
                    guard.checkpoint(stats)
                    head_pred = cr.rule.head.predicate
                    rel = self.db.relation(head_pred)
                    if rel is None:
                        continue
                    # hoisted out of the candidate loop: all four
                    # membership sets are fixed for the round (deleted
                    # only grows between rounds)
                    dead = deleted.get(head_pred, _EMPTY)
                    found = new.setdefault(head_pred, set())
                    prot = protected.get(head_pred)
                    if prot is None:
                        prot = self._protected(head_pred)
                        protected[head_pred] = prot
                    for i, literal in enumerate(cr.relational_body):
                        frontier = previous.get(literal.predicate)
                        if frontier is None:
                            continue
                        for subst, _rows in match_plan(
                            cr.delta_plans[i], self.db, stats,
                            delta_rows=frontier,
                            use_indexes=opts.use_indexes,
                        ):
                            if cr.builtins and not _builtins_hold(cr, subst):
                                continue
                            if cr.rule.negative and not _negatives_hold(
                                cr, self.db, subst, stats
                            ):
                                continue
                            head = cr.head_values(subst)
                            if (
                                head not in rel
                                or head in dead
                                or head in found
                                or head in prot
                            ):
                                continue
                            found.add(head)
                if not any(new.values()):
                    break
                for p, rows in new.items():
                    if rows:
                        deleted.setdefault(p, set()).update(rows)
                # only deletions of the unit's own inputs (its members,
                # for a recursive unit) can cascade further here
                pending = {
                    p: rows for p, rows in new.items() if p in inputs and rows
                }
        return deleted

    def _discard_rows(self, rows_by_pred, stats) -> None:
        for pred in sorted(rows_by_pred):
            rows = rows_by_pred[pred]
            if not rows:
                continue
            self._privatize(pred)
            rel = self.db.relation(pred)
            if rel is None:
                continue
            for row in rows:
                if rel.discard(row):
                    stats.facts_retracted += 1
                    self.provenance.pop((pred, row), None)

    def _rederive(self, deleted, stats, opts, governor, injector) -> None:
        ordinal = 0
        for unit in self._units:
            stats.units_scheduled += 1
            local = {
                p: deleted[p] for p in unit.heads if deleted.get(p)
            }
            if not local:
                continue
            stats.units_reactivated += 1
            guard = governor.guard(unit=unit.label, ordinal=ordinal)
            ordinal += 1
            readded: dict[str, set] = {}
            frag = EvalStats()
            fprov: dict = {}
            try:
                try:
                    self._rederive_unit(
                        unit, local, frag, fprov, opts, guard, readded
                    )
                except WorkerDeath:
                    injector.record(frag, "parallel->sequential", unit.label)
                    self._rederive_unit(
                        unit, local, frag, fprov, opts, guard, readded
                    )
            finally:
                guard.finish(frag)
                self._merge_fragment(stats, unit, frag, fprov)

    def _goal_probe_for(self, cr: CompiledRule) -> tuple:
        """The cached goal-directed probe of one rule: its join plans
        rebound for the head variables (so pre-bound positions answer
        as index probes, not the scans the forward patterns would take)
        plus, for the common all-distinct-variables head, the variable
        tuple that turns head binding into a single ``dict(zip(...))``.
        """
        cached = self._goal_probe.get(id(cr))
        if cached is None:
            head_args = cr.rule.head.args
            bound = frozenset(
                a for a in head_args if isinstance(a, Variable)
            )
            plans = rebind_plans(cr.plan, bound)
            fast = (
                tuple(head_args)
                if len(bound) == len(head_args)
                else None
            )
            cached = (plans, fast)
            self._goal_probe[id(cr)] = cached
        return cached

    def _rederive_unit(
        self, unit, deleted_local, frag, fprov, opts, guard, readded
    ) -> None:
        """Decide each overdeleted fact of one unit: a goal-directed
        support probe per fact (the counting-style check), then — for
        recursive units — a reseeded component fixpoint that re-derives
        whatever the directly supported facts still reach."""
        guard.unit_boundary(frag)
        rules_by_head: dict[str, list] = {}
        for cr in unit.rules:
            rules_by_head.setdefault(cr.rule.head.predicate, []).append(
                (cr, *self._goal_probe_for(cr))
            )
        for pred in sorted(deleted_local):
            rel = self.db.relation(pred)
            if rel is None:
                continue
            for row in sorted(deleted_local[pred], key=repr):
                if row in rel:
                    continue  # re-added by an earlier probe or a retry
                guard.checkpoint(frag)
                for cr, plans, head_vars in rules_by_head.get(pred, ()):
                    if head_vars is not None:
                        subst0 = dict(zip(head_vars, row))
                    else:
                        subst0 = _head_binding(cr, row)
                        if subst0 is None:
                            continue
                    support = None
                    for subst, body_rows in match_plan(
                        plans, self.db, frag, subst=subst0,
                        use_indexes=opts.use_indexes,
                    ):
                        if cr.builtins and not _builtins_hold(cr, subst):
                            continue
                        if cr.rule.negative and not _negatives_hold(
                            cr, self.db, subst, frag
                        ):
                            continue
                        support = body_rows
                        break
                    if support is None:
                        continue
                    rel.add(row)
                    frag.facts_derived += 1
                    frag.facts_rederived += 1
                    if opts.record_provenance:
                        body = tuple(
                            (atom.predicate, r)
                            for atom, r in zip(cr.relational_body, support)
                        )
                        fprov[(pred, row)] = Justification(cr.rule_index, body)
                    readded.setdefault(pred, set()).add(row)
                    break
        if unit.recursive:
            seeds = {
                p: set(rows)
                for p, rows in readded.items()
                if p in unit.members and rows
            }
            if seeds:
                before = frag.facts_derived
                run_seeded_unit(
                    unit, self.db, frag, fprov, opts, guard, seeds, readded
                )
                frag.facts_rederived += frag.facts_derived - before

    # -- the non-monotone / degraded path -----------------------------------

    def _reset_unit_rows(self, unit) -> None:
        """Reset the unit's head relations to their unconditional rows
        (initial IDB facts plus program fact rules)."""
        for pred in sorted(unit.heads):
            self._privatize(pred)
            rel = self.db.relation(pred)
            if rel is None:
                continue
            keep = self._protected(pred)
            for row in [r for r in rel.rows() if r not in keep]:
                rel.discard(row)
            for row in keep:
                rel.add(row)

    def _reset_affected(self, affected, stats) -> None:
        preds = {
            p
            for unit in self._units
            if unit.heads & affected
            for p in unit.heads
        }
        if not preds:
            return
        for key in [k for k in self.provenance if k[0] in preds]:
            del self.provenance[key]
        for unit in self._units:
            if unit.heads & affected:
                self._reset_unit_rows(unit)

    def _recompute_affected(
        self, affected, stats, opts, governor, injector
    ) -> None:
        """Reset every affected unit to its initial rows, then re-run
        them in topological order.  All resets happen up front, so a
        governor trip mid-walk leaves untouched initial state (a sound
        lower bound) in every not-yet-recomputed unit."""
        targets = [u for u in self._units if u.heads & affected]
        if not targets:
            return
        preds = {p for u in targets for p in u.heads}
        for key in [k for k in self.provenance if k[0] in preds]:
            del self.provenance[key]
        for unit in targets:
            self._reset_unit_rows(unit)
        ordinal = 0
        for unit in self._units:
            stats.units_scheduled += 1
            if not (unit.heads & affected):
                continue
            stats.units_reactivated += 1
            guard = governor.guard(unit=unit.label, ordinal=ordinal)
            ordinal += 1
            frag, fprov, failure = _run_unit(unit, self.db, opts, guard)
            self._merge_fragment(stats, unit, frag, fprov)
            if isinstance(failure, WorkerDeath):
                injector.record(stats, "parallel->sequential", unit.label)
                frag, fprov, failure = _run_unit(unit, self.db, opts, guard)
                self._merge_fragment(stats, unit, frag, fprov)
            if failure is not None:
                raise failure
