"""Counters collected during bottom-up evaluation.

The paper's performance claims are about *work*, not wall-clock time:
section 3.2 argues that projecting out existential arguments "not only
reduces the facts produced but also reduces the duplicate elimination
cost significantly", and section 3.1 that boolean rules can be "removed
from the fixpoint computation once the variable becomes true".  The
engine therefore counts facts, duplicate derivations, join probes, rule
firings and retired rules, so benchmarks can report the quantities the
paper reasons about alongside wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["EvalStats"]


@dataclass
class EvalStats:
    """Mutable counters for one evaluation run."""

    iterations: int = 0
    #: Facts newly added to derived predicates.
    facts_derived: int = 0
    #: Head instantiations that produced an already-known fact — the
    #: duplicate-elimination work the paper's section 3.2 talks about.
    duplicates: int = 0
    #: Number of complete body matches (head instantiations attempted).
    rule_firings: int = 0
    #: Index/scan probes performed while matching body literals; a
    #: proxy for join work.
    join_probes: int = 0
    #: Rows enumerated from relations while matching body literals.
    rows_scanned: int = 0
    #: Probes answered by a hash index on the literal's bound positions
    #: (a subset of ``join_probes``).
    index_probes: int = 0
    #: Hash indexes materialized lazily during the run.
    index_builds: int = 0
    #: Probes that fell back to a full relation scan — either because
    #: no argument position was bound when the literal was reached, or
    #: because indexing was disabled (``EngineOptions.use_indexes``).
    scan_fallbacks: int = 0
    #: Boolean (cut) rules retired before the fixpoint finished.
    rules_retired: int = 0
    #: Compiled rule-kernel invocations (0 when the engine ran on the
    #: interpreter, either by option or by per-rule fallback).  This is
    #: the only counter allowed to differ between the kernel and
    #: interpreter paths — everything else is bit-identical.
    kernel_launches: int = 0
    #: Batch-kernel pipeline stages executed with a non-empty context
    #: batch (0 on the tuple-kernel and interpreter paths).  Like
    #: ``kernel_launches`` this is engine-variant: it measures how much
    #: work ran columnar, not how much join work was done.
    batch_probes: int = 0
    #: Contexts produced by batch-kernel stages (the columnar analogue
    #: of per-tuple loop iterations; engine-variant).
    batch_rows: int = 0
    #: Size of the process-wide constant dictionary after the run
    #: (merged with ``max``, not summed; 0 unless the columnar plane
    #: was active).
    dict_size: int = 0
    #: Rules routed to the tuple kernel because no batch kernel could
    #: be compiled (order-dependent shape) or a ``columnar`` fault was
    #: injected (engine-variant).
    columnar_fallbacks: int = 0
    #: Rule bodies ordered by the cost model's DP search (0 with
    #: ``--no-cost-planner``, on a prepared-cache hit — the cached
    #: plans carry no new costing work — and for bodies the model
    #: declined to the greedy rung).  Engine-variant: it measures
    #: which planner ran, not how much join work was done.
    plans_costed: int = 0
    #: Adaptive replan events: a recursive fixpoint re-ranked its delta
    #: plans from observed round cardinalities
    #: (``EngineOptions.replan_rounds``; engine-variant).
    replans: int = 0
    #: Largest factor by which a decayed frontier-cardinality estimate
    #: exceeded the next observed frontier (1.0 = perfect prediction;
    #: 0.0 = no prediction was ever checked).  Merged with ``max``,
    #: engine-variant.
    bound_overestimate_max: float = 0.0
    #: Evaluation units run by the SCC scheduler (0 with ``--no-scc``).
    units_scheduled: int = 0
    #: Units that executed in a parallel batch (same condensation
    #: depth, ``EngineOptions.parallel > 1``); a subset of
    #: ``units_scheduled``.
    units_parallel: int = 0
    #: Units terminated by the component-local cut: every head boolean
    #: of the unit fired, so the unit stopped before exhausting its
    #: pass or fixpoint.
    unit_early_exits: int = 0
    #: Fixpoint rounds per evaluation unit, keyed by the unit's label
    #: ("+"-joined sorted SCC members); ``iterations`` is their sum.
    unit_rounds: dict[str, int] = field(default_factory=dict)
    #: Facts per derived predicate at fixpoint.
    fact_counts: dict[str, int] = field(default_factory=dict)
    #: Incremental update batches applied by an
    #: :class:`~repro.engine.incremental.IncrementalSession` (each
    #: ``insert``/``retract`` call counts once; 0 for plain ``evaluate``
    #: runs).
    incremental_updates: int = 0
    #: Facts removed from relations by incremental retraction: the
    #: requested base deletions plus every derived fact the DRed
    #: overdeletion pass removed (rederived facts are counted removed
    #: here and re-added under ``facts_rederived``).
    facts_retracted: int = 0
    #: Facts re-added by the delete–rederive pass: overdeleted facts
    #: that turned out to still have a derivation from the surviving
    #: database (also counted in ``facts_derived``).
    facts_rederived: int = 0
    #: Evaluation units actually re-run by incremental maintenance — a
    #: subset of the units examined (``units_scheduled``): units whose
    #: inputs did not change are skipped, which is the point of
    #: maintaining through the SCC condensation.
    units_reactivated: int = 0
    #: Write-ahead-log records appended by a durable session (one per
    #: accepted update batch; 0 for non-durable sessions).
    wal_appends: int = 0
    #: WAL batches replayed through the seeded IVM path during
    #: :func:`~repro.engine.recovery.recover` (0 outside recovery).
    wal_replays: int = 0
    #: Columnar snapshots written (baseline, policy-triggered, and
    #: forced ``.checkpoint`` snapshots all count).
    snapshots_written: int = 0
    #: Wall-clock milliseconds spent inside :func:`recover` building
    #: this session (0 for sessions not born from recovery).
    recovery_ms: float = 0.0
    #: Governor checkpoints performed (0 unless a limit was set or a
    #: fault armed — the governor is free when idle).
    governor_checks: int = 0
    #: Faults fired by the run's :class:`~repro.engine.faults.FaultPlan`
    #: (0 on un-faulted runs).
    faults_injected: int = 0
    #: Degradation-ladder rungs taken, keyed by rung
    #: (``"kernel->interpreter"``, ``"index->scan"``,
    #: ``"scc->monolithic"``, ``"parallel->sequential"``, and — during
    #: incremental maintenance — ``"incremental->recompute"``, the rung
    #: that recomputes the affected cone from its initial rows when the
    #: seeded maintenance scheduler faults).
    degradations: dict[str, int] = field(default_factory=dict)
    #: Why the run stopped early under ``on_limit="partial"`` (the
    #: governor's trip reason, e.g. ``"deadline"``); None when the run
    #: reached its fixpoint.  A set value flags the result — and its
    #: fact counts and answers — as a sound lower bound, not the
    #: complete least fixpoint.
    aborted_reason: Optional[str] = None

    @property
    def derivations(self) -> int:
        """Total head instantiations (new facts plus duplicates)."""
        return self.facts_derived + self.duplicates

    @property
    def join_work(self) -> int:
        """Rows enumerated plus index probes — the quantity the
        indexed-engine monotonicity regression bounds against the
        scanning baseline."""
        return self.rows_scanned + self.index_probes

    @property
    def probe_ratio(self) -> float:
        """Fraction of probes answered by an index (1.0 = no scans)."""
        total = self.index_probes + self.scan_fallbacks
        return self.index_probes / total if total else 0.0

    def merge(self, other: "EvalStats") -> None:
        """Accumulate another run's counters into this one."""
        self.iterations += other.iterations
        self.facts_derived += other.facts_derived
        self.duplicates += other.duplicates
        self.rule_firings += other.rule_firings
        self.join_probes += other.join_probes
        self.rows_scanned += other.rows_scanned
        self.index_probes += other.index_probes
        self.index_builds += other.index_builds
        self.scan_fallbacks += other.scan_fallbacks
        self.rules_retired += other.rules_retired
        self.kernel_launches += other.kernel_launches
        self.batch_probes += other.batch_probes
        self.batch_rows += other.batch_rows
        if other.dict_size > self.dict_size:
            self.dict_size = other.dict_size
        self.columnar_fallbacks += other.columnar_fallbacks
        self.plans_costed += other.plans_costed
        self.replans += other.replans
        if other.bound_overestimate_max > self.bound_overestimate_max:
            self.bound_overestimate_max = other.bound_overestimate_max
        self.units_scheduled += other.units_scheduled
        self.units_parallel += other.units_parallel
        self.unit_early_exits += other.unit_early_exits
        self.incremental_updates += other.incremental_updates
        self.facts_retracted += other.facts_retracted
        self.facts_rederived += other.facts_rederived
        self.units_reactivated += other.units_reactivated
        self.wal_appends += other.wal_appends
        self.wal_replays += other.wal_replays
        self.snapshots_written += other.snapshots_written
        self.recovery_ms += other.recovery_ms
        self.governor_checks += other.governor_checks
        self.faults_injected += other.faults_injected
        for k, v in other.unit_rounds.items():
            self.unit_rounds[k] = self.unit_rounds.get(k, 0) + v
        for k, v in other.fact_counts.items():
            self.fact_counts[k] = self.fact_counts.get(k, 0) + v
        for k, v in other.degradations.items():
            self.degradations[k] = self.degradations.get(k, 0) + v
        if self.aborted_reason is None:
            self.aborted_reason = other.aborted_reason

    def as_dict(self, *, engine_invariant: bool = False) -> dict:
        """All counters as a plain dict (for JSON reports and the
        kernel/interpreter differential tests).

        With ``engine_invariant=True`` the counters that legitimately
        differ between the kernel and interpreter paths are dropped
        (``kernel_launches``), leaving exactly the quantities the two
        paths must agree on bit-for-bit.
        """
        out = {
            "iterations": self.iterations,
            "facts_derived": self.facts_derived,
            "duplicates": self.duplicates,
            "rule_firings": self.rule_firings,
            "join_probes": self.join_probes,
            "rows_scanned": self.rows_scanned,
            "index_probes": self.index_probes,
            "index_builds": self.index_builds,
            "scan_fallbacks": self.scan_fallbacks,
            "rules_retired": self.rules_retired,
            "kernel_launches": self.kernel_launches,
            "batch_probes": self.batch_probes,
            "batch_rows": self.batch_rows,
            "dict_size": self.dict_size,
            "columnar_fallbacks": self.columnar_fallbacks,
            "plans_costed": self.plans_costed,
            "replans": self.replans,
            "bound_overestimate_max": self.bound_overestimate_max,
            "units_scheduled": self.units_scheduled,
            "units_parallel": self.units_parallel,
            "unit_early_exits": self.unit_early_exits,
            "incremental_updates": self.incremental_updates,
            "facts_retracted": self.facts_retracted,
            "facts_rederived": self.facts_rederived,
            "units_reactivated": self.units_reactivated,
            "wal_appends": self.wal_appends,
            "wal_replays": self.wal_replays,
            "snapshots_written": self.snapshots_written,
            "recovery_ms": self.recovery_ms,
            "unit_rounds": dict(self.unit_rounds),
            "fact_counts": dict(self.fact_counts),
            "governor_checks": self.governor_checks,
            "faults_injected": self.faults_injected,
            "degradations": dict(self.degradations),
            "aborted_reason": self.aborted_reason,
            "derivations": self.derivations,
            "join_work": self.join_work,
        }
        if engine_invariant:
            del out["kernel_launches"]
            # the columnar counters measure which path ran, not how
            # much join work was done, so they differ by construction
            del out["batch_probes"]
            del out["batch_rows"]
            del out["dict_size"]
            del out["columnar_fallbacks"]
            # the planner counters measure which planner ran (and how
            # often it re-ranked), not how much join work resulted;
            # prepared-cache hits alone make them configuration-variant
            del out["plans_costed"]
            del out["replans"]
            del out["bound_overestimate_max"]
            # faulted degradations name the rung actually taken, which
            # legitimately differs between engine configurations
            del out["degradations"]
            # durability is orthogonal to evaluation semantics: a
            # durable and a non-durable session over the same updates
            # must agree on every engine-invariant counter, while these
            # measure logging/snapshot/recovery work only
            del out["wal_appends"]
            del out["wal_replays"]
            del out["snapshots_written"]
            del out["recovery_ms"]
        return out

    def summary(self) -> str:
        """One-line human-readable summary used by benchmark output."""
        line = (
            f"iters={self.iterations} facts={self.facts_derived} "
            f"dups={self.duplicates} firings={self.rule_firings} "
            f"probes={self.join_probes} scanned={self.rows_scanned} "
            f"idx={self.index_probes} builds={self.index_builds} "
            f"fallbacks={self.scan_fallbacks} retired={self.rules_retired} "
            f"kernels={self.kernel_launches} units={self.units_scheduled} "
            f"unit_exits={self.unit_early_exits}"
        )
        if self.batch_probes or self.dict_size or self.columnar_fallbacks:
            line += (
                f" batches={self.batch_probes} batch_rows={self.batch_rows} "
                f"dict={self.dict_size} col_fallbacks={self.columnar_fallbacks}"
            )
        if self.plans_costed or self.replans:
            line += (
                f" plans_costed={self.plans_costed} replans={self.replans} "
                f"overest={self.bound_overestimate_max:.1f}"
            )
        if self.incremental_updates:
            line += (
                f" updates={self.incremental_updates} "
                f"retracted={self.facts_retracted} "
                f"rederived={self.facts_rederived} "
                f"reactivated={self.units_reactivated}"
            )
        if self.wal_appends or self.snapshots_written or self.wal_replays:
            line += (
                f" wal={self.wal_appends} snaps={self.snapshots_written} "
                f"replayed={self.wal_replays}"
            )
        if self.recovery_ms:
            line += f" recovery_ms={self.recovery_ms:.1f}"
        if self.faults_injected:
            rungs = ",".join(sorted(self.degradations))
            line += f" faults={self.faults_injected} degraded=[{rungs}]"
        if self.aborted_reason is not None:
            line += f" PARTIAL(aborted: {self.aborted_reason})"
        return line
