"""Counters collected during bottom-up evaluation.

The paper's performance claims are about *work*, not wall-clock time:
section 3.2 argues that projecting out existential arguments "not only
reduces the facts produced but also reduces the duplicate elimination
cost significantly", and section 3.1 that boolean rules can be "removed
from the fixpoint computation once the variable becomes true".  The
engine therefore counts facts, duplicate derivations, join probes, rule
firings and retired rules, so benchmarks can report the quantities the
paper reasons about alongside wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EvalStats"]


@dataclass
class EvalStats:
    """Mutable counters for one evaluation run."""

    iterations: int = 0
    #: Facts newly added to derived predicates.
    facts_derived: int = 0
    #: Head instantiations that produced an already-known fact — the
    #: duplicate-elimination work the paper's section 3.2 talks about.
    duplicates: int = 0
    #: Number of complete body matches (head instantiations attempted).
    rule_firings: int = 0
    #: Index/scan probes performed while matching body literals; a
    #: proxy for join work.
    join_probes: int = 0
    #: Rows enumerated from relations while matching body literals.
    rows_scanned: int = 0
    #: Boolean (cut) rules retired before the fixpoint finished.
    rules_retired: int = 0
    #: Facts per derived predicate at fixpoint.
    fact_counts: dict[str, int] = field(default_factory=dict)

    @property
    def derivations(self) -> int:
        """Total head instantiations (new facts plus duplicates)."""
        return self.facts_derived + self.duplicates

    def merge(self, other: "EvalStats") -> None:
        """Accumulate another run's counters into this one."""
        self.iterations += other.iterations
        self.facts_derived += other.facts_derived
        self.duplicates += other.duplicates
        self.rule_firings += other.rule_firings
        self.join_probes += other.join_probes
        self.rows_scanned += other.rows_scanned
        self.rules_retired += other.rules_retired
        for k, v in other.fact_counts.items():
            self.fact_counts[k] = self.fact_counts.get(k, 0) + v

    def summary(self) -> str:
        """One-line human-readable summary used by benchmark output."""
        return (
            f"iters={self.iterations} facts={self.facts_derived} "
            f"dups={self.duplicates} firings={self.rule_firings} "
            f"probes={self.join_probes} scanned={self.rows_scanned} "
            f"retired={self.rules_retired}"
        )
