"""Compiled rule kernels: the join hot path as generated Python.

:func:`~repro.engine.plan.match_plan` is a recursive generator
interpreter; correct, but every binding step allocates a generator
frame and :meth:`LiteralPlan.bind` copies the whole substitution dict
per candidate row.  On the fixpoint loop's hot path that interpretation
overhead is the constant factor multiplying every optimization the
paper's pipeline buys.

This module compiles each ``(CompiledRule, plan)`` pair to a
specialized generator function — one flat nest of ``for`` loops with
**slot-based registers**:

- every variable is assigned an integer slot at compile time and
  becomes a plain local ``r<slot>`` in the generated function (Python
  locals are array slots in the frame, so a "register file" needs no
  allocation at all);
- constants are inlined as literals, index keys as tuple displays, and
  index lookups as direct ``rel.lookup(...)`` calls;
- repeated-variable consistency checks compile to ``!=`` guards;
- the existential first-match cut compiles to a ``break``;
- built-in filters, negation checks, and head construction are emitted
  into the kernel body, so one ``yield`` per rule firing is the only
  interpreter traffic left.

Kernels are *bit-identical* to the interpreter: same answers, same
provenance (row enumeration order is preserved), and the same
``EvalStats`` counters (``join_probes``, ``index_probes``,
``scan_fallbacks``, ``rows_scanned``, ``rule_firings``) — the
interpreter stays available as the differential oracle via
``EngineOptions(use_kernels=False)`` / the CLI's ``--no-kernel``.

Generated functions are cached globally by source text (the source *is*
the plan signature: predicate names, slot assignments, bound-position
keys, inlined constants, and flags all appear in it), so repeated
``evaluate()`` calls over the same program shapes skip ``compile()``.
This process-wide cache is also what keeps adaptive replanning
amortized: a :func:`~repro.engine.plan.replan_delta_plans` clone is a
fresh ``CompiledRule`` whose per-object memo starts empty, but any
re-ranked plan whose join order was generated before — including a
replan that toggles back to an earlier order — hits the source-text
cache and costs string generation only, no ``compile()``.
Use :func:`kernel_source` to read the generated code when debugging.

These per-row kernels are the middle rung of the engine ladder: when
numpy is available the scheduler first tries the columnar batch
kernels in :mod:`repro.engine.batch_kernel`, which run whole delta
frontiers through vectorized array joins (``EngineOptions(
use_columnar=False)`` / ``--no-columnar`` selects this tier directly);
rules the batch plane declines — unsupported shapes, cold stores,
injected faults — fall back here, and failures here fall back to the
interpreter.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..datalog.builtins import BUILTINS
from ..datalog.terms import Constant, Variable
from .plan import CompiledRule, LiteralPlan

__all__ = [
    "KernelError",
    "kernel_source",
    "rule_kernel",
    "kernel_cache_stats",
    "clear_kernel_cache",
]


class KernelError(Exception):
    """A rule cannot be compiled to a kernel (e.g. a constant with no
    safe literal representation); the engine falls back to the
    interpreter for that rule."""


def _const(value) -> str:
    if type(value) in (int, str, bool, float) or value is None:
        return repr(value)
    raise KernelError(f"constant {value!r} has no inline literal form")


def _tuple_display(parts: list[str]) -> str:
    if len(parts) == 1:
        return f"({parts[0]},)"
    return "(" + ", ".join(parts) + ")"


class _Emitter:
    """Accumulates indented source lines."""

    def __init__(self):
        self.lines: list[str] = []

    def w(self, depth: int, text: str) -> None:
        self.lines.append("    " * depth + text)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def kernel_source(
    cr: CompiledRule,
    plan_id: Optional[int] = None,
    *,
    use_indexes: bool = True,
    record_rows: bool = False,
) -> str:
    """Generate the kernel source for one plan of *cr*.

    *plan_id* is ``None`` for the naive plan or the index of a delta
    plan (the semi-naive specialization whose first step reads the
    delta frontier).  With *record_rows* the kernel yields
    ``(head_values, body_rows)`` for provenance recording; otherwise it
    yields bare ``head_values`` tuples.  Raises :class:`KernelError`
    for rules the compiler cannot specialize.
    """
    plans = cr.plan if plan_id is None else cr.delta_plans[plan_id]
    delta = plan_id is not None
    n = len(plans)

    # -- register allocation: first binding order across plan steps ----
    slots: dict[Variable, int] = {}
    for plan in plans:
        for _, var in plan.free_positions:
            if var not in slots:
                slots[var] = len(slots)

    def term(t) -> str:
        if isinstance(t, Constant):
            return _const(t.value)
        if t not in slots:
            raise KernelError(f"variable {t} is never bound by the plan")
        return f"r{slots[t]}"

    out = _Emitter()
    sig = f"plan={'naive' if plan_id is None else f'delta[{plan_id}]'}"
    out.w(0, f"def _kernel(db, stats, delta):")
    out.w(1, f"# rule {cr.rule_index}: {cr.rule}")
    out.w(1, f"# {sig} use_indexes={use_indexes} record_rows={record_rows}")
    registers = ", ".join(
        f"r{s}={v.name}" for v, s in sorted(slots.items(), key=lambda kv: kv[1])
    )
    out.w(1, f"# registers: {registers or '(none)'}")

    # -- prelude: hoist relation dict lookups (identities are stable
    # for the lifetime of a fixpoint run; emptiness is re-checked at
    # the step's position so counters match the interpreter exactly)
    for i, plan in enumerate(plans):
        if delta and i == 0:
            continue
        out.w(1, f"rel{i} = db.relation({plan.atom.predicate!r})")
    for k, atom in enumerate(cr.rule.negative):
        out.w(1, f"nrel{k} = db.relation({atom.predicate!r})")

    def fail(depth_in_loops: int) -> str:
        return "continue" if depth_in_loops > 0 else "return"

    def emit_step(i: int, depth: int) -> None:
        if i == n:
            emit_tail(depth, loops=n)
            return
        plan = plans[i]
        looped = True  # cleared by the loop-free membership fast path
        if delta and i == 0:
            out.w(depth, "stats.join_probes += 1")
            if not plan.bound_positions:
                out.w(depth, f"for row{i} in delta.all_rows():")
            else:
                positions = _tuple_display([str(p) for p in plan.bound_positions])
                key = _tuple_display(
                    [term(plan.atom.args[p]) for p in plan.bound_positions]
                )
                out.w(depth, f"for row{i} in delta.lookup({positions}, {key}):")
            body = depth + 1
            out.w(body, "stats.rows_scanned += 1")
            emit_binds(plan, i, body)
        elif use_indexes and plan.bound_positions and not plan.free_positions:
            # fully bound: the key *is* the candidate row, so the row
            # set answers the probe directly — the mirror of
            # match_plan's fast path, keeping kernel counters
            # bit-identical (no index build, at most one row).  Emitted
            # as a guarded block, NOT an early exit: a miss must fall
            # through to an enclosing existential cut exactly the way
            # an exhausted loop would, or the cut would be skipped and
            # further (identically doomed) candidates probed.
            key = _tuple_display(
                [term(plan.atom.args[p]) for p in plan.bound_positions]
            )
            out.w(depth, f"if rel{i} is not None:")
            out.w(depth + 1, "stats.join_probes += 1")
            out.w(depth + 1, "stats.index_probes += 1")
            out.w(depth + 1, f"row{i} = {key}")
            out.w(depth + 1, f"if row{i} in rel{i}:")
            body = depth + 2
            out.w(body, "stats.rows_scanned += 1")
            looped = False
        else:
            out.w(depth, f"if rel{i} is None: {fail(i)}")
            out.w(depth, "stats.join_probes += 1")
            if not plan.bound_positions:
                out.w(depth, "stats.scan_fallbacks += 1")
                out.w(depth, f"for row{i} in list(rel{i}):")
                body = depth + 1
                out.w(body, "stats.rows_scanned += 1")
                emit_binds(plan, i, body)
            elif use_indexes:
                positions = _tuple_display([str(p) for p in plan.bound_positions])
                key = _tuple_display(
                    [term(plan.atom.args[p]) for p in plan.bound_positions]
                )
                out.w(depth, "stats.index_probes += 1")
                out.w(depth, f"for row{i} in rel{i}.lookup({positions}, {key}):")
                body = depth + 1
                out.w(body, "stats.rows_scanned += 1")
                emit_binds(plan, i, body)
            else:
                # --no-index: enumerate the whole relation, filter on
                # the bound positions (every enumerated row is charged
                # exactly once, as in _scan_filter + the outer loop)
                out.w(depth, "stats.scan_fallbacks += 1")
                out.w(depth, f"for row{i} in list(rel{i}):")
                body = depth + 1
                out.w(body, "stats.rows_scanned += 1")
                for p in plan.bound_positions:
                    out.w(body, f"if row{i}[{p}] != {term(plan.atom.args[p])}: continue")
                emit_binds(plan, i, body)
        emit_step(i + 1, body)
        if plan.existential and looped:
            out.w(body, "break  # existential cut: one witness is enough")

    def emit_binds(plan: LiteralPlan, i: int, depth: int) -> None:
        seen: set[Variable] = set()
        for p, var in plan.free_positions:
            if var in seen:
                out.w(depth, f"if row{i}[{p}] != r{slots[var]}: continue")
            else:
                out.w(depth, f"r{slots[var]} = row{i}[{p}]")
                seen.add(var)

    def emit_tail(depth: int, loops: int) -> None:
        for atom in cr.builtins:
            a, b = (term(t) for t in atom.args)
            out.w(depth, f"if not _bi_{atom.predicate}({a}, {b}): {fail(loops)}")
        for k, atom in enumerate(cr.rule.negative):
            out.w(depth, "stats.join_probes += 1")
            key = _tuple_display([term(t) for t in atom.args]) if atom.args else "()"
            out.w(depth, f"if nrel{k} is not None and {key} in nrel{k}: {fail(loops)}")
        out.w(depth, "stats.rule_firings += 1")
        head = _tuple_display([term(t) for t in cr.rule.head.args]) \
            if cr.rule.head.args else "()"
        if record_rows:
            rows = [""] * len(cr.relational_body)
            for i, plan in enumerate(plans):
                rows[plan.body_index] = f"row{i}"
            rows_tuple = _tuple_display(rows) if rows else "()"
            out.w(depth, f"yield {head}, {rows_tuple}")
        else:
            out.w(depth, f"yield {head}")

    emit_step(0, 1)
    return out.source()


# -- compilation cache -------------------------------------------------------

#: the module-level namespace every kernel executes in: the evaluable
#: built-ins under stable names (direct calls, no dict lookup per row)
_KERNEL_GLOBALS = {f"_bi_{name}": fn for name, fn in BUILTINS.items()}

#: source text -> compiled kernel function.  The source is the cache
#: key: it embeds predicate names, slot numbering, inlined constants,
#: bound-position keys, and the use_indexes / record_rows flags, so two
#: plans share a kernel exactly when they are structurally identical.
_FN_CACHE: dict[str, Callable] = {}
_CACHE_STATS = {"compiles": 0, "hits": 0}


def _compile_source(source: str) -> Callable:
    fn = _FN_CACHE.get(source)
    if fn is not None:
        _CACHE_STATS["hits"] += 1
        return fn
    namespace = dict(_KERNEL_GLOBALS)
    code = compile(source, "<repro-kernel>", "exec")
    exec(code, namespace)
    fn = namespace["_kernel"]
    _FN_CACHE[source] = fn
    _CACHE_STATS["compiles"] += 1
    return fn


def kernel_cache_stats() -> dict:
    """Global cache counters: ``{"compiles": ..., "hits": ...}``."""
    return dict(_CACHE_STATS)


def clear_kernel_cache() -> None:
    """Drop every compiled kernel (tests / memory pressure)."""
    _FN_CACHE.clear()
    _CACHE_STATS["compiles"] = 0
    _CACHE_STATS["hits"] = 0


def rule_kernel(
    cr: CompiledRule,
    plan_id: Optional[int] = None,
    *,
    use_indexes: bool = True,
    record_rows: bool = False,
) -> Optional[Callable]:
    """The compiled kernel for one plan of *cr*, or ``None`` when the
    rule cannot be specialized (the caller falls back to the
    interpreter).  Kernels are memoized on the compiled rule, so each
    ``(plan, flags)`` pair is generated at most once per rule object.
    """
    cache = cr.__dict__.get("_kernels")
    if cache is None:
        cache = {}
        object.__setattr__(cr, "_kernels", cache)
    key = (plan_id, use_indexes, record_rows)
    if key in cache:
        return cache[key]
    try:
        fn = _compile_source(
            kernel_source(
                cr, plan_id, use_indexes=use_indexes, record_rows=record_rows
            )
        )
    except KernelError:
        fn = None
    cache[key] = fn
    return fn
