"""Abstract domains for the monotone-framework analyzer.

Three domains ship with the framework (:mod:`repro.analysis.absint`),
each a small lattice with a monotone rule transfer function:

- :class:`SortDomain` — per-argument-position *sorts*: a finite set of
  constants (up to :data:`MAX_SORT_CONSTANTS`, overflowing to a set of
  Python type names) under subset order with ``TOP`` = "any value".
  Seeded from stored EDB rows and in-program ground facts; the meet of
  the sorts a variable joins proves joins statically empty (DL018),
  unifications ill-typed (DL019), and head columns constant (DL020).
- :class:`CardinalityDomain` — :class:`DegreeSketch` values: a
  relation's log-bucketed size plus, per position, the log-bucketed
  **max degree** (most rows any one value matches there).  EDB sketches
  are *measured* from the columnar dictionary/posting structures
  (:meth:`repro.datalog.database.Relation.degree_profile`); IDB
  sketches are propagated through rule bodies with the Lemma 3.1
  existential-component drop, exactly the arithmetic of
  :class:`repro.engine.cost.BoundCostModel`.  Findings: DL021
  (measured bound blowup) and DL022 (hub-key skew).  Sketches persist
  as JSON (:func:`save_profiles` / :func:`load_profiles`).
- :class:`BoundednessDomain` — a two-point derivability lattice
  (``False`` = provably empty) plus structural bounded-recursion
  detection.  Findings: DL023 (bounded recursion — the fixpoint closes
  in a constant number of rounds) and DL024 (a recursive component
  with no derivable base case).

Every domain implements the :class:`AbstractDomain` contract; values
must be comparable with ``==`` so the fixpoint driver can detect
stabilization, and ``join`` must be monotone with ``bottom`` as its
identity.  ``top`` is the sound escape hatch the driver widens to if a
component fails to stabilize within its iteration budget.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Optional, Sequence

from ..datalog.ast import Atom, Rule
from ..datalog.builtins import is_builtin
from ..datalog.terms import Constant, Variable
from ..engine.cost import (
    DEFAULT_FANOUT,
    DEFAULT_SIZE,
    BoundCostModel,
    RelationProfile,
    _component_vars,
    bucket_size,
)
from .diagnostics import Diagnostic, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..datalog.database import Relation
    from .absint import AnalysisContext, RuleView

__all__ = [
    "TOP",
    "MAX_SORT_CONSTANTS",
    "sort_of_values",
    "sort_join",
    "sort_meet",
    "sort_types",
    "render_sort",
    "DegreeSketch",
    "CARD_CAP",
    "SKEW_MIN_SIZE",
    "save_profiles",
    "load_profiles",
    "PROFILE_FORMAT_VERSION",
    "AbstractDomain",
    "SortDomain",
    "CardinalityDomain",
    "BoundednessDomain",
]


# ---------------------------------------------------------------------------
# the sort lattice
# ---------------------------------------------------------------------------

#: a finite sort wider than this many distinct constants collapses to
#: the set of the constants' type names
MAX_SORT_CONSTANTS = 16


class _Top:
    """The lattice top: any value may occur at the position."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "TOP"


TOP = _Top()

#: a sort is ``TOP`` or a frozenset of ``("const", value)`` /
#: ``("type", typename)`` items; the empty frozenset is bottom
Sort = Any


def _type_name(value: Any) -> str:
    return type(value).__name__


def _normalize(items: Iterable[tuple[str, Any]]) -> frozenset:
    """Drop constants covered by a type item; collapse overflowing
    constant sets to their types."""
    out = set(items)
    types = {val for kind, val in out if kind == "type"}
    if types:
        out = {
            it for it in out
            if it[0] == "type" or _type_name(it[1]) not in types
        }
    consts = [it for it in out if it[0] == "const"]
    if len(consts) > MAX_SORT_CONSTANTS:
        for it in consts:
            out.discard(it)
            out.add(("type", _type_name(it[1])))
    return frozenset(out)


def sort_of_values(values: Iterable[Any]) -> Sort:
    """The tightest sort covering *values* (bottom for no values)."""
    items: set[tuple[str, Any]] = set()
    types: set[str] = set()
    for v in values:
        if types:
            types.add(_type_name(v))
            continue
        items.add(("const", v))
        if len(items) > MAX_SORT_CONSTANTS:
            types = {_type_name(it[1]) for it in items}
    if types:
        return frozenset(("type", t) for t in types)
    return frozenset(items)


def sort_join(a: Sort, b: Sort) -> Sort:
    if a is TOP or b is TOP:
        return TOP
    return _normalize(a | b)


def sort_meet(a: Sort, b: Sort) -> Sort:
    """Greatest lower bound: the values both sorts admit."""
    if a is TOP:
        return b
    if b is TOP:
        return a
    out = set()
    b_types = {val for kind, val in b if kind == "type"}
    a_types = {val for kind, val in a if kind == "type"}
    for kind, val in a:
        if kind == "const":
            if ("const", val) in b or _type_name(val) in b_types:
                out.add((kind, val))
        else:
            if val in b_types:
                out.add((kind, val))
            else:
                out.update(
                    it for it in b
                    if it[0] == "const" and _type_name(it[1]) == val
                )
    return frozenset(out)


def sort_types(s: Sort) -> Optional[frozenset[str]]:
    """The Python type names a sort admits (``None`` for TOP = all)."""
    if s is TOP:
        return None
    return frozenset(
        val if kind == "type" else _type_name(val) for kind, val in s
    )


def render_sort(s: Sort) -> str:
    if s is TOP:
        return "any"
    if not s:
        return "empty"
    consts = sorted(
        (repr(val) for kind, val in s if kind == "const"), key=str
    )
    types = sorted(val for kind, val in s if kind == "type")
    return "{" + ", ".join(types + consts) + "}"


# ---------------------------------------------------------------------------
# degree sketches
# ---------------------------------------------------------------------------

#: propagated cardinalities saturate here, so recursive sketch
#: iteration climbs at most ~40 buckets per position before stabilizing
CARD_CAP = float(1 << 40)

#: relations smaller than this are never reported as skewed (DL022)
SKEW_MIN_SIZE = 16

#: on-disk sketch format version (see docs/api.md "Program analysis")
PROFILE_FORMAT_VERSION = 1


class DegreeSketch:
    """A relation's measured-or-propagated cardinality abstraction.

    ``size`` and ``degree[p]`` are log-bucketed (:func:`bucket_size`)
    exactly like :class:`repro.engine.cost.RelationProfile`, so a
    sketch converts losslessly into the planner's profile.  ``measured``
    is ``True`` only when every input the value was computed from was
    counted on real rows (and no saturation occurred) — synthetic
    defaults and saturated recursive estimates are not "measured", and
    DL021/DL022 only ever fire on measured sketches.  ``raw_size`` /
    ``raw_degree`` keep the exact pre-bucket counts for measured EDB
    seeds (0/() otherwise); they do not participate in equality or
    signatures.
    """

    __slots__ = ("size", "degree", "measured", "raw_size", "raw_degree")

    def __init__(
        self,
        size: int,
        degree: tuple[int, ...],
        measured: bool = False,
        raw_size: int = 0,
        raw_degree: tuple[int, ...] = (),
    ):
        self.size = size
        self.degree = degree
        self.measured = measured
        self.raw_size = raw_size
        self.raw_degree = raw_degree

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DegreeSketch)
            and self.size == other.size
            and self.degree == other.degree
            and self.measured == other.measured
        )

    def __hash__(self) -> int:
        return hash((self.size, self.degree, self.measured))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = "measured" if self.measured else "synthetic"
        return f"DegreeSketch({self.size}, {self.degree}, {tag})"

    def signature(self) -> tuple:
        return (self.size, self.degree, self.measured)

    def to_profile(self) -> RelationProfile:
        return RelationProfile(self.size, self.degree)

    def join(self, other: "DegreeSketch") -> "DegreeSketch":
        degree = tuple(
            max(a, b) for a, b in zip(self.degree, other.degree)
        )
        if len(self.degree) != len(other.degree):
            longer = max((self.degree, other.degree), key=len)
            degree = degree + longer[len(degree):]
        return DegreeSketch(
            max(self.size, other.size), degree,
            self.measured and other.measured,
        )

    def to_dict(self) -> dict:
        return {
            "size": self.size,
            "degree": list(self.degree),
            "measured": self.measured,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DegreeSketch":
        return cls(
            int(data["size"]),
            tuple(int(d) for d in data["degree"]),
            bool(data.get("measured", False)),
        )

    @classmethod
    def from_counts(cls, size: int, degrees: Sequence[int]) -> "DegreeSketch":
        """A measured sketch from exact (row count, max degree) counts —
        the shape :meth:`Relation.degree_profile` returns."""
        return cls(
            bucket_size(size),
            tuple(bucket_size(d) for d in degrees),
            measured=True,
            raw_size=size,
            raw_degree=tuple(degrees),
        )

    @classmethod
    def synthetic(cls, arity: int) -> "DegreeSketch":
        """The planner's synthetic default, bucketed (the fallback when
        no EDB is loaded)."""
        return cls(
            bucket_size(DEFAULT_SIZE),
            tuple(bucket_size(DEFAULT_FANOUT) for _ in range(arity)),
            measured=False,
        )


def save_profiles(path: str, sketches: Mapping[str, DegreeSketch]) -> None:
    """Persist *sketches* as JSON (format in docs/api.md)."""
    payload = {
        "version": PROFILE_FORMAT_VERSION,
        "sketches": {
            pred: sketches[pred].to_dict() for pred in sorted(sketches)
        },
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")


def load_profiles(path: str) -> dict[str, DegreeSketch]:
    """Load sketches persisted by :func:`save_profiles`."""
    with open(path, encoding="utf-8") as f:
        payload = json.load(f)
    version = payload.get("version")
    if version != PROFILE_FORMAT_VERSION:
        raise ValueError(
            f"unsupported profile format version {version!r} "
            f"(expected {PROFILE_FORMAT_VERSION})"
        )
    return {
        pred: DegreeSketch.from_dict(data)
        for pred, data in payload.get("sketches", {}).items()
    }


# ---------------------------------------------------------------------------
# the domain contract
# ---------------------------------------------------------------------------


class AbstractDomain:
    """One pluggable analysis: a lattice plus a rule transfer function.

    The driver seeds every EDB predicate (:meth:`seed`), starts every
    IDB predicate at :meth:`bottom`, and Kleene-iterates
    :meth:`transfer` over each SCC of the adorned program's
    condensation, joining each rule's contribution into its head's
    value until the environment stabilizes (widening to :meth:`top`
    past the iteration budget).  :meth:`diagnostics` then reads the
    final environment off the :class:`AnalysisContext`.
    """

    #: the key this domain's values live under in the environment
    name: str = "domain"

    def seed(self, predicate: str, arity: int,
             relation: Optional["Relation"]) -> Any:
        """The EDB value: measured from *relation* when stored,
        an unknown-but-sound default when ``None``."""
        raise NotImplementedError

    def bottom(self, predicate: str, arity: int) -> Any:
        raise NotImplementedError

    def top(self, predicate: str, arity: int) -> Any:
        raise NotImplementedError

    def join(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def transfer(self, view: "RuleView", env: Mapping[str, Any]) -> Any:
        """The head value this rule contributes under *env*."""
        raise NotImplementedError

    def settle(self, predicate: str, value: Any, arity: int,
               recursive: bool, adom: Optional[int]) -> Any:
        """Post-stabilization adjustment for one component member.

        *recursive* marks members of recursive components; *adom* is
        the size of the active domain (distinct EDB constants plus
        program constants) when an EDB was loaded, else ``None``.  The
        default keeps the fixpoint value unchanged."""
        return value

    def diagnostics(self, ctx: "AnalysisContext") -> list[Diagnostic]:
        return []


# ---------------------------------------------------------------------------
# sort inference
# ---------------------------------------------------------------------------

#: rows sampled per relation when seeding sorts; beyond the cap the
#: constant sets have long collapsed to type sets anyway
SORT_SEED_ROW_LIMIT = 4096


class SortDomain(AbstractDomain):
    """Per-position constant/type sorts; DL018 / DL019 / DL020."""

    name = "sorts"

    def seed(self, predicate: str, arity: int,
             relation: Optional["Relation"]) -> tuple:
        if relation is None:
            return tuple(TOP for _ in range(arity))
        columns: list[set] = [set() for _ in range(arity)]
        for i, row in enumerate(relation):
            if i >= SORT_SEED_ROW_LIMIT:
                break
            for p in range(arity):
                columns[p].add(row[p])
        if len(relation) > SORT_SEED_ROW_LIMIT:
            # sampled: keep only the (closed) type information
            return tuple(
                frozenset(("type", t) for t in {_type_name(v) for v in col})
                for col in columns
            )
        return tuple(sort_of_values(col) for col in columns)

    def bottom(self, predicate: str, arity: int) -> tuple:
        return tuple(frozenset() for _ in range(arity))

    def top(self, predicate: str, arity: int) -> tuple:
        return tuple(TOP for _ in range(arity))

    def join(self, a: tuple, b: tuple) -> tuple:
        return tuple(sort_join(x, y) for x, y in zip(a, b))

    # -- propagation --------------------------------------------------------

    def _propagate(
        self,
        view: "RuleView",
        env: Mapping[str, Any],
        findings: Optional[list] = None,
        is_idb=None,
    ) -> tuple:
        """One pass over *view*'s body: returns the head sort tuple,
        optionally appending ``(kind, atom, position, detail)`` finding
        candidates (kinds: ``const``, ``unify``, ``empty``)."""
        rule = view.rule
        var_sorts: dict[Variable, Sort] = {}
        empty = False
        for atom in rule.body:
            if is_builtin(atom.predicate):
                continue
            sorts = env.get(atom.predicate)
            if sorts is None:
                sorts = self.top(atom.predicate, len(atom.args))
            for p, arg in enumerate(atom.args):
                pos_sort = sorts[p] if p < len(sorts) else TOP
                if pos_sort is not TOP and not pos_sort:
                    # the position admits no value at all
                    empty = True
                    if findings is not None and not (
                        is_idb and is_idb(atom.predicate)
                    ):
                        findings.append(("empty", atom, p, pos_sort))
                    continue
                if isinstance(arg, Constant):
                    met = sort_meet(
                        frozenset({("const", arg.value)}), pos_sort
                    )
                    if not met and met is not TOP:
                        empty = True
                        if findings is not None:
                            findings.append(("const", atom, p, pos_sort))
                else:
                    old = var_sorts.get(arg, TOP)
                    met = sort_meet(old, pos_sort)
                    if (
                        met is not TOP
                        and not met
                        and (old is TOP or old)
                        and pos_sort
                    ):
                        empty = True
                        if findings is not None:
                            findings.append(("unify", atom, p, old))
                    var_sorts[arg] = met
        if empty:
            return self.bottom(rule.head.predicate, len(rule.head.args))
        head = []
        for arg in rule.head.args:
            if isinstance(arg, Constant):
                head.append(frozenset({("const", arg.value)}))
            else:
                head.append(var_sorts.get(arg, TOP))
        return tuple(head)

    def transfer(self, view: "RuleView", env: Mapping[str, Any]) -> tuple:
        return self._propagate(view, env)

    # -- findings -----------------------------------------------------------

    def diagnostics(self, ctx: "AnalysisContext") -> list[Diagnostic]:
        out: list[Diagnostic] = []
        env = ctx.env[self.name]
        for view in ctx.views:
            findings: list = []
            self._propagate(view, env, findings, is_idb=ctx.is_idb)
            for kind, atom, p, detail in findings:
                base = ctx.base_of(atom.predicate)
                if kind == "const":
                    const = atom.args[p]
                    out.append(Diagnostic(
                        "DL018", Severity.WARNING,
                        f"constant {const} never occurs at position {p} "
                        f"of {base} (inferred sort "
                        f"{render_sort(detail)}); the rule cannot fire",
                        predicate=ctx.base_of(view.base),
                        rule_index=view.index,
                        span=view.span,
                        hint="drop the rule or fix the constant",
                    ))
                elif kind == "empty":
                    out.append(Diagnostic(
                        "DL018", Severity.WARNING,
                        f"position {p} of {base} admits no value (the "
                        f"stored relation is empty there); the rule "
                        f"cannot fire",
                        predicate=ctx.base_of(view.base),
                        rule_index=view.index,
                        span=view.span,
                        hint="load facts for the predicate or drop "
                             "the rule",
                    ))
                else:
                    var = atom.args[p]
                    pos_sort = env.get(atom.predicate)
                    pos_sort = (
                        pos_sort[p]
                        if pos_sort is not None and p < len(pos_sort)
                        else TOP
                    )
                    types_a = sort_types(detail)
                    types_b = sort_types(pos_sort)
                    disjoint_types = (
                        types_a is not None
                        and types_b is not None
                        and not (types_a & types_b)
                    )
                    if disjoint_types:
                        out.append(Diagnostic(
                            "DL019", Severity.WARNING,
                            f"variable {var} unifies type-disjoint "
                            f"sorts {render_sort(detail)} and "
                            f"{render_sort(pos_sort)} at position {p} "
                            f"of {base}; the join always fails",
                            predicate=ctx.base_of(view.base),
                            rule_index=view.index,
                            span=view.span,
                            hint="the joined columns hold different "
                                 "types of values; check the rule",
                        ))
                    else:
                        out.append(Diagnostic(
                            "DL018", Severity.WARNING,
                            f"variable {var} joins value-disjoint "
                            f"sorts {render_sort(detail)} and "
                            f"{render_sort(pos_sort)} at position {p} "
                            f"of {base}; the join is statically empty",
                            predicate=ctx.base_of(view.base),
                            rule_index=view.index,
                            span=view.span,
                            hint="no value occurs in both joined "
                                 "columns",
                        ))
        # DL020: constant head columns of derived predicates (fact-only
        # predicates are EDB-in-disguise — DL015's territory, and a
        # single fact would always "pin" its columns)
        for base, sorts in sorted(ctx.merged(self.name).items()):
            if not ctx.is_idb_base(base) or ctx.fact_only(base):
                continue
            for p, s in enumerate(sorts):
                if s is TOP or len(s) != 1:
                    continue
                (kind, val), = s
                if kind != "const":
                    continue
                view = ctx.first_view(base)
                out.append(Diagnostic(
                    "DL020", Severity.INFO,
                    f"every {base} fact carries the constant {val!r} "
                    f"at position {p}; a selection could specialize "
                    f"the column away",
                    predicate=base,
                    rule_index=view.index if view else None,
                    span=view.span if view else None,
                ))
        return out


# ---------------------------------------------------------------------------
# cardinality sketches
# ---------------------------------------------------------------------------

#: a rule blows up when its best-order intermediate bound exceeds this
#: multiple of its largest input relation (the measured analogue of
#: lints.BOUND_BLOWUP_FACTOR over DEFAULT_SIZE)
MEASURED_BLOWUP_FACTOR = 100


class CardinalityDomain(AbstractDomain):
    """Measured/propagated :class:`DegreeSketch` values; DL021 / DL022."""

    name = "cardinality"

    def __init__(self,
                 preloaded: Optional[Mapping[str, DegreeSketch]] = None):
        self.preloaded = dict(preloaded or {})

    def seed(self, predicate: str, arity: int,
             relation: Optional["Relation"]) -> DegreeSketch:
        loaded = self.preloaded.get(predicate)
        if loaded is not None:
            return loaded
        if relation is None:
            return DegreeSketch.synthetic(arity)
        size, degrees = relation.degree_profile()
        return DegreeSketch.from_counts(size, degrees)

    def bottom(self, predicate: str, arity: int) -> DegreeSketch:
        return DegreeSketch(0, (0,) * arity, measured=True)

    def top(self, predicate: str, arity: int) -> DegreeSketch:
        cap = int(CARD_CAP)
        return DegreeSketch(cap, (cap,) * arity, measured=False)

    def join(self, a: DegreeSketch, b: DegreeSketch) -> DegreeSketch:
        return a.join(b)

    # -- propagation --------------------------------------------------------

    def _pricing(
        self, view: "RuleView", env: Mapping[str, Any]
    ) -> tuple[list[Atom], BoundCostModel, frozenset, bool]:
        """The priced body: relational literals with the Lemma 3.1
        existential components dropped, a cost model over the body's
        sketches, the needed-variable seed, and whether every priced
        sketch is measured."""
        rule = view.rule
        relational = [
            a for a in rule.body if not is_builtin(a.predicate)
        ]
        needed = view.needed_vars | frozenset(
            v
            for atom in (*rule.negative,
                         *(a for a in rule.body
                           if is_builtin(a.predicate)))
            for v in atom.args
            if isinstance(v, Variable)
        )
        relational = [
            a for a in relational
            if _component_vars(a, relational) & needed
        ]
        profiles: dict[str, RelationProfile] = {}
        measured = True
        for a in relational:
            sketch = env.get(a.predicate)
            if sketch is None:
                sketch = DegreeSketch.synthetic(len(a.args))
            measured = measured and sketch.measured
            profiles.setdefault(a.predicate, sketch.to_profile())
        return relational, BoundCostModel(profiles), needed, measured

    @staticmethod
    def _propagate(
        relational: Sequence[Atom],
        model: BoundCostModel,
        needed: frozenset,
        bound: frozenset = frozenset(),
    ) -> tuple[float, float]:
        """(final, worst) intermediate cardinality bound along the
        model's best order, starting from *bound* variables."""
        if not relational:
            return 1.0, 1.0
        order = model.order_remaining(
            relational, tuple(range(len(relational))), bound, needed
        )
        if order is None:
            order = tuple(range(len(relational)))
        bound_vars = set(bound)
        card = 1.0
        worst = 0.0
        for pos, i in enumerate(order):
            atom = relational[i]
            matches = model.literal_bound(atom, frozenset(bound_vars))
            new_vars = {
                v for v in atom.args if isinstance(v, Variable)
            } - bound_vars
            if new_vars:
                later = set(needed)
                for j in order[pos + 1:]:
                    later.update(
                        v for v in relational[j].args
                        if isinstance(v, Variable)
                    )
                if not (new_vars & later):
                    matches = min(matches, 1.0)
            card = min(card * matches, CARD_CAP)
            worst = max(worst, card)
            bound_vars |= new_vars
        return card, worst

    def transfer(self, view: "RuleView",
                 env: Mapping[str, Any]) -> DegreeSketch:
        rule = view.rule
        arity = len(rule.head.args)
        relational, model, needed, measured = self._pricing(view, env)
        if not relational:
            # a fact rule, or a body retired entirely by the Lemma 3.1
            # cut: at most one row per evaluation
            return DegreeSketch(
                bucket_size(1), tuple(bucket_size(1) for _ in range(arity)),
                measured=measured,
            )
        final, _ = self._propagate(relational, model, needed)
        size = bucket_size(int(min(final, CARD_CAP)))
        degree = []
        for arg in rule.head.args:
            if isinstance(arg, Variable) and any(
                arg in a.args for a in relational
            ):
                fixed, _ = self._propagate(
                    relational, model, needed, frozenset({arg})
                )
                degree.append(
                    min(size, bucket_size(int(min(fixed, CARD_CAP))))
                )
            else:
                # a constant column (every row shares it) or an unsafe
                # head variable: the degree is the full size
                degree.append(size)
        return DegreeSketch(
            size, tuple(degree),
            measured=measured and final < CARD_CAP,
        )

    def settle(self, predicate: str, value: DegreeSketch, arity: int,
               recursive: bool, adom: Optional[int]) -> DegreeSketch:
        """Recursive members accumulate rows across rounds, so the
        per-round transfer bound does not bound their fixpoint.  What
        *does* bound it is the active domain: a derived fact's
        constants all come from the EDB and the program, so at most
        ``adom ** arity`` distinct rows exist (``adom ** (arity - 1)``
        per fixed value at one position).  With a loaded EDB the
        sketch is clamped there — still a measured quantity; without
        one the value keeps its (synthetic-seeded, unmeasured)
        per-round estimate."""
        if not recursive:
            return value
        if adom is None:
            return DegreeSketch(value.size, value.degree, measured=False)
        size = bucket_size(int(min(float(adom) ** arity, CARD_CAP)))
        per_key = bucket_size(
            int(min(float(adom) ** max(arity - 1, 0), CARD_CAP))
        )
        return DegreeSketch(
            max(value.size, size),
            tuple(min(max(value.size, size), max(d, per_key))
                  for d in value.degree),
            measured=value.measured,
        )

    # -- findings -----------------------------------------------------------

    def diagnostics(self, ctx: "AnalysisContext") -> list[Diagnostic]:
        out: list[Diagnostic] = []
        env = ctx.env[self.name]
        # DL021: measured bound blowup per rule
        for view in ctx.views:
            relational, model, needed, measured = self._pricing(view, env)
            if not measured or not relational:
                continue
            _, worst = self._propagate(relational, model, needed)
            largest = max(
                (env[a.predicate].size for a in relational
                 if a.predicate in env),
                default=0,
            )
            threshold = MEASURED_BLOWUP_FACTOR * max(1, largest)
            if worst > threshold:
                out.append(Diagnostic(
                    "DL021", Severity.WARNING,
                    f"measured intermediate bound {int(worst)} exceeds "
                    f"{MEASURED_BLOWUP_FACTOR}x the largest input "
                    f"relation ({largest} rows) even under the best "
                    f"join order",
                    predicate=ctx.base_of(view.base),
                    rule_index=view.index,
                    span=view.span,
                    hint="the rule multiplies its inputs on this EDB; "
                         "add a join condition or shrink the inputs",
                ))
        # DL022: hub-key skew in measured EDB relations
        for pred in sorted(ctx.edb_predicates()):
            sketch = env.get(pred)
            if sketch is None or not sketch.measured:
                continue
            if sketch.raw_size < SKEW_MIN_SIZE:
                continue
            for p, d in enumerate(sketch.raw_degree):
                if d > 1 and 2 * d >= sketch.raw_size:
                    out.append(Diagnostic(
                        "DL022", Severity.INFO,
                        f"position {p} of {pred} is dominated by a hub "
                        f"key: one value matches {d} of "
                        f"{sketch.raw_size} rows",
                        predicate=pred,
                    ))
        return out


# ---------------------------------------------------------------------------
# boundedness / derivability
# ---------------------------------------------------------------------------


class BoundednessDomain(AbstractDomain):
    """Two-point derivability lattice; DL023 / DL024."""

    name = "boundedness"

    def seed(self, predicate: str, arity: int,
             relation: Optional["Relation"]) -> bool:
        # an unknown EDB is assumed nonempty; a *loaded* empty relation
        # is known-empty
        return relation is None or len(relation) > 0

    def bottom(self, predicate: str, arity: int) -> bool:
        return False

    def top(self, predicate: str, arity: int) -> bool:
        return True

    def join(self, a: bool, b: bool) -> bool:
        return a or b

    def transfer(self, view: "RuleView", env: Mapping[str, Any]) -> bool:
        # negation over an empty relation is true, so negative literals
        # never block derivability; builtins are assumed satisfiable
        return all(
            env.get(a.predicate, True)
            for a in view.rule.body
            if not is_builtin(a.predicate)
        )

    def diagnostics(self, ctx: "AnalysisContext") -> list[Diagnostic]:
        out: list[Diagnostic] = []
        env = ctx.env[self.name]
        for scc in ctx.recursive_components():
            members = sorted(scc)
            views = [v for v in ctx.views
                     if v.rule.head.predicate in scc]
            if not views:
                continue
            bases = sorted({ctx.base_of(m) for m in members})
            label = ", ".join(bases)
            if not any(env.get(m, False) for m in members):
                anchor = views[0]
                out.append(Diagnostic(
                    "DL024", Severity.WARNING,
                    f"recursive component {{{label}}} has no derivable "
                    f"non-recursive rule; its least fixpoint is empty "
                    f"on every EDB",
                    predicate=ctx.base_of(anchor.base),
                    rule_index=anchor.index,
                    span=anchor.span,
                    hint="add a base-case rule (or facts for the "
                         "predicates it depends on)",
                ))
                continue
            bounded = True
            anchor = None
            for view in views:
                recursive = [
                    a for a in view.rule.body
                    if a.predicate in scc
                ]
                if not recursive:
                    continue
                anchor = anchor or view
                head_vars = set(view.rule.head.variables())
                frontier = {
                    v
                    for a in recursive
                    for v in a.args
                    if isinstance(v, Variable) and v not in head_vars
                }
                if frontier:
                    bounded = False
                    break
            if bounded and anchor is not None:
                out.append(Diagnostic(
                    "DL023", Severity.INFO,
                    f"recursive component {{{label}}} consumes only "
                    f"bindings its heads already expose; the fixpoint "
                    f"is bounded and a nonrecursive unrolling exists",
                    predicate=ctx.base_of(anchor.base),
                    rule_index=anchor.index,
                    span=anchor.span,
                ))
        return out
