"""Layer 1 — program lints: what does the optimizer see?

Each lint inspects the parsed (and, where meaningful, the adorned)
program and reports a :class:`~repro.analysis.diagnostics.Diagnostic`
instead of crashing or silently missing a rewrite:

- *errors* are the pipeline's preconditions (safety, arity coherence,
  stratification, a defined query predicate) surfaced with spans and
  hints rather than bare exceptions;
- *warnings* are almost-certainly-unintended constructs (undefined body
  predicates that evaluate as empty relations, unreachable rules,
  duplicate rules, repeated literals, Cartesian-product bodies,
  negation of an empty predicate);
- *infos* describe the paper's optimizations as they will apply:
  existential (``d``) positions the adornment algorithm finds
  (Lemma 2.2) and the arity savings of projection pushing (Lemma 3.2),
  boolean subqueries the component split will extract (Lemma 3.1), and
  the Theorem 3.3 monadic rewrite when the program is a chain program
  with a regular grammar.

The entry point is :func:`lint_program`; pass the known EDB predicate
names (e.g. ``db.predicates()``) to enable the checks that need to
distinguish "stored relation" from "never defined anywhere".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping, Optional

from ..datalog.analysis import is_chain_program, reachable_predicates
from ..datalog.ast import Atom, Program, Rule
from ..datalog.builtins import is_builtin
from ..datalog.errors import ReproError, ValidationError
from ..datalog.terms import Variable
from .diagnostics import CODES, Diagnostic, LintReport, Severity

if TYPE_CHECKING:
    from ..engine.cost import RelationProfile

__all__ = ["lint_program"]


def _diag(code: str, message: str, **kw) -> Diagnostic:
    return Diagnostic(code, CODES[code].severity, message, **kw)


def _canonical_rule(rule: Rule) -> tuple:
    """A rename-invariant form: variables numbered in traversal order."""
    mapping: dict[Variable, int] = {}

    def canon(atom: Atom) -> tuple:
        args = []
        for t in atom.args:
            if isinstance(t, Variable):
                args.append(("v", mapping.setdefault(t, len(mapping))))
            else:
                args.append(("c", t.value))  # type: ignore[union-attr]
        return (atom.predicate, tuple(args))

    return (
        canon(rule.head),
        tuple(canon(a) for a in rule.body),
        tuple(canon(a) for a in rule.negative),
    )


def _check_arities(program: Program, diags: list) -> bool:
    """DL002 — every predicate used at one arity; returns coherence."""
    first: dict[str, tuple[int, Optional[Atom]]] = {}
    coherent = True

    def record(a: Atom) -> None:
        nonlocal coherent
        prev = first.setdefault(a.predicate, (a.arity, a))
        if prev[0] != a.arity:
            coherent = False
            diags.append(
                _diag(
                    "DL002",
                    f"predicate '{a.predicate}' is used with arities "
                    f"{prev[0]} and {a.arity}",
                    predicate=a.predicate,
                    span=a.span,
                    hint="every occurrence of a predicate must have the same "
                    "number of arguments",
                )
            )

    for r in program.rules:
        for a in (r.head, *r.body, *r.negative):
            record(a)
    if program.query is not None:
        record(program.query)
    return coherent


def _check_safety(program: Program, diags: list) -> bool:
    """DL001 — range restriction, per rule; returns overall safety."""
    safe = True
    for i, r in enumerate(program.rules):
        if r.is_safe():
            continue
        safe = False
        exposed = set(r.head.variables()) | {
            v for a in r.negative for v in a.variables()
        }
        names = ", ".join(sorted(v.name for v in exposed - r.body_variables()))
        diags.append(
            _diag(
                "DL001",
                f"variables {names} of rule {r} are not bound by the "
                f"positive body",
                predicate=r.head.predicate,
                rule_index=i,
                span=r.span,
                hint="every head variable and every variable of a negated "
                "literal must occur in a positive body literal",
            )
        )
    return safe


def _check_stratification(program: Program, diags: list) -> None:
    """DL003 — no recursion through negation."""
    if not program.has_negation():
        return
    from ..datalog.analysis import stratify

    try:
        stratify(program)
    except ValidationError as exc:
        diags.append(
            _diag(
                "DL003",
                str(exc),
                hint="break the cycle so every negative dependency points "
                "strictly downward (stratified semantics, section 6)",
            )
        )


def _check_duplicates(program: Program, diags: list) -> None:
    """DL008 — rules identical up to variable renaming."""
    seen: dict[tuple, int] = {}
    for i, r in enumerate(program.rules):
        key = _canonical_rule(r)
        if key in seen:
            diags.append(
                _diag(
                    "DL008",
                    f"rule {r} duplicates rule #{seen[key]} "
                    f"({program.rules[seen[key]]})",
                    predicate=r.head.predicate,
                    rule_index=i,
                    span=r.span,
                    hint="delete one copy; duplicate rules derive the same "
                    "facts twice",
                )
            )
        else:
            seen[key] = i


def _check_redundant_literals(program: Program, diags: list) -> None:
    """DL009 — a body literal repeated verbatim in one body."""
    for i, r in enumerate(program.rules):
        seen: set[Atom] = set()
        for a in r.body:
            if a in seen:
                diags.append(
                    _diag(
                        "DL009",
                        f"literal {a} occurs twice in the body of rule {r}",
                        predicate=r.head.predicate,
                        rule_index=i,
                        span=a.span or r.span,
                        hint="drop the duplicate; conjunctive-query "
                        "minimization would remove it anyway",
                    )
                )
                break
            seen.add(a)


def _positive_components(rule: Rule) -> list[list[int]]:
    """Indexes of positive body literals grouped by shared variables
    (transitively, with negated literals contributing connectivity)."""
    parent: dict = {}

    def find(x):
        parent.setdefault(x, x)
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(x, y):
        rx, ry = find(x), find(y)
        if rx != ry:
            parent[rx] = ry

    for a in (*rule.body, *rule.negative):
        vs = a.variables()
        for v in vs[1:]:
            union(vs[0], v)
    groups: dict = {}
    singles: list[list[int]] = []
    for i, a in enumerate(rule.body):
        vs = a.variables()
        if not vs:
            singles.append([i])
        else:
            groups.setdefault(find(vs[0]), []).append(i)
    return list(groups.values()) + singles


def _check_cross_products(program: Program, diags: list) -> None:
    """DL012 — ≥2 variable-disjoint body components each binding head
    variables the query actually *needs*: the engine joins them as a
    Cartesian product and Lemma 3.1 cannot cut any of them.

    The check is adornment-aware: a component anchored only to
    existential head positions is the Lemma 3.1 boolean-subquery case
    (reported as DL011 info), not a product the optimizer is stuck
    with.  When the program cannot be adorned (no query, earlier
    errors) the plain head-variable anchoring is used instead."""
    try:
        from ..core.adornment import adorn

        anchored_rules = [
            (
                r.head.atom.predicate.partition("@")[0],
                r.to_rule(),
                {
                    r.head.atom.args[i]
                    for i in r.head.adornment.needed_positions
                    if isinstance(r.head.atom.args[i], Variable)
                },
                r.head.atom.span,
            )
            for r in adorn(program).rules
        ]
    except ReproError:
        anchored_rules = [
            (r.head.predicate, r, set(r.head.variables()), r.span)
            for r in program.rules
        ]
    seen: set[tuple] = set()
    for predicate, r, anchor_vars, span in anchored_rules:
        if len(r.body) < 2:
            continue
        anchored = 0
        for comp in _positive_components(r):
            comp_vars = {v for j in comp for v in r.body[j].variables()}
            if comp_vars & anchor_vars:
                anchored += 1
        key = (predicate, span, anchored)
        if anchored >= 2 and key not in seen:
            seen.add(key)
            diags.append(
                _diag(
                    "DL012",
                    f"the body of rule {r} is a Cartesian product of "
                    f"{anchored} variable-disjoint components, each bound "
                    f"to needed head positions",
                    predicate=predicate,
                    span=span,
                    hint="if the product is unintended, connect the "
                    "components with a shared variable; the join cost is "
                    "the product of their sizes",
                )
            )


def _check_query(
    program: Program, edb: Optional[frozenset[str]], diags: list
) -> None:
    """DL004 / DL005 / DL007 — query presence, definedness, reachability."""
    if program.query is None:
        if program.rules:
            diags.append(
                _diag(
                    "DL004",
                    "the program has no ?- query",
                    hint="the optimization pipeline adorns from the query "
                    "(section 2); add one, e.g. '?- q(X).'",
                )
            )
        return
    qp = program.query.predicate
    idb = program.idb_predicates()
    if qp not in idb and not (edb is not None and qp in edb):
        diags.append(
            _diag(
                "DL005",
                f"query predicate '{qp}' has no defining rules"
                + ("" if edb is None else " and no facts"),
                predicate=qp,
                span=program.query.span,
                hint="define the predicate with at least one rule, or query "
                "a stored relation that has facts",
            )
        )
    reachable = reachable_predicates(program, [qp])
    for i, r in enumerate(program.rules):
        if r.head.predicate not in reachable:
            diags.append(
                _diag(
                    "DL007",
                    f"rule {r} defines '{r.head.predicate}', which the query "
                    f"'?- {program.query}' never reaches",
                    predicate=r.head.predicate,
                    rule_index=i,
                    span=r.span,
                    hint="dead code: the cascade cleanup (section 5, "
                    "Examples 7/8) would delete this rule",
                )
            )


def _check_undefined_predicates(
    program: Program, edb: Optional[frozenset[str]], diags: list
) -> None:
    """DL006 / DL014 — body / negated predicates defined nowhere."""
    if edb is None:
        return  # without EDB knowledge every undefined name may be stored
    idb = program.idb_predicates()
    seen_positive: set[str] = set()
    seen_negative: set[str] = set()
    for i, r in enumerate(program.rules):
        for a in r.body:
            p = a.predicate
            if p in idb or p in edb or is_builtin(p) or p in seen_positive:
                continue
            seen_positive.add(p)
            diags.append(
                _diag(
                    "DL006",
                    f"body predicate '{p}' has no defining rules and no "
                    f"facts; it evaluates as an empty relation, so rule "
                    f"{r} can never fire",
                    predicate=p,
                    rule_index=i,
                    span=a.span,
                    hint="add facts or rules for the predicate, or remove "
                    "the dead literal",
                )
            )
        for a in r.negative:
            p = a.predicate
            if p in idb or p in edb or p in seen_negative:
                continue
            seen_negative.add(p)
            diags.append(
                _diag(
                    "DL014",
                    f"negated predicate '{p}' has no defining rules and no "
                    f"facts; 'not {a}' is always true",
                    predicate=p,
                    rule_index=i,
                    span=a.span,
                    hint="the literal is a no-op; drop it or define the "
                    "predicate",
                )
            )


def _check_facts(program: Program, diags: list) -> None:
    """DL015 — ground facts mixed into the rule set."""
    for i, r in enumerate(program.rules):
        if r.is_fact():
            diags.append(
                _diag(
                    "DL015",
                    f"ground fact {r} appears among the rules",
                    predicate=r.head.predicate,
                    rule_index=i,
                    span=r.span,
                    hint="the paper's convention (section 1.1) stores all "
                    "facts in the EDB; move it to the facts file",
                )
            )


#: distinct in-program constants above which the columnar dictionary's
#: interning work cannot amortize over a boolean query's one-bit answer
DICTIONARY_OVERHEAD_THRESHOLD = 16


def _check_dictionary_overhead(program: Program, diags: list) -> None:
    """DL016 — boolean query over a large in-program constant universe.

    A zero-arity query produces at most one fact, so every constant the
    columnar plane interns is pure overhead unless the EDB re-uses it
    heavily; with many distinct constants written into the rules
    themselves, the dictionary is guaranteed to be large before the
    first batch probe runs.
    """
    query = program.query
    if query is None or query.arity != 0:
        return
    consts = {
        c.value
        for rule in program.rules
        for atom in (rule.head, *rule.body, *rule.negative)
        for c in atom.constants()
    }
    if len(consts) <= DICTIONARY_OVERHEAD_THRESHOLD:
        return
    diags.append(
        _diag(
            "DL016",
            f"boolean query {query} over {len(consts)} distinct "
            f"in-program constants (threshold "
            f"{DICTIONARY_OVERHEAD_THRESHOLD}): dictionary encoding "
            f"cannot amortize over a one-bit answer",
            predicate=query.predicate,
            span=query.span,
            hint="run with --no-columnar, or move the constants into "
            "EDB facts so only live values are interned",
        )
    )


def _check_adornment_opportunities(program: Program, diags: list) -> None:
    """DL010 / DL011 — what the adornment algorithm and the component
    split will find (Lemma 2.2 / Lemma 3.1)."""
    from ..core.adornment import adorn, split_adorned
    from ..core.components import rule_components

    try:
        adorned = adorn(program)
    except ReproError:
        return  # earlier diagnostics already explain why adornment fails

    reported: set[str] = set()
    for rule in adorned.rules:
        name = rule.head.atom.predicate
        base, ad = split_adorned(name)
        if ad is None or name in reported:
            continue
        reported.add(name)
        saved = len(ad.existential_positions)
        if saved:
            diags.append(
                _diag(
                    "DL010",
                    f"adorned version {name} has {saved} existential "
                    f"position(s); projection pushing reduces the arity of "
                    f"'{base}' from {len(ad)} to {len(ad) - saved} here",
                    predicate=base,
                    span=rule.head.atom.span,
                    hint="positions adorned d are dropped by Lemma 3.2; "
                    "this is the paper's headline work reduction",
                )
            )

    for rule in adorned.rules:
        head = rule.head
        if head.atom.arity == 0:
            continue
        anchor_vars = {
            head.atom.args[i]
            for i in head.adornment.needed_positions
            if isinstance(head.atom.args[i], Variable)
        }
        for comp in rule_components(rule):
            comp_lits = [rule.body[i] for i in comp]
            comp_vars = {v for lit in comp_lits for v in lit.atom.variables()}
            if comp_vars & anchor_vars:
                continue
            if len(comp_lits) == 1 and comp_lits[0].atom.arity == 0:
                continue
            lits = ", ".join(str(lit.atom) for lit in comp_lits)
            diags.append(
                _diag(
                    "DL011",
                    f"in rule {rule}, the body component {{{lits}}} shares "
                    f"no variable with a needed head position; it is an "
                    f"existential subquery",
                    predicate=split_adorned(head.atom.predicate)[0],
                    span=comp_lits[0].atom.span or head.atom.span,
                    hint="the optimizer extracts it as a boolean predicate "
                    "evaluated once and retired (Lemma 3.1 cut)",
                )
            )


#: multiple of the synthetic per-relation size past which a rule's best
#: achievable intermediate bound counts as a blowup — crossed only by
#: needed cross products and very long weakly-joined chains, never by
#: the paper's chain/TC/same-generation shapes
BOUND_BLOWUP_FACTOR = 100


def _check_bound_blowup(
    program: Program,
    diags: list,
    profiles: Optional[Mapping[str, "RelationProfile"]] = None,
) -> None:
    """DL017 — a rule whose *best* join order still blows up.

    :func:`repro.engine.cost.rule_intermediate_bound` prices every body
    under a synthetic EDB profile (``DEFAULT_SIZE`` rows, mild per-
    position fanout) and reports the largest intermediate cardinality
    along the cheapest order its DP finds.  When even that optimum
    exceeds ``BOUND_BLOWUP_FACTOR ×  DEFAULT_SIZE``, no planner can
    save the rule: the body itself forces a huge intermediate result
    (a cross product every component of which feeds the head, or a
    chain so long the fanout compounds past the threshold).  Purely
    existential body components are exempt by construction: the bound
    prices them at one row, because the Lemma 3.1 cut retires them as
    boolean subqueries (reported separately as DL011) before the join
    ever enumerates them.  When the program adorns (it has a query the
    pipeline accepts), the **adorned** rules are priced — a head
    position the adornment marks ``d`` no longer anchors its body
    component, exactly as projection pushing will evaluate it; without
    a usable adornment the raw rules are priced instead.

    *profiles* (predicate → :class:`RelationProfile`) replaces the
    synthetic defaults with **measured** statistics for the predicates
    it covers (``repro lint`` passes the loaded EDB's profile); the
    threshold then scales with the largest measured relation instead
    of ``DEFAULT_SIZE``.
    """
    from ..core.adornment import adorn, split_adorned
    from ..engine.cost import DEFAULT_SIZE, rule_intermediate_bound

    if profiles:
        base_size = max(
            max((p.size for p in profiles.values()), default=0), 1
        )
        basis = "largest measured relation"
    else:
        base_size = DEFAULT_SIZE
        basis = "synthetic relation size"
    threshold = BOUND_BLOWUP_FACTOR * base_size
    # (plain rule to price, needed override, anchor predicate, span)
    try:
        adorned = adorn(program)
    except ReproError:
        adorned = None
    if adorned is not None:
        priced = [
            (
                rule.to_rule(),
                frozenset(
                    rule.head.atom.args[i]
                    for i in rule.head.adornment.needed_positions
                    if isinstance(rule.head.atom.args[i], Variable)
                ),
                split_adorned(rule.head.atom.predicate)[0],
                rule.head.atom.span,
            )
            for rule in adorned.rules
        ]
    else:
        priced = [
            (rule, None, rule.head.predicate, rule.head.span)
            for rule in program.rules
        ]

    seen: set[tuple] = set()
    for rule, anchor, predicate, span in priced:
        if len(rule.body) < 2:
            continue
        bound = rule_intermediate_bound(rule, needed=anchor, profiles=profiles)
        if bound <= threshold:
            continue
        if (predicate, span) in seen:
            continue  # one report per source rule, not per adornment
        seen.add((predicate, span))
        diags.append(
            _diag(
                "DL017",
                f"best-order intermediate bound {bound:.0f} exceeds "
                f"{threshold} (= {BOUND_BLOWUP_FACTOR}x the {basis}): "
                f"every join order materializes a blown-up "
                f"intermediate result",
                predicate=predicate,
                span=span,
                hint="split the body into rules sharing more variables, "
                "or drop head variables so the existential cut applies",
            )
        )


def _check_chain_regularity(program: Program, diags: list) -> None:
    """DL013 — Theorem 3.3: chain program with a regular grammar."""
    if program.query is None or not program.rules:
        return
    if not is_chain_program(program):
        return
    from ..grammar import (
        is_right_linear,
        is_self_embedding,
        monadic_program_for,
        program_to_grammar,
    )

    try:
        grammar = program_to_grammar(program)
    except ReproError:
        return
    monadic = None
    try:
        monadic = monadic_program_for(program)
    except ReproError:
        monadic = None
    if monadic is not None:
        diags.append(
            _diag(
                "DL013",
                "chain program with a right-linear (regular) grammar: the "
                "query is answerable by an equivalent monadic recursion",
                predicate=program.query.predicate,
                span=program.query.span,
                hint="run 'repro grammar' to print the Theorem 3.3 monadic "
                "program",
            )
        )
    elif is_right_linear(grammar) or not is_self_embedding(grammar):
        diags.append(
            _diag(
                "DL013",
                "chain program whose grammar is not self-embedding, hence "
                "regular: an equivalent monadic program exists",
                predicate=program.query.predicate,
                span=program.query.span,
                hint="Theorem 3.3; see 'repro grammar' for the CFG view",
            )
        )


def lint_program(
    program: Program,
    edb: Optional[Iterable[str]] = None,
    source: str = "<program>",
    profiles: Optional[Mapping[str, "RelationProfile"]] = None,
) -> LintReport:
    """Run every lint over *program* and return the report.

    *edb*, when given, names the predicates with stored facts (e.g.
    ``db.predicates()``); it enables the undefined-predicate checks
    (DL005 sharpening, DL006, DL014), which are unanswerable from the
    program text alone because never-defined predicates are by
    convention assumed to be EDB relations.

    *profiles* (predicate → :class:`~repro.engine.cost.RelationProfile`,
    e.g. from :func:`repro.engine.cost.profile_database` over the
    loaded EDB) makes DL017 price rules with **measured** degree
    sketches instead of the synthetic defaults.
    """
    edb_set = frozenset(edb) if edb is not None else None
    diags: list[Diagnostic] = []

    _check_arities(program, diags)
    _check_safety(program, diags)
    _check_stratification(program, diags)
    _check_duplicates(program, diags)
    _check_redundant_literals(program, diags)
    _check_cross_products(program, diags)
    _check_query(program, edb_set, diags)
    _check_undefined_predicates(program, edb_set, diags)
    _check_facts(program, diags)
    _check_dictionary_overhead(program, diags)
    if not any(d.severity is Severity.ERROR for d in diags):
        # optimization-opportunity lints need a program the pipeline
        # accepts; with errors present the story is already told above
        _check_adornment_opportunities(program, diags)
        _check_chain_regularity(program, diags)
        _check_bound_blowup(program, diags, profiles)
    return LintReport(tuple(diags), source=source)
