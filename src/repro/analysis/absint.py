"""The monotone analysis framework: fixpoints of abstract domains.

A classic abstract-interpretation driver specialized to Datalog: the
concrete semantics is the least fixpoint of the immediate-consequence
operator, so every abstract domain (:class:`~.domains.AbstractDomain`)
gets its own least fixpoint computed the same way the engine computes
the real one — over the **SCC condensation** of the (adorned) program,
components in dependency order, Kleene-iterating only within recursive
components (:func:`repro.datalog.analysis.analyze` supplies the
condensation exactly as it does for the scheduler).

The program is analyzed in **adorned** form when the query adorns
(:func:`repro.core.adornment.adorn`): each derived predicate splits
into its ``base@adornment`` variants, so a domain sees which head
positions are existential (``d``) and its transfer functions can apply
the Lemma 3.1 / Lemma 2.2 cuts the optimizer will apply — the
cardinality domain prices existential components as the boolean cut,
not as a join.  When the program cannot be adorned (no query, or a
precondition fails) the raw program is analyzed with every head
position treated as needed; the analysis is then merely less precise,
never wrong.

:func:`analyze_program` is the front door (CLI ``repro analyze``,
shell ``.analyze``); it returns an :class:`AnalysisResult` — the
DL018–DL024 findings as a standard :class:`~.diagnostics.LintReport`
plus the final abstract values, which the planner consumes through
:meth:`AnalysisResult.cost_profiles` (measured degree sketches feeding
:class:`repro.engine.cost.BoundCostModel`, see
``evaluate(..., analysis=...)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from ..core.adornment import adorn, split_adorned
from ..datalog.analysis import DependencyInfo, is_recursive_component
from ..datalog.analysis import analyze as dependency_analyze
from ..datalog.ast import Program, Rule, Span
from ..datalog.builtins import is_builtin
from ..datalog.database import Database
from ..datalog.errors import ReproError
from ..datalog.terms import Variable
from ..engine.cost import BoundCostModel, RelationProfile
from .diagnostics import Diagnostic, LintReport
from .domains import (
    AbstractDomain,
    BoundednessDomain,
    CardinalityDomain,
    DegreeSketch,
    SortDomain,
    render_sort,
)

__all__ = [
    "RuleView",
    "AnalysisContext",
    "AnalysisResult",
    "analyze_program",
    "default_domains",
    "ITERATION_CAP",
]

#: Kleene iterations per component before the driver gives up and
#: widens the component's values to the domain's top (sound, never
#: reached by the shipped domains on finite-height paths)
ITERATION_CAP = 100


@dataclass(frozen=True)
class RuleView:
    """One analyzed rule plus the context domains need to price it."""

    #: the rule over analyzed (possibly adorned/mangled) names
    rule: Rule
    #: index in the analyzed program
    index: int
    #: analyzed head predicate name (``base@ad`` when adorned)
    base: str
    #: head variables at needed (``n``) positions — all head variables
    #: when the program is analyzed unadorned
    needed_vars: frozenset
    span: Optional[Span]


def _build_views(program: Program) -> tuple[tuple[RuleView, ...], Program, bool]:
    """The analyzed rule views: adorned when possible, raw otherwise.

    Returns ``(views, analyzed_program, adorned?)``.
    """
    try:
        adorned = adorn(program)
    except ReproError:
        views = tuple(
            RuleView(
                rule=r,
                index=i,
                base=r.head.predicate,
                needed_vars=frozenset(
                    v for v in r.head.args if isinstance(v, Variable)
                ),
                span=r.span if r.span is not None else r.head.span,
            )
            for i, r in enumerate(program.rules)
        )
        return views, program, False
    views = []
    for i, ar in enumerate(adorned.rules):
        rule = ar.to_rule()
        ad = ar.head.adornment
        needed = frozenset(
            arg
            for p, arg in enumerate(rule.head.args)
            if isinstance(arg, Variable)
            and (p >= len(ad) or ad[p] == "n")
        )
        views.append(RuleView(
            rule=rule,
            index=i,
            base=rule.head.predicate,
            needed_vars=needed,
            span=rule.head.span,
        ))
    return tuple(views), adorned.to_program(), True


def default_domains(
    sketches: Optional[Mapping[str, DegreeSketch]] = None,
) -> tuple[AbstractDomain, ...]:
    """The three shipped domains (*sketches* pre-seeds cardinality)."""
    return (
        SortDomain(),
        CardinalityDomain(preloaded=sketches),
        BoundednessDomain(),
    )


@dataclass
class AnalysisContext:
    """What a domain's diagnostics pass can see: the final environment
    of every domain plus the dependency structure."""

    views: tuple[RuleView, ...]
    env: dict[str, dict[str, Any]]
    info: DependencyInfo
    analyzed: Program
    arities: dict[str, int]
    #: True when a loaded EDB backed the seeds (measured analysis)
    measured: bool
    domains: tuple[AbstractDomain, ...]
    _idb_bases: frozenset = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        self._idb_bases = frozenset(
            self.base_of(p) for p in self.info.idb
        )

    @staticmethod
    def base_of(name: str) -> str:
        return split_adorned(name)[0]

    def is_idb(self, name: str) -> bool:
        return name in self.info.idb

    def is_idb_base(self, base: str) -> bool:
        return base in self._idb_bases

    def edb_predicates(self) -> frozenset[str]:
        return frozenset(
            p for p in self.analyzed.predicates()
            if p not in self.info.idb and not is_builtin(p)
        )

    def recursive_components(self) -> list[frozenset[str]]:
        return [
            scc for scc in self.info.sccs
            if is_recursive_component(scc, self.info.graph)
        ]

    def fact_only(self, base: str) -> bool:
        """True when every defining rule of *base* is a ground fact."""
        views = [v for v in self.views if self.base_of(v.base) == base]
        return bool(views) and all(v.rule.is_fact() for v in views)

    def first_view(self, base: str) -> Optional[RuleView]:
        for view in self.views:
            if self.base_of(view.base) == base:
                return view
        return None

    def merged(self, domain_name: str) -> dict[str, Any]:
        """The domain's environment folded back onto base predicate
        names (adorned variants joined)."""
        domain = next(d for d in self.domains if d.name == domain_name)
        out: dict[str, Any] = {}
        for name, value in self.env[domain_name].items():
            base = self.base_of(name)
            out[base] = (
                value if base not in out else domain.join(out[base], value)
            )
        return out


def _active_domain_size(db: Database, program: Program) -> int:
    """The active domain: distinct constants stored in *db* plus the
    program's own constants — every derived fact draws from it, so
    ``adom ** arity`` bounds any IDB relation.  Falls back to the
    total-cell upper bound instead of an exact count on huge EDBs."""
    values: set = set()
    for r in program.rules:
        for atom in (r.head, *r.body, *r.negative):
            values.update(c.value for c in atom.constants())
    budget = 500_000
    for pred in sorted(db.predicates()):
        rel = db.relation(pred)
        if rel is None:
            continue
        budget -= len(rel)
        if budget < 0:
            return len(values) + sum(
                len(db.relation(p)) * max(db.relation(p).arity, 1)
                for p in db.predicates()
                if db.relation(p) is not None
            )
        for row in rel:
            values.update(row)
    return len(values)


def _run_fixpoint(
    views: Sequence[RuleView],
    analyzed: Program,
    info: DependencyInfo,
    arities: Mapping[str, int],
    domains: Sequence[AbstractDomain],
    db: Optional[Database],
) -> dict[str, dict[str, Any]]:
    """Seed, then iterate each condensation component to stability."""
    env: dict[str, dict[str, Any]] = {d.name: {} for d in domains}
    for pred in sorted(analyzed.predicates()):
        if is_builtin(pred):
            continue
        arity = arities.get(pred, 0)
        for d in domains:
            if pred in info.idb:
                env[d.name][pred] = d.bottom(pred, arity)
            else:
                rel = db.relation(pred) if db is not None else None
                env[d.name][pred] = d.seed(pred, arity, rel)
    by_head: dict[str, list[RuleView]] = {}
    for view in views:
        by_head.setdefault(view.rule.head.predicate, []).append(view)
    adom = _active_domain_size(db, analyzed) if db is not None else None
    # info.sccs is in reverse topological order: dependencies first
    for scc in info.sccs:
        group = [v for p in sorted(scc) for v in by_head.get(p, ())]
        if not group:
            continue
        for _ in range(ITERATION_CAP):
            changed = False
            for d in domains:
                e = env[d.name]
                for view in group:
                    head = view.rule.head.predicate
                    new = d.join(e[head], d.transfer(view, e))
                    if new != e[head]:
                        e[head] = new
                        changed = True
            if not changed:
                break
        else:  # pragma: no cover - widening backstop
            for d in domains:
                for p in scc:
                    if p in env[d.name] and p in info.idb:
                        env[d.name][p] = d.top(p, arities.get(p, 0))
        recursive = is_recursive_component(scc, info.graph)
        for d in domains:
            e = env[d.name]
            for p in sorted(scc):
                if p in e and p in info.idb:
                    e[p] = d.settle(
                        p, e[p], arities.get(p, 0), recursive, adom
                    )
    return env


def _dedup(diagnostics: Sequence[Diagnostic]) -> tuple[Diagnostic, ...]:
    """Drop the duplicates adorned variants of one source rule produce.

    DL018/DL019 keep distinct messages (one rule can have several
    empty positions); the other codes collapse to one finding per
    (code, predicate, source span)."""
    seen = set()
    out = []
    for d in diagnostics:
        span = (d.span.line, d.span.column) if d.span is not None else None
        key = (
            d.code, d.predicate, span,
            d.message if d.code in ("DL018", "DL019") else "",
        )
        if key in seen:
            continue
        seen.add(key)
        out.append(d)
    return tuple(out)


@dataclass(frozen=True)
class AnalysisResult:
    """Everything one analysis run produced.

    ``report`` carries the DL018–DL024 findings through the standard
    :class:`LintReport` renderers; the accessor methods fold the final
    abstract environments back onto base predicate names so the
    planner and callers never see mangled adorned names.
    """

    program: Program
    report: LintReport
    context: AnalysisContext
    source: str = "<program>"

    @property
    def adorned(self) -> bool:
        return self.context.analyzed is not self.program

    @property
    def measured(self) -> bool:
        return self.context.measured

    def sorts(self) -> dict[str, tuple]:
        return self.context.merged(SortDomain.name)

    def sketches(self) -> dict[str, DegreeSketch]:
        return self.context.merged(CardinalityDomain.name)

    def derivable(self) -> dict[str, bool]:
        return self.context.merged(BoundednessDomain.name)

    def bounded_predicates(self) -> frozenset[str]:
        """Base predicates of components flagged DL023."""
        return frozenset(
            d.predicate
            for d in self.report
            if d.code == "DL023" and d.predicate is not None
        )

    def cost_profiles(self) -> dict[str, RelationProfile]:
        """The sketches as planner profiles, keyed by base predicate —
        what ``evaluate(..., analysis=...)`` overlays onto the
        database profile (measured EDB + propagated IDB estimates
        replacing the evaluator's worst-case IDB sizing)."""
        return {
            pred: sketch.to_profile()
            for pred, sketch in self.sketches().items()
        }

    def cost_model(self) -> BoundCostModel:
        return BoundCostModel(self.cost_profiles())

    def to_dict(self) -> dict:
        sketches = self.sketches()
        return {
            "source": self.source,
            "adorned": self.adorned,
            "measured": self.measured,
            "report": self.report.to_dict(),
            "domains": {
                "sorts": {
                    pred: [render_sort(s) for s in sorts]
                    for pred, sorts in sorted(self.sorts().items())
                },
                "cardinality": {
                    pred: sketch.to_dict()
                    for pred, sketch in sorted(sketches.items())
                },
                "boundedness": {
                    pred: {
                        "derivable": derivable,
                        "bounded": pred in self.bounded_predicates(),
                    }
                    for pred, derivable in sorted(self.derivable().items())
                },
            },
        }

    def render_text(self) -> str:
        sketches = self.sketches()
        measured = sum(1 for s in sketches.values() if s.measured)
        lines = [self.report.render_text()]
        lines.append(
            f"domains: {len(self.sorts())} predicate(s) sorted, "
            f"{len(sketches)} sketch(es) ({measured} measured), "
            f"{len(self.bounded_predicates())} bounded component(s)"
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        import json

        return json.dumps(self.to_dict(), indent=2)


def analyze_program(
    program: Program,
    db: Optional[Database] = None,
    *,
    sketches: Optional[Mapping[str, DegreeSketch]] = None,
    domains: Optional[Sequence[AbstractDomain]] = None,
    source: str = "<program>",
) -> AnalysisResult:
    """Run the abstract-interpretation framework over *program*.

    *db* (when given) seeds every domain from the stored EDB — sorts
    from the actual constants, cardinality sketches **measured** from
    the columnar degree profiles.  *sketches* pre-seeds the
    cardinality domain (e.g. loaded from a persisted profile file) and
    wins over both the database and the synthetic defaults.
    """
    views, analyzed, _ = _build_views(program)
    info = dependency_analyze(analyzed)
    arities = analyzed.arities()
    doms = tuple(domains) if domains is not None else default_domains(sketches)
    env = _run_fixpoint(views, analyzed, info, arities, doms, db)
    ctx = AnalysisContext(
        views=views,
        env=env,
        info=info,
        analyzed=analyzed,
        arities=arities,
        measured=db is not None,
        domains=doms,
    )
    findings: list[Diagnostic] = []
    for d in doms:
        findings.extend(d.diagnostics(ctx))
    report = LintReport(_dedup(findings), source=source)
    return AnalysisResult(
        program=program, report=report, context=ctx, source=source
    )
