"""Static analysis: paper-grounded diagnostics and pipeline invariants.

Two layers:

- **Program lints** (:mod:`repro.analysis.lints`): what does the
  optimizer see in this program?  Errors for violated pipeline
  preconditions (safety, arity, stratification, a defined query),
  warnings for almost-certain mistakes (undefined body predicates,
  unreachable rules, Cartesian products), and infos for the paper's
  optimizations as they will apply (existential positions / Lemma 2.2,
  boolean subqueries / Lemma 3.1, the Theorem 3.3 monadic rewrite).
- **Abstract interpretation** (:mod:`repro.analysis.absint` +
  :mod:`repro.analysis.domains`): a monotone-framework fixpoint
  analyzer over the adorned program's SCC condensation running three
  pluggable domains — typed sorts (DL018–DL020), measured cardinality
  sketches (DL021–DL022, also the planner's profile source via
  ``evaluate(..., analysis=...)``), and boundedness/derivability
  (DL023–DL024).  The CLI front end is ``repro analyze``.
- **Pass-contract sanitizer** (:mod:`repro.analysis.validate`): each
  pipeline pass publishes an invariant over its output (adornment
  consistency, partition-ness of the component split, arity coherence
  after projection, hidden-link canonicality of argument projections,
  plan slot-map coherence); ``optimize(..., validate=True)`` — the CLI
  ``--validate`` flag — asserts them after every pass and raises a
  structured :class:`InvariantViolation` naming the pass and the rule.

The CLI front end is ``repro lint``; the oracle suites arm the
sanitizer so every differential run also checks pipeline contracts.
"""

from .absint import AnalysisResult, analyze_program, default_domains
from .diagnostics import CODES, CodeInfo, Diagnostic, LintReport, Severity
from .domains import (
    BoundednessDomain,
    CardinalityDomain,
    DegreeSketch,
    SortDomain,
    load_profiles,
    save_profiles,
)
from .lints import lint_program
from .validate import (
    InvariantViolation,
    check_adorned_program,
    check_argument_projections,
    check_compiled_program,
    check_component_partition,
    check_pass,
    check_split_anchoring,
    validate_result,
)

__all__ = [
    "CODES",
    "CodeInfo",
    "Diagnostic",
    "LintReport",
    "Severity",
    "lint_program",
    "AnalysisResult",
    "analyze_program",
    "default_domains",
    "SortDomain",
    "CardinalityDomain",
    "BoundednessDomain",
    "DegreeSketch",
    "save_profiles",
    "load_profiles",
    "InvariantViolation",
    "check_adorned_program",
    "check_argument_projections",
    "check_compiled_program",
    "check_component_partition",
    "check_pass",
    "check_split_anchoring",
    "validate_result",
]
