"""Layer 2 — the pass-contract sanitizer.

Every pipeline pass publishes an invariant over its output; this module
asserts them.  ``optimize(..., validate=True)`` (the CLI ``--validate``
flag) runs the matching check after **every** pass and raises a
structured :class:`InvariantViolation` naming the pass and the violated
rule, so a buggy pass is caught at its own doorstep instead of
surfacing rounds later as a wrong answer.

The contracts:

``adornment-*`` (every pass that yields an :class:`AdornedProgram`)
    The mangled predicate name ``base@ad`` of every derived literal
    agrees with its stored adornment; adornment length matches atom
    arity (pre-projection) or needed-position count (post-projection,
    Lemma 3.2); every derived body predicate has defining rules; the
    program's arity schema is coherent; boolean predicates are arity 0.
``component-partition`` / ``single-component`` (section 3.1)
    :func:`~repro.core.components.rule_components` partitions the body
    literal indexes; after the split, every remaining body component of
    a non-boolean rule is anchored to a needed head variable
    (Lemma 3.1's "afterwards every rule has a single component").
``post-projection-safety`` (section 3.2)
    After Lemma 3.2 the program is plain safe Datalog again (the paper
    mode split deliberately passes through an unsafe intermediate).
``hidden-link-*`` (section 5)
    Argument projections are canonical: an edge ``(i, k)`` exactly when
    head position *i* and body position *k* hold the same variable, and
    hidden same-side links record exactly the same-side pairs merged by
    a variable invisible to the other side and not already implied by
    the edges.
``plan-*`` / ``slot-*`` (engine)
    Every compiled rule's join plans are permutations of the relational
    body; bound/free position sets agree with a recomputation of the
    binding order; head, built-in and negated variables are covered by
    the relational body (the kernel's slot map would otherwise emit a
    read of an unassigned register).
"""

from __future__ import annotations

from typing import NoReturn

from ..datalog.ast import Program
from ..datalog.errors import ReproError, ValidationError
from ..datalog.terms import Constant, Variable

__all__ = [
    "InvariantViolation",
    "check_adorned_program",
    "check_component_partition",
    "check_split_anchoring",
    "check_argument_projections",
    "check_compiled_program",
    "check_pass",
    "validate_result",
]


class InvariantViolation(ReproError):
    """A pipeline pass produced output violating its published contract.

    ``pass_name`` is the pass whose output failed (e.g.
    ``push_projections``); ``rule`` is the stable identifier of the
    violated invariant (e.g. ``adornment-arity``).
    """

    def __init__(self, pass_name: str, rule: str, message: str):
        self.pass_name = pass_name
        self.rule = rule
        super().__init__(
            f"pass {pass_name!r} violated invariant {rule!r}: {message}"
        )


def _violate(pass_name: str, rule: str, message: str) -> NoReturn:
    raise InvariantViolation(pass_name, rule, message)


# -- adornment consistency (P^e,ad) ------------------------------------------


def _check_literal(lit, pass_name: str, projected: bool, derived_defined) -> None:
    from ..core.adornment import split_adorned

    atom, ad = lit.atom, lit.adornment
    if lit.derived:
        base, name_ad = split_adorned(atom.predicate)
        if len(ad) == 0 and atom.arity == 0:
            pass  # boolean guard: unadorned arity-0 predicate
        elif name_ad is None or name_ad != ad:
            _violate(
                pass_name,
                "name-adornment-agree",
                f"derived literal {atom} carries adornment {ad} but its "
                f"mangled name decodes to {name_ad}",
            )
        if derived_defined is not None and atom.predicate not in derived_defined:
            _violate(
                pass_name,
                "derived-defined",
                f"derived predicate {atom.predicate!r} (in {atom}) has no "
                f"defining rules",
            )
        expected = len(ad.needed_positions) if projected else len(ad)
    else:
        # EDB literals keep their stored arity in both forms
        expected = len(ad)
    if atom.arity != expected:
        _violate(
            pass_name,
            "adornment-arity",
            f"literal {atom} has arity {atom.arity} but its adornment {ad!s:s} "
            f"requires {expected} ({'projected' if projected else 'unprojected'})",
        )


_STRUCTURAL_PASSES = frozenset(
    {"adorn", "split_components", "push_projections"}
)


def check_adorned_program(program, pass_name: str) -> None:
    """Adornment consistency of an :class:`AdornedProgram` in either the
    unprojected (``P^e,ad``) or projected (post-Lemma 3.2) form.

    The ``derived-defined`` rule (every derived body/query predicate
    has defining rules) is asserted only after the structural passes:
    rule deletion may soundly remove *all* rules of a predicate that a
    surviving — then never-firing — rule still references.
    """
    projected = program.projected
    defined = (
        program.derived_predicates()
        if pass_name in _STRUCTURAL_PASSES
        else None
    )
    for rule in program.rules:
        if not rule.head.derived:
            _violate(
                pass_name,
                "head-derived",
                f"rule head {rule.head.atom} is not marked derived",
            )
        _check_literal(rule.head, pass_name, projected, None)
        for lit in rule.body:
            _check_literal(lit, pass_name, projected, defined)
        for lit in rule.negative:
            if "d" in lit.adornment.text:
                _violate(
                    pass_name,
                    "negation-all-needed",
                    f"negated literal {lit.atom} carries existential "
                    f"adornment {lit.adornment}; negated positions are "
                    f"never projectable",
                )
            _check_literal(lit, pass_name, projected, defined)
    _check_literal(program.query, pass_name, projected, defined)
    for name in program.boolean_predicates:
        for rule in program.rules:
            if rule.head.atom.predicate == name and rule.head.atom.arity != 0:
                _violate(
                    pass_name,
                    "boolean-arity",
                    f"boolean predicate {name!r} defined at arity "
                    f"{rule.head.atom.arity}",
                )
    try:
        program.to_program().arities()
    except ValidationError as exc:
        _violate(pass_name, "schema-arity", str(exc))
    if projected:
        try:
            program.to_program().validate()
        except ValidationError as exc:
            _violate(pass_name, "post-projection-safety", str(exc))


# -- section 3.1: component split --------------------------------------------


def check_component_partition(program, pass_name: str) -> None:
    """``rule_components`` yields a partition of each rule's body."""
    from ..core.components import rule_components

    for rule in program.rules:
        comps = rule_components(rule)
        flat = [i for comp in comps for i in comp]
        if sorted(flat) != list(range(len(rule.body))):
            _violate(
                pass_name,
                "component-partition",
                f"components {comps} of rule {rule} do not partition its "
                f"{len(rule.body)} body positions",
            )


def check_split_anchoring(program, pass_name: str, paper_mode: bool = True) -> None:
    """Post-split (Lemma 3.1): every body component of a non-boolean
    rule is anchored to a head variable — a *needed* one in paper mode,
    any head variable in the conservative mode — or is a boolean guard."""
    from ..core.components import rule_components

    check_component_partition(program, pass_name)
    for rule in program.rules:
        head = rule.head
        if head.atom.arity == 0:
            continue
        anchor_positions = (
            head.adornment.needed_positions
            if paper_mode
            else range(len(head.atom.args))
        )
        anchor_vars = {
            head.atom.args[i]
            for i in anchor_positions
            if i < len(head.atom.args) and isinstance(head.atom.args[i], Variable)
        }
        for comp in rule_components(rule):
            lits = [rule.body[i] for i in comp]
            comp_vars = {v for lit in lits for v in lit.atom.variables()}
            if comp_vars & anchor_vars:
                continue
            if all(lit.atom.arity == 0 or not lit.atom.variables() for lit in lits):
                continue
            _violate(
                pass_name,
                "single-component",
                f"rule {rule} still has the unanchored body component "
                f"{[str(lit.atom) for lit in lits]} after the split",
            )


# -- section 5: argument projections -----------------------------------------


def check_argument_projections(program, pass_name: str) -> None:
    """Hidden-link consistency: each head→body projection of the
    projected program matches an independent recomputation from raw
    variable identity, and its hidden links are canonical."""
    from ..core.argument_projection import program_projections

    if not program.projected:
        return
    for (ri, bi), proj in program_projections(program).items():
        rule = program.rules[ri]
        head_args = rule.head.atom.args
        body_args = rule.body[bi].atom.args
        expected_edges = frozenset(
            (i, k)
            for i, ha in enumerate(head_args)
            if isinstance(ha, Variable)
            for k, ba in enumerate(body_args)
            if ha == ba
        )
        if proj.edges != expected_edges:
            _violate(
                pass_name,
                "hidden-link-edges",
                f"projection {proj} of rule {rule} (body #{bi}) disagrees "
                f"with shared-variable edges {sorted(expected_edges)}",
            )
        body_vars = {a for a in body_args if isinstance(a, Variable)}
        head_vars = {a for a in head_args if isinstance(a, Variable)}
        expected_left = frozenset(
            (a, b)
            for a, va in enumerate(head_args)
            for b in range(a + 1, len(head_args))
            if isinstance(va, Variable)
            and head_args[b] == va
            and va not in body_vars
        )
        expected_right = frozenset(
            (a, b)
            for a, va in enumerate(body_args)
            for b in range(a + 1, len(body_args))
            if isinstance(va, Variable)
            and body_args[b] == va
            and va not in head_vars
        )
        if proj.left_links != expected_left or proj.right_links != expected_right:
            _violate(
                pass_name,
                "hidden-link-canonical",
                f"projection of rule {rule} (body #{bi}) stores hidden links "
                f"L={sorted(proj.left_links)} R={sorted(proj.right_links)}; "
                f"expected L={sorted(expected_left)} R={sorted(expected_right)}",
            )


# -- engine: plan / kernel slot-map coherence --------------------------------


def check_compiled_program(program: Program, pass_name: str = "compile_rule") -> None:
    """Compile every rule and check plan/slot-map coherence.

    The kernel generator derives its integer slot map from the plan
    order, so a plan whose bound/free split disagrees with the actual
    binding order would make the generated code read an unassigned
    register; this check recomputes the binding order independently.
    """
    from ..engine.plan import compile_rule

    for index, rule in enumerate(program.rules):
        try:
            compiled = compile_rule(rule, index)
        except ReproError as exc:  # pragma: no cover - compile never raises today
            _violate(pass_name, "plan-compile", f"rule {rule}: {exc}")
        n = len(compiled.relational_body)
        all_plans = [("plan", compiled.plan)] + [
            (f"delta[{i}]", p) for i, p in enumerate(compiled.delta_plans)
        ]
        for label, plan in all_plans:
            if sorted(step.body_index for step in plan) != list(range(n)):
                _violate(
                    pass_name,
                    "plan-permutation",
                    f"{label} of rule {rule} covers body indexes "
                    f"{[s.body_index for s in plan]}, not a permutation of "
                    f"0..{n - 1}",
                )
            bound_vars: set[Variable] = set()
            for step in plan:
                expected_bound = tuple(
                    p
                    for p, arg in enumerate(step.atom.args)
                    if isinstance(arg, Constant) or arg in bound_vars
                )
                if step.bound_positions != expected_bound:
                    _violate(
                        pass_name,
                        "slot-binding",
                        f"{label} of rule {rule}: literal {step.atom} claims "
                        f"bound positions {step.bound_positions}, recomputed "
                        f"{expected_bound}",
                    )
                expected_free = tuple(
                    (p, arg)
                    for p, arg in enumerate(step.atom.args)
                    if not (isinstance(arg, Constant) or arg in bound_vars)
                )
                if step.free_positions != expected_free:
                    _violate(
                        pass_name,
                        "slot-free",
                        f"{label} of rule {rule}: literal {step.atom} claims "
                        f"free positions {step.free_positions}, recomputed "
                        f"{expected_free}",
                    )
                bound_vars.update(v for _, v in step.free_positions)
            uncovered = {
                v
                for atom in (rule.head, *compiled.builtins, *rule.negative)
                for v in atom.variables()
            } - bound_vars
            if uncovered and n:
                _violate(
                    pass_name,
                    "head-coverage",
                    f"{label} of rule {rule} leaves "
                    f"{sorted(v.name for v in uncovered)} unbound for the "
                    f"head/built-ins/negation",
                )
        for i, plan in enumerate(compiled.delta_plans):
            if plan and plan[0].body_index != i:
                _violate(
                    pass_name,
                    "delta-first",
                    f"delta plan {i} of rule {rule} starts at body index "
                    f"{plan[0].body_index}",
                )


# -- whole-result validation --------------------------------------------------


def validate_result(result) -> None:
    """Re-check every recorded stage of an
    :class:`~repro.core.pipeline.OptimizationResult` post hoc.

    ``optimize(validate=True)`` checks each pass at its doorstep; this
    entry point validates a result produced *without* inline checking
    (e.g. one loaded from a report or built by tests).
    """
    check_adorned_program(result.adorned, "adorn")
    check_component_partition(result.adorned, "adorn")
    if result.split is not None:
        check_split_anchoring(result.split.program, "split_components")
        check_adorned_program(result.split.program, "split_components")
    if result.projected is not None:
        check_adorned_program(result.projected, "push_projections")
        check_argument_projections(result.projected, "push_projections")
    check_adorned_program(result.final, "final")
    if result.final.projected:
        check_argument_projections(result.final, "final")
    check_compiled_program(result.program, "final")
    if result.answer_positions is not None:
        width = result.final.query.atom.arity
        bad = [i for i in result.answer_positions if not 0 <= i < width]
        if bad:
            _violate(
                "inline_projection_query",
                "answer-positions",
                f"answer positions {result.answer_positions} index outside "
                f"the final query arity {width}",
            )


def check_pass(pass_name: str, program, paper_mode: bool = True) -> None:
    """Dispatch the invariant checks appropriate after *pass_name*.

    The pipeline calls this after every pass when ``validate=True``;
    *program* is the pass's output :class:`AdornedProgram`.
    """
    check_adorned_program(program, pass_name)
    check_component_partition(program, pass_name)
    if pass_name == "split_components":
        check_split_anchoring(program, pass_name, paper_mode=paper_mode)
    if program.projected:
        check_argument_projections(program, pass_name)
