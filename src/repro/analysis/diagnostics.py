"""The diagnostics engine: stable codes, severities, and renderers.

A :class:`Diagnostic` is one finding of the static analyzer — a paper
lemma the program fails, an optimization the pipeline will miss, or a
construct that can only be a mistake.  Every diagnostic carries a
*stable code* (``DL001`` …) so scripts can filter and suppress by code,
a severity, an anchor (predicate and/or rule index, plus the source
span threaded through the parser), and a fix hint.

:class:`LintReport` aggregates the diagnostics of one program and
renders them as human-readable text (``file:line:col: severity[code]
name: message``) or as JSON for tooling; its :meth:`exit_code` encodes
the CLI contract (0 clean, 2 on errors — warnings too under
``--strict``).

The code registry :data:`CODES` is the single source of truth for code
→ name → severity → paper grounding; the documentation table in
``docs/api.md`` is tested against it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator, Optional

from ..datalog.ast import Span

__all__ = ["Severity", "CodeInfo", "CODES", "Diagnostic", "LintReport"]


class Severity(Enum):
    """How bad a finding is.

    ``ERROR`` — the program violates a precondition of the pipeline
    (it would crash or be rejected).  ``WARNING`` — almost certainly a
    mistake, but the program is evaluable.  ``INFO`` — a structural
    observation: an optimization the pipeline will apply or that is
    available (never a defect).
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class CodeInfo:
    """Registry entry for one diagnostic code."""

    code: str
    name: str
    severity: Severity
    summary: str
    #: the paper result the check is grounded in ("" when purely practical)
    paper: str = ""


def _info(code: str, name: str, severity: Severity, summary: str, paper: str = "") -> CodeInfo:
    return CodeInfo(code, name, severity, summary, paper)


#: Every diagnostic code the analyzer can emit, in code order.
CODES: dict[str, CodeInfo] = {
    c.code: c
    for c in (
        _info(
            "DL001", "unsafe-rule", Severity.ERROR,
            "a head or negated variable is not bound by the positive body "
            "(range restriction)",
            "section 1.1 safety convention",
        ),
        _info(
            "DL002", "arity-mismatch", Severity.ERROR,
            "a predicate is used with two different arities",
        ),
        _info(
            "DL003", "unstratified-negation", Severity.ERROR,
            "a predicate recurses through its own negation; no stratified "
            "least-fixpoint semantics exists",
            "section 6 extension (stratified semantics)",
        ),
        _info(
            "DL004", "no-query", Severity.WARNING,
            "the program has no ?- query; the pipeline cannot adorn it",
            "section 2 (adornment starts from the query)",
        ),
        _info(
            "DL005", "undefined-query-predicate", Severity.ERROR,
            "the query predicate has no defining rules (and no facts); "
            "there is nothing to adorn or answer",
            "section 2",
        ),
        _info(
            "DL006", "undefined-body-predicate", Severity.WARNING,
            "a body predicate has no defining rules and no facts; it "
            "evaluates as an empty relation, so its rule can never fire",
            "Examples 7 and 8 (dead rules after deletion)",
        ),
        _info(
            "DL007", "unreachable-rule", Severity.WARNING,
            "the rule's head predicate is not reachable from the query; "
            "the rule is dead code the cascade cleanup would delete",
            "section 5 cascade (Examples 7 and 8)",
        ),
        _info(
            "DL008", "duplicate-rule", Severity.WARNING,
            "the rule is identical (up to variable renaming) to an "
            "earlier rule",
        ),
        _info(
            "DL009", "redundant-literal", Severity.WARNING,
            "a body literal occurs twice in the same rule body; the "
            "duplicate multiplies join work without changing the result",
            "conjunctive-query minimization (section 3.2 work bound)",
        ),
        _info(
            "DL010", "existential-position", Severity.INFO,
            "the adornment algorithm marks argument positions of this "
            "predicate existential (d); projection pushing shrinks its "
            "arity",
            "Lemma 2.2 / Lemma 3.2",
        ),
        _info(
            "DL011", "boolean-subquery", Severity.INFO,
            "a body component is disconnected from every needed head "
            "variable; the optimizer extracts it as a boolean subquery "
            "evaluated once and cut",
            "Lemma 3.1",
        ),
        _info(
            "DL012", "cross-product", Severity.WARNING,
            "the rule body splits into variable-disjoint components that "
            "each bind head variables; the join is a Cartesian product",
            "section 3.1 connectivity",
        ),
        _info(
            "DL013", "chain-regular", Severity.INFO,
            "the program is a binary chain program whose grammar is "
            "regular; an equivalent monadic (unary) recursion exists",
            "Theorem 3.3 / Lemma 4.1",
        ),
        _info(
            "DL014", "negated-undefined", Severity.WARNING,
            "a negated predicate has no defining rules and no facts; the "
            "negation is always true and the literal is a no-op",
        ),
        _info(
            "DL015", "fact-in-program", Severity.INFO,
            "a ground fact appears among the rules; the paper's "
            "convention keeps all facts in the EDB",
            "section 1.1 (P = (Q, EDB, IDB))",
        ),
        _info(
            "DL016", "dictionary-overhead", Severity.WARNING,
            "a boolean (zero-arity) query over a program whose constant "
            "universe exceeds the dictionary threshold: the columnar "
            "plane interns every constant to produce a one-bit answer, "
            "so encoding overhead dominates on small EDBs",
            "section 3.1 boolean rules; engine --no-columnar",
        ),
        _info(
            "DL017", "bound-blowup", Severity.WARNING,
            "a rule's cardinality upper bound blows up past the "
            "blowup threshold under the planner's synthetic EDB "
            "profile: even the best join order materializes a huge "
            "intermediate result, typically a needed Cartesian "
            "product or a long weakly-connected chain",
            "section 2 adorned bounds; engine cost planner",
        ),
        _info(
            "DL018", "empty-join", Severity.WARNING,
            "sort inference derives an empty value set for a body "
            "position: the join is statically empty and the rule can "
            "never fire",
            "abstract interpretation over the adorned program",
        ),
        _info(
            "DL019", "sort-mismatch", Severity.WARNING,
            "a variable joins argument positions whose inferred sorts "
            "are type-disjoint; the unification is ill-typed and "
            "always fails",
            "abstract interpretation over the adorned program",
        ),
        _info(
            "DL020", "constant-position", Severity.INFO,
            "a derived predicate's argument position always carries "
            "one single constant; a selection could specialize the "
            "predicate away from that column",
            "section 3.2 (argument projections)",
        ),
        _info(
            "DL021", "measured-bound-blowup", Severity.WARNING,
            "a rule's cardinality upper bound blows up under the "
            "*measured* degree sketches of the loaded EDB: even the "
            "best join order materializes an intermediate result past "
            "the blowup threshold on this actual data",
            "section 2 adorned bounds; measured degree sketches",
        ),
        _info(
            "DL022", "skewed-degree", Severity.INFO,
            "a measured relation position is dominated by a hub key: "
            "one value matches a large fraction of the rows, so plans "
            "binding that position inherit the worst-case fanout",
            "section 2 adorned bounds; measured degree sketches",
        ),
        _info(
            "DL023", "bounded-recursion", Severity.INFO,
            "every recursive rule of the component consumes only "
            "bindings already exposed in its head (no fresh frontier "
            "variables); the fixpoint closes in a bounded number of "
            "rounds and a nonrecursive unrolling exists",
            "Theorem 3.3 (monadic rewrite); boundedness analysis",
        ),
        _info(
            "DL024", "no-base-case", Severity.WARNING,
            "a recursive component has no derivable non-recursive "
            "rule: its least fixpoint is provably empty whatever the "
            "EDB holds",
            "section 5 (compile-time emptiness)",
        ),
    )
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding, anchored to a predicate and/or rule."""

    code: str
    severity: Severity
    message: str
    predicate: Optional[str] = None
    rule_index: Optional[int] = None
    span: Optional[Span] = None
    hint: Optional[str] = None

    @property
    def name(self) -> str:
        return CODES[self.code].name

    def render(self, source: str = "<program>") -> str:
        """One- or two-line human-readable form."""
        where = f"{source}:{self.span}" if self.span is not None else source
        line = f"{where}: {self.severity}[{self.code}] {self.name}: {self.message}"
        if self.hint:
            line += f"\n  hint: {self.hint}"
        return line

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "name": self.name,
            "severity": str(self.severity),
            "message": self.message,
            "predicate": self.predicate,
            "rule_index": self.rule_index,
            "span": [self.span.line, self.span.column] if self.span else None,
            "hint": self.hint,
        }


_SEVERITY_ORDER = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}


@dataclass(frozen=True)
class LintReport:
    """All diagnostics of one program, ordered errors-first.

    ``source`` names the program for rendering (a file path, or the
    default ``<program>`` placeholder).
    """

    diagnostics: tuple[Diagnostic, ...]
    source: str = "<program>"

    def __post_init__(self):
        ordered = tuple(
            sorted(
                self.diagnostics,
                key=lambda d: (
                    _SEVERITY_ORDER[d.severity],
                    d.code,
                    d.rule_index if d.rule_index is not None else -1,
                    d.predicate or "",
                ),
            )
        )
        object.__setattr__(self, "diagnostics", ordered)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def by_severity(self, severity: Severity) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is severity)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return self.by_severity(Severity.INFO)

    def codes(self) -> frozenset[str]:
        return frozenset(d.code for d in self.diagnostics)

    def exit_code(self, strict: bool = False) -> int:
        """The CLI contract: 2 when errors are present (with ``strict``
        warnings count as errors), else 0."""
        failing: Iterable[Diagnostic] = (
            self.errors if not strict else self.errors + self.warnings
        )
        return 2 if tuple(failing) else 0

    def summary(self) -> str:
        return (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.infos)} info(s)"
        )

    def render_text(self) -> str:
        """The full human-readable report, summary line last."""
        lines = [d.render(self.source) for d in self.diagnostics]
        lines.append(self.summary())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "counts": {
                "error": len(self.errors),
                "warning": len(self.warnings),
                "info": len(self.infos),
            },
        }

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)
