"""Command-line interface: optimize, run, and inspect Datalog programs.

Usage (also via ``python -m repro``)::

    python -m repro optimize program.dl            # print the pipeline story
    python -m repro run program.dl facts.dl        # evaluate a query
    python -m repro run program.dl facts.dl -O     # ... after optimization
    python -m repro serve program.dl [facts.dl]    # incremental update session
    python -m repro lint program.dl [facts.dl]     # static diagnostics
    python -m repro analyze program.dl [facts.dl]  # abstract interpretation
    python -m repro grammar program.dl             # chain-program/CFG view
    python -m repro explain program.dl facts.dl p "1,2"   # derivation tree
    python -m repro shell [files...]               # interactive session

Program files use the textual syntax of :mod:`repro.datalog.parser`;
fact files are programs consisting of ground facts (``edge(1, 2).``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .core.pipeline import optimize
from .datalog import Database, Program, ReproError, parse
from .datalog.parser import split_facts
from .engine import (
    EngineOptions,
    IncrementalSession,
    ResourceExhausted,
    evaluate,
    parse_fault_specs,
)

__all__ = ["main"]

#: exit code for a governed run that hit a resource limit under
#: ``--on-limit raise`` — distinct from 2 (usage / input errors) so
#: scripts can tell "the query was too expensive" from "the query was
#: wrong"
EXIT_RESOURCE_EXHAUSTED = 3


def _load_program(path: str) -> Program:
    with open(path) as f:
        program, facts = split_facts(parse(f.read()))
    if facts:
        raise ReproError(
            f"{path}: program files must not contain facts "
            f"(found {facts[0]}); put them in the facts file"
        )
    return program


def _load_facts(path: str) -> Database:
    with open(path) as f:
        program, facts = split_facts(parse(f.read()))
    if program.rules:
        raise ReproError(
            f"{path}: fact files must contain only ground facts "
            f"(found rule {program.rules[0]})"
        )
    return Database.from_facts(facts)


def _warn_diagnostics(program: Program, source: str, edb=None) -> None:
    """Print lint errors/warnings for *program* to stderr.

    Used by ``optimize`` and ``run`` so mistakes like an undefined body
    predicate surface as a diagnostic instead of a silently empty
    evaluation; infos are withheld (``repro lint`` shows everything)."""
    from .analysis import lint_program

    report = lint_program(program, edb=edb, source=source)
    for diag in (*report.errors, *report.warnings):
        print(diag.render(source), file=sys.stderr)


def _cmd_optimize(args) -> int:
    program = _load_program(args.program)
    _warn_diagnostics(program, args.program)
    result = optimize(
        program,
        deletion=None if args.no_deletion else "lemma53",
        unit_rules=not args.no_unit_rules,
        use_chase=not args.no_chase,
        use_sagiv=not args.no_sagiv,
        validate=args.validate,
    )
    if args.json:
        import json

        print(json.dumps(result.report_dict(), indent=2))
    elif args.quiet:
        print(result.final)
    else:
        print(result.describe())
    return 0


def _engine_kwargs(args) -> dict:
    """The EngineOptions kwargs shared by ``run`` and ``serve``."""
    engine = dict(
        use_indexes=not args.no_index,
        use_kernels=not args.no_kernel,
        use_columnar=not args.no_columnar,
        use_cost_planner=not args.no_cost_planner,
        replan_rounds=args.replan_rounds,
        use_scc=not args.no_scc,
        parallel=args.parallel,
        deadline_s=args.deadline,
        max_facts=args.max_facts,
        max_delta_rows=args.max_delta_rows,
        on_limit=args.on_limit,
    )
    if args.inject_fault:
        engine["fault_plan"] = parse_fault_specs(args.inject_fault)
    return engine


def _cmd_run(args) -> int:
    program = _load_program(args.program)
    db = _load_facts(args.facts)
    _warn_diagnostics(program, args.program, edb=db.predicates())
    engine = _engine_kwargs(args)
    try:
        if args.optimize:
            result = optimize(program, validate=args.validate)
            evaluation = result.evaluate(db, **engine)
            answers = result.answers(db, **engine)
        else:
            evaluation = evaluate(program, db, EngineOptions(**engine))
            answers = evaluation.answers()
    except ResourceExhausted as exc:
        print(f"error: {exc}", file=sys.stderr)
        if exc.stats is not None:
            print(f"-- partial work before abort: {exc.stats.summary()}", file=sys.stderr)
        return EXIT_RESOURCE_EXHAUSTED
    for row in sorted(answers, key=repr):
        print(", ".join(map(str, row)))
    if evaluation.is_partial:
        print(
            f"-- PARTIAL RESULT (lower bound): evaluation aborted by "
            f"{evaluation.stats.aborted_reason} limit; absent answers are "
            f"unknown, not false",
            file=sys.stderr,
        )
    if args.stats:
        print(f"-- {evaluation.stats.summary()}", file=sys.stderr)
    return 0


def _cmd_serve(args) -> int:
    """Incremental mode: materialize once, then maintain the fixpoint
    under a line protocol on stdin.

    Commands (one per line)::

        +edge(1, 2). edge(2, 3).   apply the facts as one insert batch
        -edge(1, 2).               apply the facts as one retract batch
        ?                          print the program query's answers
        ? pred                     print the stored rows of a predicate
        .stats                     cumulative session counters (stderr)
        .last                      last batch's counters (stderr)
        .refresh                   re-run fixpoint (restores exactness
                                   after a partial, governed batch)
        .checkpoint                force a snapshot + WAL compaction
                                   (requires --wal)
        .recover                   reopen the session from disk, as a
                                   restart would (requires --wal)
        .quit                      exit (EOF also exits)

    Each update line is one governed batch: deadlines/budgets from the
    engine flags apply per batch.  A tripped batch leaves the session
    in a flagged lower-bound state; the session keeps serving and
    ``.refresh`` restores exactness.

    **Error protocol.**  A bad input line — a parse error, an arity
    mismatch, an undefined predicate, an unknown command — answers with
    one structured line on **stdout**, ``err <Type>: <message>``, and
    the session keeps serving with its state (and WAL, when durable)
    untouched by the rejected line.  Rejection happens before anything
    reaches the log, so the WAL never records a batch that was not
    applied.

    With ``--wal`` the session is **durable**: every accepted batch is
    appended to the write-ahead log before it is applied, and snapshots
    per ``--snapshot-every``/``--fsync`` bound the replay tail.  If the
    WAL already exists on startup, the session is *recovered* from it
    (the facts file is ignored in that case — state comes from disk).
    """
    import os

    program = _load_program(args.program)
    db = _load_facts(args.facts) if args.facts else Database()
    _warn_diagnostics(program, args.program, edb=db.predicates())
    opts = EngineOptions(**_engine_kwargs(args))

    config = None
    if args.wal:
        from .engine import DurabilityConfig

        config = DurabilityConfig(
            wal_path=args.wal,
            fsync=args.fsync,
            snapshot_every=args.snapshot_every,
            on_flag_drift=args.on_flag_drift,
        )

    def open_session():
        if config is not None and os.path.exists(config.wal_path):
            from .engine import recover

            session, report = recover(program, config, opts)
            print(
                f"recovered source={report.source} "
                f"snapshot_seq={report.snapshot_seq} "
                f"replayed={report.replayed_batches} "
                f"recovery_ms={report.recovery_ms:.1f}",
                file=sys.stderr,
            )
            return session
        return IncrementalSession(program, db, opts, durable=config)

    try:
        session = open_session()
    except ResourceExhausted as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_RESOURCE_EXHAUSTED

    def parse_batch(text: str):
        batch_program, facts = split_facts(parse(text))
        if batch_program.rules or batch_program.query is not None:
            raise ReproError(
                "update batches must contain only ground facts"
            )
        unknown = sorted(
            {f.predicate for f in facts} - session.known_predicates()
        )
        if unknown:
            raise ReproError(
                f"undefined predicate(s) {', '.join(unknown)}: not in "
                f"the program or the loaded EDB"
            )
        return facts

    from .engine import WalCrash

    print(f"ready {session.stats.summary()}", file=sys.stderr)
    try:
        for raw in args.input if args.input is not None else sys.stdin:
            line = raw.strip()
            try:
                if not line or line.startswith("%"):
                    continue
                if line in (".quit", ".exit"):
                    break
                if line == ".stats":
                    print(f"-- {session.stats.summary()}", file=sys.stderr)
                    continue
                if line == ".last":
                    print(f"-- {session.last_stats.summary()}", file=sys.stderr)
                    continue
                if line == ".refresh":
                    batch = session.refresh()
                    print(f"ok {batch.summary()}")
                    continue
                if line == ".checkpoint":
                    if not session.durable:
                        raise ReproError(".checkpoint requires --wal")
                    seq = session.checkpoint()
                    print(f"ok checkpoint seq={seq}")
                    continue
                if line == ".recover":
                    if config is None:
                        raise ReproError(".recover requires --wal")
                    from .engine import recover

                    session.close()
                    session, report = recover(program, config, opts)
                    print(
                        f"ok recovered source={report.source} "
                        f"replayed={report.replayed_batches}"
                    )
                    continue
                if line == "?" or line.startswith("? "):
                    pred = line[1:].strip()
                    rows = session.facts(pred) if pred else session.answers()
                    for row in sorted(rows, key=repr):
                        print(", ".join(map(str, row)))
                    if session.is_partial:
                        print(
                            "-- PARTIAL RESULT (lower bound): a previous "
                            "batch was aborted; run .refresh",
                            file=sys.stderr,
                        )
                    continue
                if line[0] in "+-":
                    facts = parse_batch(line[1:])
                    if line[0] == "+":
                        batch = session.insert(facts)
                    else:
                        batch = session.retract(facts)
                    partial = " PARTIAL" if session.is_partial else ""
                    print(f"ok{partial} {batch.summary()}")
                    continue
                raise ReproError(f"unrecognized command: {line!r}")
            except WalCrash:
                # an injected crash is a crash: no structured reply, no
                # orderly shutdown — recovery is the test's next move
                raise
            except ResourceExhausted as exc:
                print(f"err ResourceExhausted: {exc}")
                print(
                    "-- session state is a sound lower bound; .refresh "
                    "restores exactness",
                    file=sys.stderr,
                )
            except ReproError as exc:
                print(f"err {type(exc).__name__}: {exc}")
            except Exception as exc:  # noqa: BLE001 - serve must survive any bad line
                print(f"err {type(exc).__name__}: {exc}")
    finally:
        session.close()
    return 0


def _cmd_lint(args) -> int:
    from .analysis import lint_program

    # Parse directly rather than via _load_program: a program file
    # containing facts should *lint* (DL015) instead of being rejected.
    with open(args.program) as f:
        program = parse(f.read())
    edb = None
    profiles = None
    if args.facts:
        from .engine.cost import profile_database

        db = _load_facts(args.facts)
        edb = db.predicates()
        # with a loaded EDB, DL017 prices with measured degree
        # profiles instead of the synthetic defaults
        profiles = profile_database(db)
    report = lint_program(program, edb=edb, source=args.program, profiles=profiles)
    print(report.render_json() if args.format == "json" else report.render_text())
    return report.exit_code(strict=args.strict)


def _cmd_analyze(args) -> int:
    from .analysis import analyze_program, load_profiles, save_profiles

    # Like lint: parse directly so fact-carrying programs analyze (the
    # in-program facts seed the sort and cardinality domains).
    with open(args.program) as f:
        program = parse(f.read())
    db = _load_facts(args.facts) if args.facts else None
    sketches = load_profiles(args.load_profiles) if args.load_profiles else None
    result = analyze_program(
        program, db, sketches=sketches, source=args.program
    )
    if args.save_profiles:
        save_profiles(args.save_profiles, result.sketches())
    print(result.render_json() if args.format == "json" else result.render_text())
    return result.report.exit_code(strict=args.strict)


def _cmd_grammar(args) -> int:
    from .grammar import (
        is_right_linear,
        is_self_embedding,
        language,
        monadic_program_for,
        program_to_grammar,
        shortest_word,
    )

    program = _load_program(args.program)
    grammar = program_to_grammar(program)
    print(grammar)
    print(f"self-embedding: {is_self_embedding(grammar)}")
    print(f"right-linear:   {is_right_linear(grammar)}")
    word = shortest_word(grammar)
    print(f"shortest word:  {' '.join(word) if word else '(empty language)'}")
    if args.words:
        for w in sorted(language(grammar, args.words), key=lambda w: (len(w), w)):
            print("  " + " ".join(w))
    monadic = monadic_program_for(program)
    if monadic is not None:
        print("equivalent monadic program (Theorem 3.3):")
        print(monadic)
    return 0


def _cmd_shell(args) -> int:
    from .shell import run_shell

    if args.load:
        # preload by synthesizing .load commands ahead of stdin
        import itertools

        preload = [f".load {path}" for path in args.load]
        import sys as _sys

        return run_shell(itertools.chain(preload, _sys.stdin))
    return run_shell()


def _cmd_explain(args) -> int:
    program = _load_program(args.program)
    db = _load_facts(args.facts)
    result = evaluate(program, db, EngineOptions(record_provenance=True))
    row = tuple(int(v) if v.lstrip("-").isdigit() else v for v in args.row.split(","))
    if row not in result.facts(args.predicate):
        print(f"{args.predicate}{row!r} was not derived", file=sys.stderr)
        return 1
    print(result.derivation(args.predicate, row).render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Optimizing Existential Datalog Queries (PODS 1988) — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_opt = sub.add_parser("optimize", help="run the optimization pipeline")
    p_opt.add_argument("program", help="Datalog program file (with a ?- query)")
    p_opt.add_argument("-q", "--quiet", action="store_true", help="final program only")
    p_opt.add_argument("--json", action="store_true", help="machine-readable report")
    p_opt.add_argument("--no-deletion", action="store_true", help="skip phase 3")
    p_opt.add_argument("--no-unit-rules", action="store_true")
    p_opt.add_argument("--no-chase", action="store_true")
    p_opt.add_argument("--no-sagiv", action="store_true")
    p_opt.add_argument(
        "--validate",
        action="store_true",
        help="arm the pass-contract sanitizer: assert each pipeline "
        "pass's published invariant over its output and fail with a "
        "structured InvariantViolation naming the pass and rule",
    )
    p_opt.set_defaults(fn=_cmd_optimize)

    p_run = sub.add_parser("run", help="evaluate the program's query")
    p_run.add_argument("program")
    p_run.add_argument("facts", help="file of ground facts (the EDB)")
    p_run.add_argument("-O", "--optimize", action="store_true")
    p_run.add_argument("--stats", action="store_true", help="work counters to stderr")
    _add_engine_flags(p_run)
    p_run.add_argument(
        "--validate",
        action="store_true",
        help="with -O, arm the optimizer's pass-contract sanitizer "
        "(see 'repro optimize --validate')",
    )
    p_run.set_defaults(fn=_cmd_run)

    p_serve = sub.add_parser(
        "serve",
        help="incremental mode: materialize once, maintain under "
        "+fact/-fact update batches from stdin",
    )
    p_serve.add_argument("program")
    p_serve.add_argument(
        "facts",
        nargs="?",
        default=None,
        help="optional initial EDB fact file (default: empty)",
    )
    _add_engine_flags(p_serve)
    p_serve.add_argument(
        "--wal",
        default=None,
        metavar="PATH",
        help="make the session durable: write-ahead-log every accepted "
        "batch to PATH and keep columnar snapshots next to it; if PATH "
        "already exists the session is recovered from it on startup "
        "(the facts file is ignored then)",
    )
    p_serve.add_argument(
        "--snapshot-every",
        type=int,
        default=64,
        metavar="N",
        help="with --wal, snapshot + compact the log every N accepted "
        "batches (0 = only on .checkpoint; default 64)",
    )
    p_serve.add_argument(
        "--fsync",
        choices=("always", "batch", "off"),
        default="batch",
        help="with --wal, the log's durability/latency trade-off: "
        "'always' fsyncs every record (survives power loss), 'batch' "
        "flushes every record (survives process death; default), 'off' "
        "leaves flushing to the OS",
    )
    p_serve.add_argument(
        "--on-flag-drift",
        choices=("refuse", "scratch"),
        default="refuse",
        help="with --wal, what recovery does when the log was written "
        "under different engine flags: 'refuse' (default) fails with a "
        "structured RecoveryError; 'scratch' re-evaluates from the "
        "reconstructed base facts (slower, never wrong)",
    )
    p_serve.set_defaults(fn=_cmd_serve, input=None)

    p_lint = sub.add_parser(
        "lint", help="paper-grounded static diagnostics (no evaluation)"
    )
    p_lint.add_argument("program", help="Datalog program file")
    p_lint.add_argument(
        "facts",
        nargs="?",
        default=None,
        help="optional fact file; enables undefined-predicate checks "
        "against the actual EDB schema",
    )
    p_lint.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as errors (exit code 2)",
    )
    p_lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    p_lint.set_defaults(fn=_cmd_lint)

    p_ana = sub.add_parser(
        "analyze",
        help="abstract-interpretation analysis: sorts, degree "
        "sketches, boundedness (no evaluation)",
    )
    p_ana.add_argument("program", help="Datalog program file")
    p_ana.add_argument(
        "facts",
        nargs="?",
        default=None,
        help="optional fact file; seeds the domains with measured "
        "sorts and degree sketches",
    )
    p_ana.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as errors (exit code 2)",
    )
    p_ana.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    p_ana.add_argument(
        "--save-profiles",
        metavar="FILE",
        default=None,
        help="persist the computed degree sketches as JSON",
    )
    p_ana.add_argument(
        "--load-profiles",
        metavar="FILE",
        default=None,
        help="pre-seed the cardinality domain from persisted sketches",
    )
    p_ana.set_defaults(fn=_cmd_analyze)

    p_gram = sub.add_parser("grammar", help="chain-program / CFG view")
    p_gram.add_argument("program")
    p_gram.add_argument(
        "--words", type=int, metavar="LEN", help="list L(G) members up to LEN"
    )
    p_gram.set_defaults(fn=_cmd_grammar)

    p_shell = sub.add_parser("shell", help="interactive Datalog shell")
    p_shell.add_argument(
        "load", nargs="*", help="program/fact files to load on startup"
    )
    p_shell.set_defaults(fn=_cmd_shell)

    p_exp = sub.add_parser("explain", help="print a fact's derivation tree")
    p_exp.add_argument("program")
    p_exp.add_argument("facts")
    p_exp.add_argument("predicate")
    p_exp.add_argument("row", help='comma-separated values, e.g. "1,2"')
    p_exp.set_defaults(fn=_cmd_explain)

    return parser


def _add_engine_flags(p_run: argparse.ArgumentParser) -> None:
    """Engine/governor/fault flags shared by ``run`` and ``serve``."""
    p_run.add_argument(
        "--no-index",
        action="store_true",
        help="answer probes by full scans instead of hash indexes "
        "(the baseline engine; answers are identical, only work differs)",
    )
    p_run.add_argument(
        "--no-kernel",
        action="store_true",
        help="evaluate rule bodies with the plan interpreter instead of "
        "compiled kernels (the differential oracle; answers, provenance "
        "and work counters are identical, only wall-clock differs)",
    )
    p_run.add_argument(
        "--no-columnar",
        action="store_true",
        help="evaluate rule bodies on the per-tuple kernels instead of "
        "the dictionary-encoded batch kernels (the columnar plane's "
        "differential oracle; answers and work counters are identical, "
        "only wall-clock differs)",
    )
    p_run.add_argument(
        "--no-cost-planner",
        action="store_true",
        help="order joins with the size-greedy heuristic instead of the "
        "bound-driven cost model (the planner's differential oracle; "
        "answers and fact counts are identical, only join work differs)",
    )
    p_run.add_argument(
        "--replan-rounds",
        type=int,
        default=4,
        metavar="N",
        help="under the cost planner, re-rank a recursive fixpoint's "
        "delta plans from observed round cardinalities every N rounds "
        "(0 disables adaptive replanning; default 4)",
    )
    p_run.add_argument(
        "--no-scc",
        action="store_true",
        help="run each stratum as one monolithic fixpoint instead of "
        "scheduling its SCC-condensation DAG unit by unit (the "
        "pre-scheduler engine; answers are identical, only work differs)",
    )
    p_run.add_argument(
        "--parallel",
        type=int,
        default=1,
        metavar="N",
        help="evaluate independent SCC units (same condensation depth) "
        "on a thread pool of N workers (default 1; implies SCC "
        "scheduling; results are deterministic for any N)",
    )
    p_run.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="S",
        help="wall-clock budget in seconds; on expiry the run is "
        "cancelled cooperatively at the next iteration/unit/rule "
        "boundary (see --on-limit)",
    )
    p_run.add_argument(
        "--max-facts",
        type=int,
        default=None,
        metavar="N",
        help="derivation budget: abort once more than N facts have "
        "been derived (checked periodically between rule firings; may "
        "overshoot by a few firings' worth)",
    )
    p_run.add_argument(
        "--max-delta-rows",
        type=int,
        default=None,
        metavar="N",
        help="abort once more than N rows have entered semi-naive "
        "delta frontiers (trips early on geometrically growing "
        "recursions)",
    )
    p_run.add_argument(
        "--on-limit",
        choices=("raise", "partial"),
        default="raise",
        help="what a tripped limit does: 'raise' exits with code 3 and "
        "a structured ResourceExhausted message; 'partial' prints the "
        "best-effort answers flagged as a lower bound (default: raise)",
    )
    p_run.add_argument(
        "--inject-fault",
        action="append",
        default=[],
        metavar="SPEC",
        help="deterministically inject a fault to exercise the "
        "degradation ladder; repeatable.  SPEC is columnar, "
        "kernel-compile[:pred], index-build, scheduler, worker-death:N, "
        "unit-error:N, or slow-unit:N[:seconds]",
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
