"""Stratified negation: a dependency-audit scenario (the section-6
extension implemented by this library).

Scenario: a service catalogue with a versioned depends-on graph.  A
service is *exposed* if it transitively depends on some deprecated
component (at any version) and is not covered by a waiver.  The query
wants only the exposed service names — the version of the offending
dependency is existential, so the optimizer pushes that projection
through the (positive) reachability recursion (arity 3 → 2) while
treating the negated waiver check conservatively (every argument of a
negated literal is needed).

Demonstrates: ``not`` syntax, stratification, and that the optimizer
remains answer-preserving with phase 3 (rule deletion) safely disabled
under non-monotonicity.

Run:  python examples/policy_audit.py
"""

import random
import time

from repro import Database, evaluate, optimize, parse
from repro.datalog.analysis import stratify

PROGRAM = parse(
    """
    exposed(S) :- uses(S, C, V), deprecated(C), not waived(S).
    uses(S, C, V) :- depends(S, C, V).
    uses(S, C, V) :- depends(S, M, W), uses(M, C, V).
    ?- exposed(S).
    """
)


def catalogue(services: int = 300, seed: int = 11) -> Database:
    rng = random.Random(seed)
    db = Database()
    depends = db.ensure("depends", 3)
    for s in range(1, services):
        for _ in range(2):
            # DAG: depend on lower ids, at some required version
            depends.add((s, rng.randrange(s), rng.randrange(6)))
    deprecated = db.ensure("deprecated", 1)
    for c in rng.sample(range(services // 4), 5):
        deprecated.add((c,))
    waived = db.ensure("waived", 1)
    for s in rng.sample(range(services), services // 10):
        waived.add((s,))
    return db


def timed(label, fn):
    start = time.perf_counter()
    out = fn()
    elapsed = time.perf_counter() - start
    print(f"{label:<12} {elapsed * 1000:8.1f} ms   {out.stats.summary()}")
    return out


def main() -> None:
    print("strata:", [sorted(layer) for layer in stratify(PROGRAM)])
    result = optimize(PROGRAM)
    print()
    print("optimized program (negation intact, recursion projected):")
    print(result.final)
    print()

    db = catalogue()
    print(f"catalogue: {db.fact_count()} facts")
    original = timed("original", lambda: evaluate(PROGRAM, db))
    optimized = timed("optimized", lambda: result.evaluate(db))

    exposed = result.answers(db)
    assert exposed == result.reference_answers(db)
    assert optimized.stats.derivations <= original.stats.derivations
    print()
    print(f"{len(exposed)} services exposed to deprecated components")


if __name__ == "__main__":
    main()
