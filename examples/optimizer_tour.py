"""A guided tour of the paper's twelve worked examples.

Prints, for each example, the program the paper starts from, what the
implementation does to it, and the check that the behaviour matches the
paper's narrative.  This is the executable companion to DESIGN.md's
experiment index — run it to watch every transformation of the paper
happen.

Run:  python examples/optimizer_tour.py
"""

from repro.core import (
    adorn,
    chase_deletable,
    delete_rules,
    lemma51_deletable,
    lemma53_deletable,
    optimize,
    push_projections,
    rule_deletable_uniform,
    split_components,
)
from repro.core.folding import fold_program
from repro.engine import evaluate
from repro.workloads import paper_examples as pe
from repro.workloads.edb import random_edb


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    banner("Example 1 (section 2): adorning the right-linear TC query")
    adorned = adorn(pe.example1_program())
    print(adorned)

    banner("Example 2 (section 3.1): boolean subqueries / bottom-up cut")
    split = split_components(adorn(pe.example2_program()))
    print(split.program)
    print(f"-> booleans: {sorted(split.booleans)} (retired once true)")

    banner("Example 3 (section 3.2): projection pushed through recursion")
    projected = push_projections(adorn(pe.example1_program()))
    print(projected)
    print("-> the recursive predicate is now unary")

    banner("Example 4: Sagiv's uniform-equivalence test deletes the recursion")
    plain = projected.to_program()
    print(f"recursive rule deletable? {rule_deletable_uniform(plain, 1)}")
    print(f"exit rule deletable?      {rule_deletable_uniform(plain, 2)}")

    banner("Example 5: the left-linear variant resists uniform equivalence")
    left = pe.adorned_from_text(pe.example5_adorned_text())
    verdicts = [
        rule_deletable_uniform(left.to_program(), i) for i in range(len(left))
    ]
    print(left)
    print(f"-> Sagiv-deletable rules: {verdicts} (none, as the paper says)")

    banner("Example 6: uniform query equivalence succeeds where Sagiv fails")
    report = delete_rules(left, use_sagiv=False)
    for d in report.deleted:
        print(f"  deleted: {d}")
    print("optimized program:")
    print(report.program)

    banner("Example 7: Lemma 5.1 summaries + cascade")
    e7 = pe.example7_adorned()
    print(e7)
    print(f"-> rule 5 deletable via unit rule:   {lemma51_deletable(e7, 5)}")
    print(f"-> rule 6 deletable via identity:    {lemma51_deletable(e7, 6)}")
    reduced = delete_rules(e7, method="lemma51", use_chase=False, use_sagiv=False)
    print("reduced program (matches the paper):")
    print(reduced.program)

    banner("Example 8: deletion beside other recursion; emptiness detection")
    e8 = delete_rules(
        pe.example8_adorned(), method="lemma51", use_chase=False, use_sagiv=False
    )
    for d in e8.deleted:
        print(f"  deleted: {d}")
    empty = delete_rules(pe.example8_empty_adorned(), use_sagiv=False)
    print(f"-> emptiness variant reduced to {len(empty.program)} rules at compile time")

    banner("Examples 9 and 11: folding unlocks the summary test")
    e9 = pe.example9_adorned()
    print(e9)
    print(f"-> Lemma 5.3 on the last rule (pre-fold):  {lemma53_deletable(e9, 3)}")
    print(f"-> chase on the last rule (it IS deletable): {chase_deletable(e9, 3)}")
    ri, bis, name = pe.example9_fold_spec()
    folded = fold_program(e9, ri, bis, name)
    print("after the Example-11 fold:")
    print(folded.program)
    idx = next(
        i
        for i, r in enumerate(folded.program.rules)
        if r.head.atom.predicate == "p@nn" and name in str(r)
    )
    print(f"-> Lemma 5.1 now applies: {lemma51_deletable(folded.program, idx)}")

    banner("Example 10: Lemma 5.3 beats Lemma 5.1")
    e10 = pe.example10_adorned()
    print(e10)
    print(f"-> Lemma 5.1 on the cycle rule: {lemma51_deletable(e10, 4)}")
    print(f"-> Lemma 5.3 on the cycle rule: {lemma53_deletable(e10, 4)}")

    banner("Example 12 (section 6): a transformation beyond projection")
    orig, trans = pe.example12_original(), pe.example12_transformed()
    print("original (recursion carries Z, re-checks c(Z) at every level):")
    print(orig)
    print("transformed (arity 2 recursion, c hoisted into the exit):")
    print(trans)
    db = random_edb(orig, rows=30, domain=8, seed=12)
    assert evaluate(orig, db).answers() == evaluate(trans, db).answers()
    print("-> verified equivalent on a random database")

    banner("The full pipeline, end to end (Example 1's program)")
    print(optimize(pe.example1_program()).describe())


if __name__ == "__main__":
    main()
