"""Chain programs as context-free grammars (sections 1.1, 4, and
Theorem 3.3).

Demonstrates the grammar correspondence the paper's undecidability
results live on:

- dropping arguments turns a binary chain program into a CFG;
- ``L(G)`` vs. the extended language ``L^ex(G)`` separate plain from
  *uniform* equivalence (Lemma 4.1) — shown on the left-/right-linear
  transitive-closure pair of Example 5;
- the self-embedding test flags grammars that may not be regular;
- for a right-linear program, the NFA construction yields an
  equivalent *monadic* program (Theorem 3.3's positive direction).

Run:  python examples/grammar_view.py
"""

from repro import Database, evaluate, parse
from repro.grammar import (
    extended_language,
    is_right_linear,
    is_self_embedding,
    language,
    monadic_program_for,
    program_to_grammar,
)

RIGHT = parse(
    """
    a(X, Y) :- e(X, Z), a(Z, Y).
    a(X, Y) :- e(X, Y).
    ?- a(X, Y).
    """
)

LEFT = parse(
    """
    a(X, Y) :- a(X, Z), e(Z, Y).
    a(X, Y) :- e(X, Y).
    ?- a(X, Y).
    """
)

ANBN = parse(
    """
    s(X, Y) :- push(X, Z1), s(Z1, Z2), pop(Z2, Y).
    s(X, Y) :- push(X, Z), pop(Z, Y).
    ?- s(X, Y).
    """
)


def show(word_set, limit=6):
    words = sorted(word_set, key=lambda w: (len(w), w))[:limit]
    return ", ".join(" ".join(w) for w in words) or "(empty)"


def main() -> None:
    g_right = program_to_grammar(RIGHT)
    g_left = program_to_grammar(LEFT)
    g_anbn = program_to_grammar(ANBN)

    print("right-linear TC as a grammar:")
    print(g_right)
    print()
    print(f"L(right)  up to 4: {show(language(g_right, 4))}")
    print(f"L(left)   up to 4: {show(language(g_left, 4))}")
    print("-> identical languages: the programs are query equivalent (Lemma 4.1.2)")
    print()
    print(f"L^ex(right) up to 2: {show(extended_language(g_right, 2))}")
    print(f"L^ex(left)  up to 2: {show(extended_language(g_left, 2))}")
    print(
        "-> different extended languages: NOT uniformly equivalent "
        "(Lemma 4.1.3/4 — the Example 5 phenomenon)"
    )
    print()

    print(f"self-embedding(right TC)? {is_self_embedding(g_right)}")
    print(f"self-embedding(push^n pop^n)? {is_self_embedding(g_anbn)}")
    print(f"L(push^n pop^n) up to 6: {show(language(g_anbn, 6))}")
    print("-> the balanced language is a witness for Theorem 3.3's undecidability")
    print()

    print(f"right TC right-linear? {is_right_linear(g_right)}")
    monadic = monadic_program_for(RIGHT)
    print("equivalent monadic program (Theorem 3.3, constructive direction):")
    print(monadic)
    db = Database.from_dict({"e": [(0, 1), (1, 2), (2, 0), (5, 6)]})
    binary = {t[0] for t in evaluate(RIGHT, db).answers()}
    unary = {t[0] for t in evaluate(monadic, db).answers()}
    assert binary == unary
    print(f"-> agrees with the binary program on a sample graph: {sorted(unary)}")
    print()
    print(f"monadic_program_for(push^n pop^n) = {monadic_program_for(ANBN)}")
    print("-> None: outside the constructive fragment, as expected")


if __name__ == "__main__":
    main()
