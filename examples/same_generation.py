"""Same-generation with an existential partner — a classic deductive-
database workload through the existential optimizer.

Query: which people have *some* same-generation relative?  The partner
is existential, so the paper's machinery adorns ``sg`` with ``nd``,
pushes the projection where it can, and — because the partner argument
is genuinely needed inside the recursion (it joins ``down``) — falls
back to the covering unit rule ``sg@nd :- sg@nn`` plus query inlining,
guaranteeing the optimized program never does more work than the
original (the paper's section-2 promise).

The scenario is the paper's own motivation: queries frequently project
out arguments even when the program, as written, keeps them.

Run:  python examples/same_generation.py
"""

import random
import time

from repro import Database, evaluate, optimize, parse

PROGRAM = parse(
    """
    sg(X, Y) :- flat(X, Y).
    sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
    ?- sg(X, _).
    """
)


def family_tree(generations: int = 6, fanout: int = 3, seed: int = 42) -> Database:
    """A layered ancestry: ``up`` = child→parent, ``down`` = parent→child,
    ``flat`` = sibling-ish links inside the oldest generation."""
    rng = random.Random(seed)
    db = Database()
    up = db.ensure("up", 2)
    down = db.ensure("down", 2)
    flat = db.ensure("flat", 2)
    layer = list(range(fanout))
    next_id = fanout
    for a in layer:
        for b in layer:
            if a != b and rng.random() < 0.8:
                flat.add((a, b))
    for _ in range(generations - 1):
        new_layer = []
        for parent in layer:
            for _ in range(fanout):
                child = next_id
                next_id += 1
                up.add((child, parent))
                down.add((parent, child))
                new_layer.append(child)
        # keep the tree from exploding: sample the next layer
        layer = rng.sample(new_layer, min(len(new_layer), 3 * fanout))
    return db


def timed(label, fn):
    start = time.perf_counter()
    out = fn()
    elapsed = time.perf_counter() - start
    print(f"{label:<12} {elapsed * 1000:8.1f} ms   {out.stats.summary()}")
    return out


def main() -> None:
    db = family_tree()
    print(f"family tree: {db.fact_count()} base facts")
    print()

    result = optimize(PROGRAM)
    print("optimized program:")
    print(result.final)
    print()

    original = timed("original", lambda: evaluate(PROGRAM, db))
    optimized = timed("optimized", lambda: result.evaluate(db))

    people_with_relatives = result.answers(db)
    assert people_with_relatives == result.reference_answers(db)
    assert optimized.stats.derivations <= original.stats.derivations
    print()
    print(f"{len(people_with_relatives)} people have a same-generation relative")


if __name__ == "__main__":
    main()
