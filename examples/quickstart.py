"""Quickstart: optimize and run an existential Datalog query.

The running example of the paper (Examples 1 and 3): which nodes can
reach *some* node?  The second argument of the reachability predicate
is existential — only its existence matters — and the optimizer (a)
detects that by adornment, (b) pushes the projection through the
recursion, turning the binary closure into a unary one, and (c) deletes
the now-redundant recursive rule, leaving a single scan of the edge
relation.

Run:  python examples/quickstart.py
"""

from repro import Database, evaluate, optimize, parse

PROGRAM = parse(
    """
    query(X) :- reach(X, Y).
    reach(X, Y) :- edge(X, Z), reach(Z, Y).
    reach(X, Y) :- edge(X, Y).
    ?- query(X).
    """
)


def main() -> None:
    result = optimize(PROGRAM)
    print(result.describe())
    print()

    db = Database.from_dict(
        {"edge": [(0, 1), (1, 2), (2, 3), (3, 1), (7, 8)]}
    )

    original = evaluate(PROGRAM, db)
    optimized = result.evaluate(db)

    assert result.answers(db) == result.reference_answers(db)
    print("answers:", sorted(result.answers(db)))
    print()
    print(f"original work:  {original.stats.summary()}")
    print(f"optimized work: {optimized.stats.summary()}")


if __name__ == "__main__":
    main()
