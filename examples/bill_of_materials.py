"""Bill-of-materials: existential subqueries, the bottom-up cut, and
Magic Sets composition.

Scenario: a manufacturing database with a part-of hierarchy and
supplier availability.  The question "which assemblies are currently
shippable?" needs (a) which parts transitively contain a certified
component — a per-part reachability — and (b) a global go/no-go check
that *some* audit of the factory passed this quarter.  The audit check
is an existential subquery disconnected from the per-part variables:
phase 1 of the optimizer turns it into a boolean ``B_i`` that the
engine retires after its first success (the bottom-up cut of section
3.1).  Finally, asking about one specific assembly composes the
existential optimization with Magic Sets (the paper's orthogonality
remark).

Run:  python examples/bill_of_materials.py
"""

import random
import time

from repro import Database, evaluate, optimize, parse
from repro.rewriting import magic_sets

PROGRAM = parse(
    """
    shippable(P) :- assembly(P), certified_part(P, C), audit(Q, R), passed(R).
    certified_part(P, C) :- part_of(C, P), certified(C).
    certified_part(P, C) :- part_of(S, P), certified_part(S, C).
    ?- shippable(P).
    """
)


def factory(parts: int = 400, seed: int = 7) -> Database:
    rng = random.Random(seed)
    db = Database()
    part_of = db.ensure("part_of", 2)
    for child in range(1, parts):
        part_of.add((child, rng.randrange(child)))  # tree-shaped BOM
    assembly = db.ensure("assembly", 1)
    for p in range(0, parts, 7):
        assembly.add((p,))
    certified = db.ensure("certified", 1)
    for p in rng.sample(range(parts), parts // 5):
        certified.add((p,))
    audit = db.ensure("audit", 2)
    passed = db.ensure("passed", 1)
    for q in range(40):
        audit.add((q, q % 5))
    passed.add((3,))
    return db


def timed(label, fn):
    start = time.perf_counter()
    out = fn()
    elapsed = time.perf_counter() - start
    print(f"{label:<22} {elapsed * 1000:8.1f} ms   {out.stats.summary()}")
    return out


def main() -> None:
    db = factory()
    print(f"factory database: {db.fact_count()} facts")
    print()

    result = optimize(PROGRAM)
    print("after the existential optimizer (note the boolean guard):")
    print(result.final)
    print(f"cut predicates: {sorted(result.cut_predicates)}")
    print()

    original = timed("original", lambda: evaluate(PROGRAM, db))
    optimized = timed("optimized+cut", lambda: result.evaluate(db))
    assert result.answers(db) == result.reference_answers(db)
    assert optimized.stats.rules_retired >= 1

    # -- point query: one specific assembly, via Magic Sets --------------
    point = PROGRAM.with_query(parse("?- shippable(7). x(X) :- y.").query)
    point_result = optimize(point)
    composed = magic_sets(point_result.program)
    print()
    print("point query ?- shippable(7) after existential + magic sets:")
    got = timed(
        "existential+magic",
        lambda: evaluate(
            composed.program, db, point_result.engine_options()
        ),
    )
    reference = evaluate(point, db)
    assert got.answers() == reference.answers()
    print()
    print(f"{len(result.answers(db))} assemblies shippable; assembly 7:",
          "yes" if got.answers() else "no")


if __name__ == "__main__":
    main()
