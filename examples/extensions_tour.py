"""A tour of the section-6 extensions this library implements.

The paper closes with a research agenda: generalize to negation and
evaluable functions, detect subsumption by other rules, and explore
transformations that add or delete body literals.  This script walks
each implemented answer with a small runnable scenario:

1. θ-subsumption deletion;
2. unfolding (literal-level transformation);
3. stratified negation;
4. comparison built-ins;
5. the tabled top-down evaluator vs Magic Sets (the two classic routes
   to goal direction the bottom-up framing competes with).

Run:  python examples/extensions_tour.py
"""

from repro import Database, evaluate, optimize, parse
from repro.core import delete_subsumed, theta_subsumes
from repro.datalog import parse_rule
from repro.engine import evaluate_topdown
from repro.rewriting import magic_sets
from repro.workloads.graphs import chain


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    banner("1. θ-subsumption: 'subsumption of a rule by other rules'")
    general = parse_rule("reachable(X) :- edge(X, Y).")
    special = parse_rule("reachable(X) :- edge(X, Y), audited(Y, Z).")
    print(f"{general}\n{special}")
    print(f"-> first subsumes second: {theta_subsumes(general, special)}")
    program = parse(
        """
        reachable(X) :- edge(X, Y).
        reachable(X) :- edge(X, Y), audited(Y, Z).
        ?- reachable(X).
        """
    )
    trimmed, deleted = delete_subsumed(program)
    print(f"-> delete_subsumed removed {len(deleted)} rule(s); kept:")
    print(trimmed)

    banner("2. Unfolding: splice single-rule predicates into consumers")
    program = parse(
        """
        alert(X) :- risky(X, Y).
        risky(X, Y) :- transfer(X, Y), flagged(Y).
        ?- alert(X).
        """
    )
    result = optimize(program)
    print(result.final)
    print(f"-> unfolded predicates: {result.unfolded}")

    banner("3. Stratified negation")
    program = parse(
        """
        covered(X) :- endpoint(X), scan(X, R).
        gap(X) :- endpoint(X), not covered(X).
        ?- gap(X).
        """
    )
    db = Database.from_dict(
        {"endpoint": [(i,) for i in range(5)], "scan": [(0, 1), (3, 2)]}
    )
    print(program)
    print(f"-> gaps: {sorted(evaluate(program, db).answers())}")

    banner("4. Comparison built-ins (evaluable predicates)")
    program = parse(
        """
        hop_up(X, Y) :- edge(X, Y), lt(X, Y).
        climb(X, Y) :- hop_up(X, Y).
        climb(X, Y) :- hop_up(X, Z), climb(Z, Y).
        ?- climb(0, Y).
        """
    )
    db = Database.from_dict({"edge": [(0, 3), (3, 1), (3, 5), (5, 9), (9, 2)]})
    print(program)
    print(f"-> strictly-increasing reachability from 0: {sorted(evaluate(program, db).answers())}")

    banner("5. Goal direction: unrestricted vs Magic Sets vs tabling")
    program = parse(
        """
        tc(X, Y) :- edge(X, Y).
        tc(X, Y) :- edge(X, Z), tc(Z, Y).
        ?- tc(90, Y).
        """
    )
    db = Database.from_dict({"edge": chain(100)})
    plain = evaluate(program, db)
    magic = evaluate(magic_sets(program).program, db)
    tabled = evaluate_topdown(program, db)
    assert plain.answers() == magic.answers() == tabled.answers
    print(f"answers from node 90 on a 100-chain: {len(plain.answers())}")
    print(f"unrestricted bottom-up: {plain.stats.facts_derived} facts derived")
    print(f"magic sets:             {magic.stats.facts_derived} facts derived")
    print(f"tabled top-down:        {tabled.stats.facts_derived} facts derived")


if __name__ == "__main__":
    main()
