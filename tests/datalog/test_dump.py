"""Tests for database serialization round-trips."""

import io

import pytest

from repro.datalog import Database, ValidationError
from repro.datalog.dump import (
    dump_database,
    dumps_database,
    load_database,
    loads_database,
)


class TestRoundTrip:
    def test_integers(self):
        db = Database.from_dict({"edge": [(1, 2), (2, 3)]})
        assert loads_database(dumps_database(db)) == db

    def test_strings(self):
        db = Database.from_dict({"likes": [("ann", "bob")]})
        assert loads_database(dumps_database(db)) == db

    def test_awkward_strings_quoted(self):
        db = Database.from_dict({"p": [("X", "has space"), ("123", "UPPER")]})
        text = dumps_database(db)
        assert "'X'" in text and "'has space'" in text
        assert loads_database(text) == db

    def test_arity_zero(self):
        db = Database()
        db.ensure("flag", 0).add(())
        text = dumps_database(db)
        assert text.strip() == "flag."
        assert loads_database(text).rows("flag") == {()}

    def test_mixed_relations_sorted(self):
        db = Database.from_dict({"b": [(2,)], "a": [(1,)]})
        lines = dumps_database(db).splitlines()
        assert lines == ["a(1).", "b(2)."]

    def test_predicate_filter(self):
        db = Database.from_dict({"a": [(1,)], "b": [(2,)]})
        assert "b(" not in dumps_database(db, predicates=["a"])

    def test_streams(self):
        db = Database.from_dict({"e": [(1, 2)]})
        buf = io.StringIO()
        dump_database(db, buf)
        buf.seek(0)
        assert load_database(buf) == db

    def test_empty_database(self):
        assert dumps_database(Database()) == ""
        assert loads_database("") == Database()


class TestValidation:
    def test_rules_rejected(self):
        with pytest.raises(ValidationError):
            loads_database("p(X) :- q(X).")

    def test_query_rejected(self):
        with pytest.raises(ValidationError):
            loads_database("?- p(X).")


class TestShellSave:
    def test_save_and_reload(self, tmp_path):
        from tests.test_shell import run

        target = tmp_path / "facts.dl"
        output = run(["edge(1, 2).", f".save {target}"])
        assert "saved 1 fact(s)" in output
        assert loads_database(target.read_text()).rows("edge") == {(1, 2)}

    def test_save_usage(self):
        from tests.test_shell import run

        assert "usage: .save" in run([".save"])
