"""Tests for the paper-style pretty printer."""

from repro.datalog import parse, parse_rule
from repro.datalog.pretty import diff_programs, paper_atom, paper_rule, render
from repro.core import adorn, optimize
from repro.workloads.paper_examples import example1_program


class TestPaperAtoms:
    def test_adorned_name_caret(self):
        a = parse("a@nd(X) :- p(X, Y). ?- a@nd(X).").rules[0].head
        assert paper_atom(a) == "a^nd(X)"

    def test_plain_name_untouched(self):
        a = parse_rule("p(X, 1) :- e(X).").head
        assert paper_atom(a) == "p(X, 1)"

    def test_bf_suffix_untouched(self):
        a = parse("tc@bf(X, Y) :- e(X, Y). ?- tc@bf(X, Y).").rules[0].head
        assert paper_atom(a) == "tc@bf(X, Y)"

    def test_arity_zero(self):
        a = parse("b :- e(X). ?- b.").rules[0].head
        assert paper_atom(a) == "b"


class TestPaperRules:
    def test_rule(self):
        r = parse("a@nd(X) :- p(X, Y). ?- a@nd(X).").rules[0]
        assert paper_rule(r) == "a^nd(X) :- p(X, Y)."

    def test_negation(self):
        r = parse_rule("p(X) :- n(X), not q(X).")
        assert paper_rule(r) == "p(X) :- n(X), not q(X)."

    def test_fact(self):
        r = parse_rule("f(1, 2).")
        assert paper_rule(r) == "f(1, 2)."


class TestRender:
    def test_paper_style(self):
        adorned = adorn(example1_program())
        text = render(adorned)
        assert "a^nd" in text and "@" not in text
        assert text.endswith("?- query^n(X).")

    def test_plain_style(self):
        adorned = adorn(example1_program())
        text = render(adorned, style="plain")
        assert "a@nd" in text and "^" not in text

    def test_alignment(self):
        adorned = adorn(example1_program())
        lines = render(adorned).splitlines()
        rule_lines = [line for line in lines if ":-" in line]
        positions = {line.index(":-") for line in rule_lines}
        assert len(positions) == 1

    def test_plain_program_renders(self):
        text = render(example1_program())
        assert "query(X)" in text

    def test_unknown_style_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            render(example1_program(), style="latex")


class TestDiff:
    def test_deleted_rules_marked(self):
        result = optimize(example1_program())
        diff = diff_programs(result.projected, result.final)
        assert any(line.startswith("- ") for line in diff.splitlines())

    def test_common_rules_unmarked(self):
        before = parse("p(X) :- e(X). p(X) :- f(X). ?- p(X).")
        after = parse("p(X) :- e(X). ?- p(X).")
        diff = diff_programs(before, after)
        assert any(line.startswith("  ") for line in diff.splitlines())
        assert any(line.startswith("- ") for line in diff.splitlines())

    def test_added_rules_marked(self):
        before = parse("p(X) :- e(X). ?- p(X).")
        after = parse("p(X) :- e(X). p(X) :- f(X). ?- p(X).")
        diff = diff_programs(before, after)
        assert "+ p(X) :- f(X)." in diff

    def test_identity_diff_all_common(self):
        p = example1_program()
        diff = diff_programs(p, p)
        assert all(line.startswith("  ") for line in diff.splitlines())
