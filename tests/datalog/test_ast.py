"""Unit tests for repro.datalog.ast."""

import pytest

from repro.datalog import (
    ArityError,
    Program,
    SafetyError,
    ValidationError,
    atom,
    rule,
)
from repro.datalog.terms import Constant, Variable


class TestAtom:
    def test_smart_constructor(self):
        a = atom("p", "X", 3, "foo")
        assert a.predicate == "p"
        assert a.args == (Variable("X"), Constant(3), Constant("foo"))

    def test_arity(self):
        assert atom("p").arity == 0
        assert atom("p", "X", "Y").arity == 2

    def test_variables_in_order_no_dups(self):
        a = atom("p", "X", "Y", "X", 1)
        assert a.variables() == (Variable("X"), Variable("Y"))

    def test_constants(self):
        a = atom("p", 1, "X", 2, 1)
        assert a.constants() == (Constant(1), Constant(2))

    def test_is_ground(self):
        assert atom("p", 1, 2).is_ground()
        assert not atom("p", 1, "X").is_ground()
        assert atom("p").is_ground()

    def test_substitute(self):
        a = atom("p", "X", "Y")
        out = a.substitute({Variable("X"): Constant(1)})
        assert out == atom("p", 1, "Y")

    def test_substitute_leaves_constants(self):
        a = atom("p", 5, "X")
        out = a.substitute({Variable("X"): Variable("Z")})
        assert out == atom("p", 5, "Z")

    def test_as_fact(self):
        assert atom("p", 1, "x").as_fact() == (1, "x")

    def test_as_fact_requires_ground(self):
        with pytest.raises(ValidationError):
            atom("p", "X").as_fact()

    def test_str(self):
        assert str(atom("p", "X", 1)) == "p(X, 1)"
        assert str(atom("b")) == "b"

    def test_rename_predicate(self):
        assert atom("p", "X").rename_predicate("q") == atom("q", "X")


class TestRule:
    def test_variables_head_first(self):
        r = rule(atom("h", "A", "B"), atom("p", "C", "A"))
        assert r.variables() == (Variable("A"), Variable("B"), Variable("C"))

    def test_is_safe(self):
        assert rule(atom("h", "X"), atom("p", "X", "Y")).is_safe()
        assert not rule(atom("h", "X", "Z"), atom("p", "X", "Y")).is_safe()

    def test_fact_rule_is_safe(self):
        assert rule(atom("h", 1)).is_safe()

    def test_is_fact(self):
        assert rule(atom("h", 1, 2)).is_fact()
        assert not rule(atom("h", "X")).is_fact()
        assert not rule(atom("h", 1), atom("p", 1)).is_fact()

    def test_substitute(self):
        r = rule(atom("h", "X"), atom("p", "X", "Y"))
        out = r.substitute({Variable("X"): Constant(1)})
        assert out == rule(atom("h", 1), atom("p", 1, "Y"))

    def test_rename_apart(self):
        r = rule(atom("h", "X"), atom("p", "X", "Y"))
        out = r.rename_apart("_1")
        assert out == rule(atom("h", "X_1"), atom("p", "X_1", "Y_1"))

    def test_predicates(self):
        r = rule(atom("h", "X"), atom("p", "X"), atom("q", "X"))
        assert r.predicates() == {"h", "p", "q"}

    def test_str(self):
        r = rule(atom("h", "X"), atom("p", "X", "Y"))
        assert str(r) == "h(X) :- p(X, Y)."
        assert str(rule(atom("f", 1))) == "f(1)."


class TestProgram:
    def build(self):
        return Program(
            (
                rule(atom("q", "X"), atom("a", "X", "Y")),
                rule(atom("a", "X", "Y"), atom("p", "X", "Y")),
            ),
            atom("q", "X"),
        )

    def test_idb_edb_split(self):
        p = self.build()
        assert p.idb_predicates() == {"q", "a"}
        assert p.edb_predicates() == {"p"}

    def test_predicates(self):
        assert self.build().predicates() == {"q", "a", "p"}

    def test_arities(self):
        assert self.build().arities() == {"q": 1, "a": 2, "p": 2}

    def test_arity_conflict_detected(self):
        p = Program(
            (
                rule(atom("q", "X"), atom("p", "X")),
                rule(atom("q", "X"), atom("p", "X", "Y")),
            )
        )
        with pytest.raises(ArityError):
            p.arities()

    def test_validate_safety(self):
        p = Program((rule(atom("h", "X", "Z"), atom("p", "X")),))
        with pytest.raises(SafetyError):
            p.validate()

    def test_validate_ok_chains(self):
        p = self.build()
        assert p.validate() is p

    def test_rules_for(self):
        p = self.build()
        assert len(p.rules_for("a")) == 1
        assert p.rules_for("nothing") == ()

    def test_body_occurrences(self):
        p = self.build()
        occs = list(p.body_occurrences("p"))
        assert occs == [(1, 0, atom("p", "X", "Y"))]

    def test_without_rule(self):
        p = self.build()
        assert len(p.without_rule(0)) == 1
        assert p.without_rule(0).rules[0].head.predicate == "a"

    def test_without_rules(self):
        p = self.build()
        assert len(p.without_rules([0, 1])) == 0

    def test_add_rules(self):
        p = self.build().add_rules([rule(atom("a", "X", "X"), atom("s", "X"))])
        assert len(p) == 3

    def test_with_query(self):
        p = self.build().with_query(None)
        assert p.query is None

    def test_iteration_and_str(self):
        p = self.build()
        assert len(list(p)) == 2
        assert "?- q(X)." in str(p)
