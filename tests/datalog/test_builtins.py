"""Tests for evaluable comparison predicates (section-6 extension)."""

import pytest

from repro.datalog import Database, ValidationError, parse
from repro.datalog.builtins import (
    eval_builtin,
    has_builtins,
    is_builtin,
    negated_builtin,
)
from repro.engine import EngineOptions, evaluate


class TestEvalBuiltin:
    @pytest.mark.parametrize(
        "name,a,b,expected",
        [
            ("lt", 1, 2, True),
            ("lt", 2, 2, False),
            ("le", 2, 2, True),
            ("gt", 3, 2, True),
            ("ge", 2, 3, False),
            ("eq", "x", "x", True),
            ("neq", "x", "y", True),
            ("neq", 1, 1, False),
        ],
    )
    def test_semantics(self, name, a, b, expected):
        assert eval_builtin(name, a, b) is expected

    def test_mixed_types_order_false_not_error(self):
        assert eval_builtin("lt", 1, "a") is False
        assert eval_builtin("ge", "a", 1) is False

    def test_mixed_types_equality(self):
        assert eval_builtin("eq", 1, "1") is False
        assert eval_builtin("neq", 1, "1") is True

    def test_string_ordering(self):
        assert eval_builtin("lt", "abc", "abd") is True

    def test_is_builtin(self):
        assert is_builtin("lt") and is_builtin("neq")
        assert not is_builtin("edge")

    def test_negated_builtin_complement(self):
        for name in ("lt", "le", "gt", "ge", "eq", "neq"):
            comp = negated_builtin(name)
            assert eval_builtin(name, 1, 2) != eval_builtin(comp, 1, 2)
            assert eval_builtin(name, 2, 2) != eval_builtin(comp, 2, 2)


class TestValidation:
    def test_unbound_builtin_variable_rejected(self):
        with pytest.raises(ValidationError):
            parse("q(X) :- e(X), lt(X, Y). ?- q(X).").validate()

    def test_negated_builtin_rejected_with_hint(self):
        with pytest.raises(ValidationError, match="ge"):
            parse("q(X) :- e(X, Y), not lt(X, Y). ?- q(X).").validate()

    def test_builtin_as_head_rejected(self):
        with pytest.raises(ValidationError):
            parse("lt(X, Y) :- e(X, Y). ?- lt(X, Y).").validate()

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValidationError):
            parse("q(X) :- e(X), eq(X, X, X). ?- q(X).").validate()

    def test_builtins_not_edb(self):
        p = parse("q(X) :- e(X, Y), lt(X, Y). ?- q(X).")
        assert p.edb_predicates() == {"e"}

    def test_has_builtins(self):
        assert has_builtins(parse("q(X) :- e(X, Y), lt(X, Y)."))
        assert not has_builtins(parse("q(X) :- e(X, Y)."))


class TestEvaluation:
    def test_filter_semantics(self):
        p = parse("small(X, Y) :- pair(X, Y), lt(X, Y). ?- small(X, Y).")
        db = Database.from_dict({"pair": [(1, 2), (2, 1), (3, 3)]})
        assert evaluate(p, db).answers() == {(1, 2)}

    def test_neq_self_join(self):
        p = parse("distinct(X, Y) :- n(X), n(Y), neq(X, Y). ?- distinct(X, Y).")
        db = Database.from_dict({"n": [(1,), (2,)]})
        assert evaluate(p, db).answers() == {(1, 2), (2, 1)}

    def test_builtin_in_recursion(self):
        # increasing paths: each hop must go to a larger node id
        p = parse(
            """
            up_path(X, Y) :- edge(X, Y), lt(X, Y).
            up_path(X, Y) :- edge(X, Z), lt(X, Z), up_path(Z, Y).
            ?- up_path(0, Y).
            """
        )
        db = Database.from_dict({"edge": [(0, 2), (2, 1), (2, 4), (1, 3)]})
        assert evaluate(p, db).answers() == {(2,), (4,)}

    def test_constants_in_builtins(self):
        p = parse("big(X) :- n(X), ge(X, 10). ?- big(X).")
        db = Database.from_dict({"n": [(5,), (10,), (20,)]})
        assert evaluate(p, db).answers() == {(10,), (20,)}

    def test_naive_agrees(self):
        p = parse(
            """
            up_path(X, Y) :- edge(X, Y), lt(X, Y).
            up_path(X, Y) :- edge(X, Z), lt(X, Z), up_path(Z, Y).
            ?- up_path(X, Y).
            """
        )
        db = Database.from_dict({"edge": [(0, 2), (2, 1), (2, 4), (1, 3)]})
        semi = evaluate(p, db).answers()
        naive = evaluate(p, db, EngineOptions(strategy="naive")).answers()
        assert semi == naive

    def test_builtin_with_negation(self):
        p = parse(
            """
            ok(X) :- n(X), gt(X, 0), not banned(X).
            ?- ok(X).
            """
        )
        db = Database.from_dict({"n": [(-1,), (1,), (2,)], "banned": [(2,)]})
        assert evaluate(p, db).answers() == {(1,)}


class TestOptimizerWithBuiltins:
    def test_pipeline_preserves_answers(self):
        from repro.core import optimize
        from repro.workloads.edb import random_edb

        p = parse(
            """
            q(X) :- r(X, Y, D), gt(D, 5).
            r(X, Y, D) :- e(X, Y), w(Y, D).
            r(X, Y, D) :- e(X, Z), r(Z, Y, D).
            ?- q(X).
            """
        )
        result = optimize(p)
        assert result.deletion is None  # conservatively skipped
        for seed in range(3):
            db = random_edb(p, rows=15, domain=8, seed=seed)
            assert result.answers(db) == result.reference_answers(db)

    def test_deletion_refuses_builtins(self):
        from repro.core import adorn, delete_rules, push_projections
        from repro.datalog import TransformError

        p = parse(
            """
            q(X) :- e(X, Y), lt(X, Y).
            ?- q(X).
            """
        )
        projected = push_projections(adorn(p))
        with pytest.raises(TransformError):
            delete_rules(projected)

    def test_magic_refuses_builtins(self):
        from repro.datalog import TransformError
        from repro.rewriting import magic_sets

        p = parse(
            """
            tc(X, Y) :- e(X, Y), lt(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
            ?- tc(0, Y).
            """
        )
        with pytest.raises(TransformError):
            magic_sets(p)
