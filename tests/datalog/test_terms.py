"""Unit tests for repro.datalog.terms."""

import pytest

from repro.datalog.terms import (
    Constant,
    FreshVariables,
    Variable,
    fresh_variable,
    term,
)


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")

    def test_hashable(self):
        assert len({Variable("X"), Variable("X"), Variable("Y")}) == 2

    def test_str(self):
        assert str(Variable("Abc")) == "Abc"

    def test_immutable(self):
        with pytest.raises(Exception):
            Variable("X").name = "Y"


class TestConstant:
    def test_equality_by_value(self):
        assert Constant(1) == Constant(1)
        assert Constant(1) != Constant(2)

    def test_int_and_str_distinct(self):
        assert Constant(1) != Constant("1")

    def test_str(self):
        assert str(Constant("abc")) == "abc"
        assert str(Constant(7)) == "7"

    def test_hashable(self):
        assert len({Constant(1), Constant(1), Constant("a")}) == 2


class TestTermConstructor:
    def test_uppercase_is_variable(self):
        assert term("X") == Variable("X")
        assert term("Foo") == Variable("Foo")

    def test_underscore_is_variable(self):
        assert term("_z") == Variable("_z")

    def test_lowercase_is_constant(self):
        assert term("abc") == Constant("abc")

    def test_int_is_constant(self):
        assert term(3) == Constant(3)

    def test_passthrough(self):
        v = Variable("X")
        c = Constant(1)
        assert term(v) is v
        assert term(c) is c


class TestFreshVariables:
    def test_global_fresh_distinct(self):
        assert fresh_variable() != fresh_variable()

    def test_deterministic_sequence(self):
        supply = FreshVariables()
        assert supply.take() == Variable("_E1")
        assert supply.take() == Variable("_E2")

    def test_avoids_collisions(self):
        supply = FreshVariables(avoid=[Variable("_E1")])
        assert supply.take() == Variable("_E2")

    def test_custom_prefix(self):
        supply = FreshVariables(prefix="_B")
        assert supply.take() == Variable("_B1")

    def test_self_avoidance(self):
        supply = FreshVariables()
        names = {supply.take().name for _ in range(50)}
        assert len(names) == 50
