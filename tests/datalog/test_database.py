"""Unit tests for relations, indexes, and databases."""

import pytest

from repro.datalog import ArityError, Database, Relation, ValidationError, atom


class TestRelation:
    def test_add_and_contains(self):
        r = Relation(2)
        assert r.add((1, 2))
        assert (1, 2) in r
        assert (2, 1) not in r

    def test_add_duplicate_returns_false(self):
        r = Relation(2, [(1, 2)])
        assert not r.add((1, 2))
        assert len(r) == 1

    def test_arity_enforced(self):
        r = Relation(2)
        with pytest.raises(ArityError):
            r.add((1, 2, 3))

    def test_update_counts_new(self):
        r = Relation(1)
        assert r.update([(1,), (2,), (1,)]) == 2

    def test_index_lookup(self):
        r = Relation(2, [(1, 2), (1, 3), (2, 3)])
        assert sorted(r.lookup((0,), (1,))) == [(1, 2), (1, 3)]
        assert r.lookup((1,), (3,)) and len(r.lookup((1,), (3,))) == 2
        assert r.lookup((0, 1), (2, 3)) == [(2, 3)]

    def test_empty_positions_returns_all(self):
        r = Relation(2, [(1, 2), (2, 3)])
        assert len(r.lookup((), ())) == 2

    def test_index_maintained_incrementally(self):
        r = Relation(2, [(1, 2)])
        r.index_for((0,))
        r.add((1, 3))
        assert sorted(r.lookup((0,), (1,))) == [(1, 2), (1, 3)]

    def test_missing_key_empty(self):
        r = Relation(2, [(1, 2)])
        assert r.lookup((0,), (9,)) == []

    def test_copy_independent(self):
        r = Relation(1, [(1,)])
        c = r.copy()
        c.add((2,))
        assert len(r) == 1 and len(c) == 2

    def test_equality(self):
        assert Relation(1, [(1,)]) == Relation(1, [(1,)])
        assert Relation(1, [(1,)]) != Relation(1, [(2,)])

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Relation(1))


class TestDatabase:
    def test_from_dict(self):
        db = Database.from_dict({"edge": [(1, 2), (2, 3)]})
        assert db.rows("edge") == {(1, 2), (2, 3)}

    def test_from_dict_rejects_empty(self):
        with pytest.raises(ValidationError):
            Database.from_dict({"edge": []})

    def test_from_facts(self):
        db = Database.from_facts([atom("p", 1), atom("q", 2, 3)])
        assert db.rows("p") == {(1,)}
        assert db.rows("q") == {(2, 3)}

    def test_ensure_creates_empty(self):
        db = Database()
        rel = db.ensure("p", 2)
        assert len(rel) == 0 and "p" in db

    def test_ensure_arity_conflict(self):
        db = Database.from_dict({"p": [(1,)]})
        with pytest.raises(ArityError):
            db.ensure("p", 2)

    def test_missing_relation_empty_rows(self):
        assert Database().rows("nope") == frozenset()

    def test_add_fact_and_add(self):
        db = Database()
        assert db.add("p", 1, 2)
        assert not db.add_fact(atom("p", 1, 2))

    def test_facts_iteration(self):
        db = Database.from_dict({"p": [(1,)], "q": [(2, 3)]})
        assert set(db.facts()) == {("p", (1,)), ("q", (2, 3))}

    def test_fact_count(self):
        db = Database.from_dict({"p": [(1,), (2,)], "q": [(3, 4)]})
        assert db.fact_count() == 3

    def test_active_domain(self):
        db = Database.from_dict({"p": [(1, "a")]})
        assert db.active_domain() == {1, "a"}

    def test_copy_independent(self):
        db = Database.from_dict({"p": [(1,)]})
        c = db.copy()
        c.add("p", 2)
        assert db.rows("p") == {(1,)}

    def test_merged_with(self):
        a = Database.from_dict({"p": [(1,)]})
        b = Database.from_dict({"p": [(2,)], "q": [(3, 4)]})
        merged = a.merged_with(b)
        assert merged.rows("p") == {(1,), (2,)}
        assert merged.rows("q") == {(3, 4)}
        assert a.rows("p") == {(1,)}

    def test_restrict(self):
        db = Database.from_dict({"p": [(1,)], "q": [(2,)]})
        assert db.restrict(["p"]).predicates() == {"p"}

    def test_equality_ignores_empty_relations(self):
        a = Database.from_dict({"p": [(1,)]})
        b = Database.from_dict({"p": [(1,)]})
        b.ensure("q", 2)
        assert a == b
