"""Unit tests for matching, unification, and skolemization."""

from repro.datalog import atom, parse_rule
from repro.datalog.terms import Constant, Variable
from repro.datalog.unify import (
    compose,
    match,
    match_args,
    skolem_constant,
    skolemize,
    unify,
)

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


class TestMatch:
    def test_simple(self):
        s = match(atom("p", "X", "Y"), atom("p", 1, 2))
        assert s == {X: Constant(1), Y: Constant(2)}

    def test_repeated_variable_consistent(self):
        assert match(atom("p", "X", "X"), atom("p", 1, 1)) is not None
        assert match(atom("p", "X", "X"), atom("p", 1, 2)) is None

    def test_constant_selection(self):
        assert match(atom("p", 1, "Y"), atom("p", 1, 2)) == {Y: Constant(2)}
        assert match(atom("p", 1, "Y"), atom("p", 3, 2)) is None

    def test_predicate_mismatch(self):
        assert match(atom("p", "X"), atom("q", 1)) is None

    def test_arity_mismatch(self):
        assert match(atom("p", "X"), atom("p", 1, 2)) is None

    def test_extends_given_substitution(self):
        s = match(atom("p", "X"), atom("p", 1), {Y: Constant(9)})
        assert s == {X: Constant(1), Y: Constant(9)}

    def test_respects_prior_binding(self):
        assert match(atom("p", "X"), atom("p", 2), {X: Constant(1)}) is None
        assert match(atom("p", "X"), atom("p", 1), {X: Constant(1)}) is not None


class TestMatchArgs:
    def test_raw_values(self):
        s = match_args((X, Constant(3)), (7, 3))
        assert s == {X: Constant(7)}

    def test_constant_mismatch(self):
        assert match_args((Constant(3),), (4,)) is None

    def test_length_mismatch(self):
        assert match_args((X,), (1, 2)) is None


class TestUnify:
    def test_var_to_constant(self):
        s = unify(atom("p", "X", 2), atom("p", 1, "Y"))
        assert s == {X: Constant(1), Y: Constant(2)}

    def test_var_to_var_chain_flattened(self):
        s = unify(atom("p", "X", "X"), atom("p", "Y", 3))
        # X ~ Y ~ 3: all resolve to 3
        assert s[X] == Constant(3)
        assert s[Y] == Constant(3)

    def test_constant_clash(self):
        assert unify(atom("p", 1), atom("p", 2)) is None

    def test_same_atom(self):
        assert unify(atom("p", "X"), atom("p", "X")) == {}

    def test_idempotent(self):
        s = unify(atom("p", "X", "Y", "Y"), atom("p", "Y", "Z", 5))
        a = atom("q", "X", "Y", "Z").substitute(s)
        assert a.substitute(s) == a


class TestCompose:
    def test_pipeline_order(self):
        first = {X: Y}
        second = {Y: Constant(1)}
        assert compose(first, second)[X] == Constant(1)

    def test_second_only_bindings_kept(self):
        out = compose({X: Constant(1)}, {Y: Constant(2)})
        assert out == {X: Constant(1), Y: Constant(2)}


class TestSkolemize:
    def test_distinct_constants_per_variable(self):
        r = parse_rule("a(X) :- p(X, Z), a(Z).")
        head, body, subst = skolemize(r)
        assert head.is_ground()
        assert all(b.is_ground() for b in body)
        values = {t.value for t in subst.values()}
        assert len(values) == 2  # X and Z frozen apart

    def test_skolem_constants_marked(self):
        c = skolem_constant(X)
        assert str(c.value).startswith("$sk_")

    def test_shared_variable_shared_constant(self):
        r = parse_rule("a(X) :- p(X, Z), q(Z).")
        _, body, _ = skolemize(r)
        assert body[0].args[1] == body[1].args[0]
