"""Unit tests for static program analysis."""

from repro.datalog import parse
from repro.datalog.analysis import (
    analyze,
    dependency_graph,
    is_chain_program,
    is_chain_rule,
    reachable_predicates,
    recursive_predicates,
    strongly_connected_components,
    undefined_body_predicates,
)
from repro.datalog.parser import parse_rule


TC = parse(
    """
    tc(X, Y) :- edge(X, Y).
    tc(X, Y) :- edge(X, Z), tc(Z, Y).
    ?- tc(X, Y).
    """
)

MUTUAL = parse(
    """
    even(X) :- zero(X).
    even(X) :- succ(Y, X), odd(Y).
    odd(X) :- succ(Y, X), even(X).
    ?- even(X).
    """
)


class TestDependencyGraph:
    def test_tc(self):
        g = dependency_graph(TC)
        assert g == {"tc": frozenset({"edge", "tc"})}

    def test_mutual(self):
        g = dependency_graph(MUTUAL)
        assert g["even"] == {"zero", "succ", "odd"}
        assert g["odd"] == {"succ", "even"}


class TestSCC:
    def test_self_loop(self):
        sccs = strongly_connected_components({"a": frozenset({"a"})})
        assert frozenset({"a"}) in sccs

    def test_mutual_component(self):
        g = dependency_graph(MUTUAL)
        sccs = strongly_connected_components(g)
        assert frozenset({"even", "odd"}) in sccs

    def test_reverse_topological_order(self):
        g = {"a": frozenset({"b"}), "b": frozenset({"c"}), "c": frozenset()}
        sccs = strongly_connected_components(g)
        order = [next(iter(s)) for s in sccs]
        assert order.index("c") < order.index("a")


class TestRecursion:
    def test_tc_recursive(self):
        assert recursive_predicates(TC) == {"tc"}

    def test_mutual_recursive(self):
        assert recursive_predicates(MUTUAL) == {"even", "odd"}

    def test_nonrecursive(self):
        p = parse("q(X) :- p(X, Y). ?- q(X).")
        assert recursive_predicates(p) == frozenset()


class TestReachability:
    def test_from_query(self):
        p = parse(
            """
            q(X) :- a(X).
            a(X) :- b(X, Y).
            orphan(X) :- c(X).
            ?- q(X).
            """
        )
        assert reachable_predicates(p, ["q"]) == {"q", "a", "b"}

    def test_undefined_body_predicates(self):
        p = parse("q(X) :- ghost(X). ?- q(X).")
        assert undefined_body_predicates(p) == {"ghost"}
        assert undefined_body_predicates(p, edb=["ghost"]) == frozenset()


class TestChainDetection:
    def test_chain_rule(self):
        assert is_chain_rule(parse_rule("p(X, Y) :- a(X, Z), b(Z, Y)."))
        assert is_chain_rule(parse_rule("p(X, Y) :- a(X, Y)."))

    def test_long_chain(self):
        assert is_chain_rule(
            parse_rule("p(X, Y) :- a(X, Z1), b(Z1, Z2), c(Z2, Z3), d(Z3, Y).")
        )

    def test_not_chain_broken_link(self):
        assert not is_chain_rule(parse_rule("p(X, Y) :- a(X, Z), b(W, Y)."))

    def test_not_chain_wrong_arity(self):
        assert not is_chain_rule(parse_rule("p(X, Y) :- a(X, Y, Z), b(Z, Y)."))
        assert not is_chain_rule(parse_rule("p(X) :- a(X, X)."))

    def test_not_chain_head_vars_equal(self):
        assert not is_chain_rule(parse_rule("p(X, X) :- a(X, X)."))

    def test_not_chain_repeated_middle(self):
        assert not is_chain_rule(parse_rule("p(X, Y) :- a(X, Z), b(Z, Z), c(Z, Y)."))

    def test_not_chain_empty_body(self):
        assert not is_chain_rule(parse_rule("p(X, Y) :- q(Y, X)."))

    def test_chain_program(self):
        assert is_chain_program(TC)
        assert not is_chain_program(MUTUAL)


class TestAnalyzeBundle:
    def test_bundle_fields(self):
        info = analyze(TC)
        assert info.recursive == {"tc"}
        assert info.idb == {"tc"}
        assert info.edb == {"edge"}
        assert info.reachable_from_query == {"tc", "edge"}
        assert info.is_derived("tc") and not info.is_derived("edge")
