"""Unit tests for static program analysis."""

from repro.datalog import parse
from repro.datalog.analysis import (
    analyze,
    component_depths,
    condensation,
    dependency_graph,
    is_chain_program,
    is_chain_rule,
    reachable_predicates,
    recursive_predicates,
    strongly_connected_components,
    undefined_body_predicates,
)
from repro.datalog.parser import parse_rule


TC = parse(
    """
    tc(X, Y) :- edge(X, Y).
    tc(X, Y) :- edge(X, Z), tc(Z, Y).
    ?- tc(X, Y).
    """
)

MUTUAL = parse(
    """
    even(X) :- zero(X).
    even(X) :- succ(Y, X), odd(Y).
    odd(X) :- succ(Y, X), even(X).
    ?- even(X).
    """
)


class TestDependencyGraph:
    def test_tc(self):
        g = dependency_graph(TC)
        assert g == {"tc": frozenset({"edge", "tc"})}

    def test_mutual(self):
        g = dependency_graph(MUTUAL)
        assert g["even"] == {"zero", "succ", "odd"}
        assert g["odd"] == {"succ", "even"}


class TestSCC:
    def test_self_loop(self):
        sccs = strongly_connected_components({"a": frozenset({"a"})})
        assert frozenset({"a"}) in sccs

    def test_mutual_component(self):
        g = dependency_graph(MUTUAL)
        sccs = strongly_connected_components(g)
        assert frozenset({"even", "odd"}) in sccs

    def test_reverse_topological_order(self):
        g = {"a": frozenset({"b"}), "b": frozenset({"c"}), "c": frozenset()}
        sccs = strongly_connected_components(g)
        order = [next(iter(s)) for s in sccs]
        assert order.index("c") < order.index("a")


class TestRecursion:
    def test_tc_recursive(self):
        assert recursive_predicates(TC) == {"tc"}

    def test_mutual_recursive(self):
        assert recursive_predicates(MUTUAL) == {"even", "odd"}

    def test_nonrecursive(self):
        p = parse("q(X) :- p(X, Y). ?- q(X).")
        assert recursive_predicates(p) == frozenset()


class TestReachability:
    def test_from_query(self):
        p = parse(
            """
            q(X) :- a(X).
            a(X) :- b(X, Y).
            orphan(X) :- c(X).
            ?- q(X).
            """
        )
        assert reachable_predicates(p, ["q"]) == {"q", "a", "b"}

    def test_undefined_body_predicates(self):
        p = parse("q(X) :- ghost(X). ?- q(X).")
        assert undefined_body_predicates(p) == {"ghost"}
        assert undefined_body_predicates(p, edb=["ghost"]) == frozenset()


class TestChainDetection:
    def test_chain_rule(self):
        assert is_chain_rule(parse_rule("p(X, Y) :- a(X, Z), b(Z, Y)."))
        assert is_chain_rule(parse_rule("p(X, Y) :- a(X, Y)."))

    def test_long_chain(self):
        assert is_chain_rule(
            parse_rule("p(X, Y) :- a(X, Z1), b(Z1, Z2), c(Z2, Z3), d(Z3, Y).")
        )

    def test_not_chain_broken_link(self):
        assert not is_chain_rule(parse_rule("p(X, Y) :- a(X, Z), b(W, Y)."))

    def test_not_chain_wrong_arity(self):
        assert not is_chain_rule(parse_rule("p(X, Y) :- a(X, Y, Z), b(Z, Y)."))
        assert not is_chain_rule(parse_rule("p(X) :- a(X, X)."))

    def test_not_chain_head_vars_equal(self):
        assert not is_chain_rule(parse_rule("p(X, X) :- a(X, X)."))

    def test_not_chain_repeated_middle(self):
        assert not is_chain_rule(parse_rule("p(X, Y) :- a(X, Z), b(Z, Z), c(Z, Y)."))

    def test_not_chain_empty_body(self):
        assert not is_chain_rule(parse_rule("p(X, Y) :- q(Y, X)."))

    def test_chain_program(self):
        assert is_chain_program(TC)
        assert not is_chain_program(MUTUAL)


class TestAnalyzeBundle:
    def test_bundle_fields(self):
        info = analyze(TC)
        assert info.recursive == {"tc"}
        assert info.idb == {"tc"}
        assert info.edb == {"edge"}
        assert info.reachable_from_query == {"tc", "edge"}
        assert info.is_derived("tc") and not info.is_derived("edge")


class TestCondensation:
    def test_self_loop_scc_drops_self_edge(self):
        # tc's SCC depends on itself (recursion) and on edge; the
        # condensation keeps only the cross-component edge
        info = analyze(TC)
        edges = condensation(info)
        tc_idx = next(i for i, scc in enumerate(info.sccs) if "tc" in scc)
        edge_idx = next(i for i, scc in enumerate(info.sccs) if "edge" in scc)
        assert edges[tc_idx] == frozenset({edge_idx})
        assert tc_idx not in edges[tc_idx]

    def test_edges_point_at_smaller_indexes(self):
        info = analyze(MUTUAL)
        for i, deps in condensation(info).items():
            assert all(j < i for j in deps)

    def test_mutual_recursion_is_one_component(self):
        info = analyze(MUTUAL)
        assert frozenset({"even", "odd"}) in info.sccs

    def test_rule_free_program_has_no_components(self):
        assert condensation(analyze(parse("?- p(X)."))) == {}


class TestComponentDepths:
    def test_chain_of_dependencies(self):
        # 0 <- 1 <- 2: depths 0, 1, 2
        edges = {0: frozenset(), 1: frozenset({0}), 2: frozenset({1})}
        assert component_depths(edges, [0, 1, 2]) == {0: 0, 1: 1, 2: 2}

    def test_restriction_to_within(self):
        # dependency on a component outside *within* does not add depth
        edges = {0: frozenset(), 1: frozenset({0}), 2: frozenset({1})}
        assert component_depths(edges, [1, 2]) == {1: 0, 2: 1}

    def test_diamond_takes_longest_path(self):
        edges = {
            0: frozenset(),
            1: frozenset({0}),
            2: frozenset({0, 1}),
            3: frozenset({1, 2}),
        }
        assert component_depths(edges, [0, 1, 2, 3]) == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_self_loop_component_depth(self):
        # a recursive SCC's self-edge is dropped by condensation, so a
        # lone self-recursive component sits at depth 0
        info = analyze(TC)
        edges = condensation(info)
        depths = component_depths(edges, range(len(info.sccs)))
        tc_idx = next(i for i, scc in enumerate(info.sccs) if "tc" in scc)
        edge_idx = next(i for i, scc in enumerate(info.sccs) if "edge" in scc)
        assert depths[edge_idx] == 0
        assert depths[tc_idx] == 1


class TestChainEdgeCases:
    def test_unit_chain_rule(self):
        assert is_chain_rule(parse_rule("p(X, Y) :- q(X, Y)."))

    def test_constant_in_head_not_chain(self):
        assert not is_chain_rule(parse_rule("p(1, Y) :- q(1, Y)."))

    def test_constant_in_body_not_chain(self):
        assert not is_chain_rule(parse_rule("p(X, Y) :- q(X, 3), r(3, Y)."))

    def test_chain_variable_reused_as_terminal(self):
        # Z closes back onto the opening variable: not a chain
        assert not is_chain_rule(parse_rule("p(X, Y) :- a(X, X), b(X, Y)."))

    def test_head_second_var_must_close_chain(self):
        assert not is_chain_rule(parse_rule("p(X, Y) :- a(X, Z), b(Z, W)."))

    def test_chain_program_with_fact_rule(self):
        # a fact has no body, so it cannot be a chain rule
        program = parse("p(1, 2).\np(X, Y) :- q(X, Y).\n?- p(X, Y).")
        assert not is_chain_program(program)

    def test_chain_program_unit_rules_only(self):
        program = parse("p(X, Y) :- q(X, Y).\nq(X, Y) :- r(X, Y).\n?- p(X, Y).")
        assert is_chain_program(program)
