"""Tests for negated literals in the AST, parser, and stratification.

Stratified negation is the section-6 extension direction ("generalize
the above results to ... negation"); these tests cover the substrate
half — the optimizer-side behaviour is in tests/core/test_negation_*.
"""

import pytest

from repro.datalog import SafetyError, ValidationError, atom, parse, parse_rule
from repro.datalog.analysis import (
    dependency_graph,
    is_stratified,
    negative_dependencies,
    stratify,
)
from repro.datalog.ast import Rule


class TestAst:
    def test_rule_with_negative(self):
        r = Rule(atom("p", "X"), (atom("n", "X"),), (atom("q", "X"),))
        assert r.negative == (atom("q", "X"),)
        assert str(r) == "p(X) :- n(X), not q(X)."

    def test_variables_include_negative(self):
        r = parse_rule("p(X) :- n(X, Y), not q(Y).")
        assert [v.name for v in r.variables()] == ["X", "Y"]

    def test_safety_negative_vars_must_be_positive_bound(self):
        safe = parse_rule("p(X) :- n(X, Y), not q(Y).")
        assert safe.is_safe()
        unsafe = parse_rule("p(X) :- n(X), not q(X, Y).")
        assert not unsafe.is_safe()

    def test_substitute_touches_negative(self):
        from repro.datalog.terms import Constant, Variable

        r = parse_rule("p(X) :- n(X), not q(X).")
        out = r.substitute({Variable("X"): Constant(1)})
        assert str(out) == "p(1) :- n(1), not q(1)."

    def test_predicates_include_negative(self):
        r = parse_rule("p(X) :- n(X), not q(X).")
        assert r.predicates() == {"p", "n", "q"}

    def test_program_has_negation(self):
        assert parse("p(X) :- n(X), not q(X).").has_negation()
        assert not parse("p(X) :- n(X).").has_negation()

    def test_arities_cover_negatives(self):
        p = parse("p(X) :- n(X), not q(X, X).")
        assert p.arities()["q"] == 2

    def test_edb_includes_negated_predicates(self):
        p = parse("p(X) :- n(X), not q(X). ?- p(X).")
        assert p.edb_predicates() == {"n", "q"}

    def test_validate_rejects_unsafe_negation(self):
        p = parse("p(X) :- n(X), not q(X, Y). ?- p(X).")
        with pytest.raises(SafetyError):
            p.validate()


class TestParser:
    def test_not_keyword(self):
        r = parse_rule("p(X) :- n(X), not q(X).")
        assert len(r.body) == 1 and len(r.negative) == 1

    def test_multiple_negations_interleaved(self):
        r = parse_rule("p(X) :- not a(X), n(X), not b(X).")
        assert [a.predicate for a in r.body] == ["n"]
        assert [a.predicate for a in r.negative] == ["a", "b"]

    def test_not_as_predicate_name_with_parens(self):
        # 'not(X)' is an atom of predicate "not", not a negation
        r = parse_rule("p(X) :- not(X).")
        assert r.body[0].predicate == "not"
        assert r.negative == ()

    def test_roundtrip(self):
        src = "p(X) :- n(X), not q(X)."
        assert str(parse_rule(src)) == src


class TestStratification:
    def test_two_strata(self):
        p = parse(
            """
            reach(X) :- start(X).
            reach(Y) :- reach(X), edge(X, Y).
            unreachable(X) :- node(X), not reach(X).
            ?- unreachable(X).
            """
        )
        assert stratify(p) == [frozenset({"reach"}), frozenset({"unreachable"})]

    def test_pure_datalog_single_stratum(self):
        p = parse(
            """
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
            ?- tc(X, Y).
            """
        )
        assert stratify(p) == [frozenset({"tc"})]

    def test_negation_of_edb_is_fine(self):
        p = parse("p(X) :- n(X), not base(X). ?- p(X).")
        assert is_stratified(p)
        assert stratify(p) == [frozenset({"p"})]

    def test_recursion_through_negation_rejected(self):
        p = parse(
            """
            win(X) :- move(X, Y), not win(Y).
            ?- win(X).
            """
        )
        assert not is_stratified(p)
        with pytest.raises(ValidationError):
            stratify(p)

    def test_mutual_negative_cycle_rejected(self):
        p = parse(
            """
            p(X) :- n(X), not q(X).
            q(X) :- n(X), not p(X).
            ?- p(X).
            """
        )
        assert not is_stratified(p)

    def test_three_strata_chain(self):
        p = parse(
            """
            a(X) :- base(X).
            b(X) :- base(X), not a(X).
            c(X) :- base(X), not b(X).
            ?- c(X).
            """
        )
        layers = stratify(p)
        assert layers == [
            frozenset({"a"}),
            frozenset({"b"}),
            frozenset({"c"}),
        ]

    def test_positive_recursion_with_lower_negation(self):
        p = parse(
            """
            bad(X) :- flag(X).
            good(X) :- node(X), not bad(X).
            good(Y) :- good(X), edge(X, Y), not bad(Y).
            ?- good(X).
            """
        )
        layers = stratify(p)
        assert layers.index(frozenset({"bad"})) < layers.index(frozenset({"good"}))

    def test_negative_dependencies(self):
        p = parse("p(X) :- n(X), not q(X). q(X) :- m(X). ?- p(X).")
        assert negative_dependencies(p) == {("p", "q")}


class TestDependencyGraphWithNegation:
    def test_graph_includes_negative_edges(self):
        p = parse("p(X) :- n(X), not q(X). q(X) :- m(X). ?- p(X).")
        g = dependency_graph(p)
        assert "q" in g["p"]
