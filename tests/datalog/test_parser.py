"""Unit tests for the Datalog lexer and parser."""

import pytest

from repro.datalog import ParseError, Span, atom, parse, parse_atom, parse_rule
from repro.datalog.parser import split_facts, tokenize
from repro.datalog.terms import Constant, Variable


class TestTokenizer:
    def kinds(self, src):
        return [t.kind for t in tokenize(src)]

    def test_simple_rule(self):
        assert self.kinds("p(X) :- q(X).") == [
            "IDENT", "LPAREN", "IDENT", "RPAREN", "IMPLIES",
            "IDENT", "LPAREN", "IDENT", "RPAREN", "DOT", "EOF",
        ]

    def test_comment_skipped(self):
        assert self.kinds("% hello\np.") == ["IDENT", "DOT", "EOF"]

    def test_adorned_identifier(self):
        toks = list(tokenize("a@nd(X)"))
        assert toks[0].text == "a@nd"

    def test_occurrence_dot_identifier(self):
        toks = list(tokenize("p.1(X)."))
        assert toks[0].text == "p.1"
        # the final '.' terminates the clause rather than joining
        assert toks[-2].kind == "DOT"

    def test_number(self):
        toks = list(tokenize("p(42)"))
        assert toks[2].kind == "NUMBER" and toks[2].text == "42"

    def test_negative_number(self):
        toks = list(tokenize("p(-3)"))
        assert toks[2].text == "-3"

    def test_string_literal(self):
        toks = list(tokenize("p('Hello world')"))
        assert toks[2].kind == "STRING" and toks[2].text == "Hello world"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            list(tokenize("p('oops"))

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            list(tokenize("p(X) & q(X)"))

    def test_positions(self):
        toks = list(tokenize("p.\nq."))
        assert toks[0].line == 1
        assert toks[2].line == 2


class TestParser:
    def test_program_shape(self):
        p = parse(
            """
            tc(X, Y) :- edge(X, Y).
            tc(X, Y) :- edge(X, Z), tc(Z, Y).
            ?- tc(1, Y).
            """
        )
        assert len(p.rules) == 2
        assert p.query == atom("tc", 1, "Y")

    def test_fact(self):
        p = parse("edge(1, 2).")
        assert p.rules[0].is_fact()

    def test_arity_zero_atom_with_and_without_parens(self):
        p = parse("b :- c(). c() :- d.")
        assert p.rules[0].head.arity == 0
        assert p.rules[0].body[0].arity == 0

    def test_anonymous_variables_fresh_per_occurrence(self):
        r = parse_rule("p(X) :- q(_, _), r(_).")
        body_vars = [v.name for a in r.body for v in a.variables()]
        assert len(set(body_vars)) == 3

    def test_anonymous_scoped_per_clause(self):
        p = parse("p(X) :- q(X, _). r(X) :- s(X, _).")
        v1 = p.rules[0].body[0].args[1]
        v2 = p.rules[1].body[0].args[1]
        assert v1 == v2  # same generated name, different clauses

    def test_quoted_constant_not_variable(self):
        r = parse_rule("p(X) :- q(X, 'Y').")
        assert r.body[0].args[1] == Constant("Y")

    def test_variable_vs_constant(self):
        a = parse_atom("p(X, abc, 3)")
        assert a.args == (Variable("X"), Constant("abc"), Constant(3))

    def test_predicate_must_be_lowercase(self):
        with pytest.raises(ParseError):
            parse("P(X) :- q(X).")

    def test_missing_dot(self):
        with pytest.raises(ParseError):
            parse("p(X) :- q(X)")

    def test_multiple_queries_rejected(self):
        with pytest.raises(ParseError):
            parse("?- p(X). ?- q(X).")

    def test_error_carries_position(self):
        try:
            parse("p(X) :- \n q(X)")
        except ParseError as e:
            assert e.line == 2
        else:  # pragma: no cover
            pytest.fail("expected ParseError")

    def test_parse_atom_roundtrip(self):
        a = parse_atom("p(X, 1, foo)")
        assert str(a) == "p(X, 1, foo)"

    def test_parse_rule_rejects_programs(self):
        with pytest.raises(ParseError):
            parse_rule("p(X) :- q(X). r(X) :- s(X).")

    def test_adorned_predicate_names(self):
        p = parse("a@nd(X) :- p(X, Y). ?- a@nd(X).")
        assert p.rules[0].head.predicate == "a@nd"

    def test_split_facts(self):
        p = parse("edge(1, 2). tc(X, Y) :- edge(X, Y).")
        prog, facts = split_facts(p)
        assert len(prog.rules) == 1
        assert facts == [atom("edge", 1, 2)]

    def test_roundtrip_pretty_print(self):
        src = "tc(X, Y) :- edge(X, Z), tc(Z, Y)."
        assert str(parse(src).rules[0]) == src


class TestSourceSpans:
    def test_atom_spans_point_at_predicate_tokens(self):
        src = "tc(X, Y) :- edge(X, Z), tc(Z, Y)."
        r = parse(src).rules[0]
        assert r.head.span == Span(1, 1)
        assert r.body[0].span == Span(1, 13)
        assert r.body[1].span == Span(1, 25)

    def test_rule_span_is_head_span(self):
        r = parse_rule("p(X) :- q(X).")
        assert r.span == Span(1, 1)

    def test_spans_track_lines(self):
        src = "p(X) :- q(X).\n\n  r(Y) :- s(Y)."
        p = parse(src)
        assert p.rules[0].span == Span(1, 1)
        assert p.rules[1].span == Span(3, 3)

    def test_query_span(self):
        p = parse("p(X) :- q(X).\n?- p(X).")
        assert p.query.span == Span(2, 4)

    def test_negated_literal_span(self):
        r = parse_rule("p(X) :- q(X), not s(X).")
        assert r.negative[0].span == Span(1, 19)

    def test_equality_ignores_spans(self):
        a = parse("p(X) :- q(X).").rules[0]
        b = parse("\n\n   p(X) :- q(X).").rules[0]
        assert a.span != b.span
        assert a == b
        assert hash(a) == hash(b)
        assert a.head == b.head and hash(a.head) == hash(b.head)

    def test_programmatic_atoms_have_no_span(self):
        assert atom("p", 1).span is None

    def test_span_survives_rename(self):
        a = parse("p(X) :- q(X).").rules[0].head
        assert a.rename_predicate("p@d").span == a.span
