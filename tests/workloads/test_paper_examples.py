"""Tests for the machine-readable paper examples module itself."""

import pytest

from repro.datalog import ValidationError
from repro.workloads import paper_examples as pe


class TestAdornedFromText:
    def test_basic(self):
        program = pe.adorned_from_text("a@nd(X) :- p(X, Y). ?- a@nd(X).")
        assert program.projected
        assert program.rules[0].head.derived
        assert not program.rules[0].body[0].derived
        assert str(program.rules[0].head.adornment) == "nd"

    def test_base_literal_all_needed(self):
        program = pe.adorned_from_text("a@nd(X) :- p(X, Y). ?- a@nd(X).")
        assert str(program.rules[0].body[0].adornment) == "nn"

    def test_boolean_marking(self):
        program = pe.adorned_from_text(
            "q@n(X) :- e(X), b1. b1 :- w(Y). ?- q@n(X).",
            booleans=["b1"],
        )
        assert program.boolean_predicates == {"b1"}
        assert program.rules[0].body[1].derived

    def test_arity_check_projected(self):
        with pytest.raises(ValidationError):
            pe.adorned_from_text("a@nd(X, Y) :- p(X, Y). ?- a@nd(X, Y).")

    def test_unprojected_mode(self):
        program = pe.adorned_from_text(
            "a@nd(X, Y) :- p(X, Y). ?- a@nd(X, Y).", projected=False
        )
        assert not program.projected

    def test_query_required(self):
        with pytest.raises(ValidationError):
            pe.adorned_from_text("a@nd(X) :- p(X, Y).")

    def test_defined_plain_predicate_is_derived(self):
        program = pe.adorned_from_text(
            "q@n(X) :- helper(X). helper(X) :- e(X). ?- q@n(X)."
        )
        assert program.rules[0].body[0].derived


class TestExamplePrograms:
    def test_all_programs_validate(self):
        for make in (
            pe.example1_program,
            pe.example2_program,
            pe.example5_program,
            pe.example12_original,
            pe.example12_transformed,
        ):
            make().validate()

    def test_all_adorned_programs_validate(self):
        for make in (
            pe.example7_adorned,
            pe.example8_adorned,
            pe.example8_empty_adorned,
            pe.example9_adorned,
            pe.example10_adorned,
        ):
            make().to_program().validate()

    def test_adorned_texts_parse(self):
        for text in (
            pe.example1_adorned_text(),
            pe.example3_expected_text(),
            pe.example5_adorned_text(),
            pe.example6_optimized_text(),
            pe.example7_reduced_text(),
        ):
            # texts with full-arity atoms are unprojected forms
            try:
                pe.adorned_from_text(text)
            except ValidationError:
                pe.adorned_from_text(text, projected=False)

    def test_example12_programs_share_schema(self):
        orig = pe.example12_original()
        trans = pe.example12_transformed()
        assert orig.edb_predicates() == trans.edb_predicates()
