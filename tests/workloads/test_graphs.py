"""Tests for the synthetic relation generators."""

from repro.workloads.graphs import (
    bipartite,
    chain,
    complete,
    cycle,
    grid,
    layered_dag,
    random_digraph,
    random_relation,
    tree,
)


class TestStructured:
    def test_chain(self):
        assert chain(4) == [(0, 1), (1, 2), (2, 3)]
        assert chain(1) == []

    def test_cycle(self):
        assert set(cycle(3)) == {(0, 1), (1, 2), (2, 0)}
        assert cycle(0) == []

    def test_tree_edge_count_and_parents(self):
        edges = tree(7, fanout=2)
        assert len(edges) == 6
        assert (0, 1) in edges and (0, 2) in edges and (1, 3) in edges

    def test_grid_counts(self):
        edges = grid(3, 4)
        # right edges: 3*3, down edges: 2*4
        assert len(edges) == 9 + 8

    def test_grid_is_dag(self):
        assert all(a < b for a, b in grid(4, 4))

    def test_complete(self):
        edges = complete(4)
        assert len(edges) == 12
        assert all(a != b for a, b in edges)

    def test_bipartite_full(self):
        edges = bipartite(2, 3)
        assert len(edges) == 6
        assert all(a < 2 <= b for a, b in edges)

    def test_bipartite_density(self):
        sparse = bipartite(10, 10, density=0.3, seed=1)
        assert 0 < len(sparse) < 100


class TestRandom:
    def test_deterministic(self):
        assert random_digraph(10, 20, seed=5) == random_digraph(10, 20, seed=5)
        assert random_digraph(10, 20, seed=5) != random_digraph(10, 20, seed=6)

    def test_counts_and_no_loops(self):
        edges = random_digraph(10, 20, seed=0)
        assert len(edges) == 20
        assert all(a != b for a, b in edges)

    def test_edge_cap(self):
        edges = random_digraph(3, 100, seed=0)
        assert len(edges) == 6  # 3*2 possible

    def test_layered_dag_layers(self):
        edges = layered_dag(3, 4, fanout=2, seed=1)
        for a, b in edges:
            assert b // 4 == a // 4 + 1

    def test_random_relation_shape(self):
        rows = random_relation(3, 15, 5, seed=2)
        assert len(rows) == 15
        assert all(len(r) == 3 for r in rows)
        assert all(all(0 <= v < 5 for v in r) for r in rows)

    def test_random_relation_cap(self):
        rows = random_relation(1, 100, 4, seed=0)
        assert len(rows) == 4


class TestRandomEdb:
    def test_schema_from_program(self):
        from repro.datalog import parse
        from repro.workloads.edb import random_edb

        program = parse("q(X) :- e(X, Y), f(Y, Z, W). ?- q(X).")
        db = random_edb(program, rows=10, domain=6, seed=1)
        assert db.predicates() == {"e", "f"}
        assert db.relation("f").arity == 3

    def test_rows_per_predicate_override(self):
        from repro.datalog import parse
        from repro.workloads.edb import random_edb

        program = parse("q(X) :- e(X, Y), f(Y). ?- q(X).")
        db = random_edb(
            program, rows=10, domain=20, seed=1, rows_per_predicate={"f": 3}
        )
        assert len(db.rows("f")) == 3
        assert len(db.rows("e")) == 10

    def test_uniform_instance_covers_idb(self):
        from repro.datalog import parse
        from repro.workloads.edb import uniform_instance

        program = parse("q(X) :- e(X, Y). ?- q(X).")
        db = uniform_instance(program, rows=5, domain=5, seed=1)
        assert db.predicates() == {"q", "e"}
