"""Tests for the Counting rewriting (restricted linear case)."""

import pytest

from repro.datalog import Database, TransformError, parse
from repro.engine import evaluate
from repro.rewriting.counting import (
    counting,
    counting_support,
    evaluate_counting,
)
from repro.workloads.graphs import tree


def same_generation(constant=0):
    return parse(
        f"""
        sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
        sg(X, Y) :- flat(X, Y).
        ?- sg({constant}, Y).
        """
    )


def family(n=30, seed=3):
    import random

    rng = random.Random(seed)
    up = tree(n, fanout=2)  # edges parent -> child; we need child -> parent
    up = [(b, a) for a, b in up]
    down = [(a, b) for b, a in up]
    flat = [(rng.randrange(n), rng.randrange(n)) for _ in range(n)]
    return Database.from_dict({"up": up, "down": down, "flat": flat})


class TestRewriteShape:
    def test_structure(self):
        result = counting(same_generation())
        heads = {r.head.predicate for r in result.program.rules}
        assert heads == {"cnt_sg", "ans_sg", "count_query_sg"}
        assert result.succ_predicate == "succ"
        seed_rules = [r for r in result.program.rules if not r.body]
        assert len(seed_rules) == 1
        assert seed_rules[0].head.as_fact() == (0, 0)

    def test_support_relation(self):
        db = counting_support(3)
        assert db.rows("succ") == {(0, 1), (1, 2), (2, 3)}


class TestCorrectness:
    @pytest.mark.parametrize("constant", [0, 1, 5])
    def test_matches_original_on_trees(self, constant):
        program = same_generation(constant)
        db = family()
        reference = evaluate(program, db).answers()
        result = counting(program)
        got = evaluate_counting(result, db).answers()
        assert got == reference

    def test_explicit_depth_bound(self):
        program = same_generation(0)
        db = family()
        result = counting(program)
        deep = evaluate_counting(result, db, max_depth=64).answers()
        auto = evaluate_counting(result, db).answers()
        assert deep == auto

    def test_insufficient_depth_loses_answers_documented(self):
        # the documented restriction: a too-small bound truncates levels
        program = same_generation(0)
        db = family()
        result = counting(program)
        full = evaluate_counting(result, db).answers()
        truncated = evaluate_counting(result, db, max_depth=0).answers()
        assert truncated <= full

    def test_variable_collision_with_level_vars(self):
        program = parse(
            """
            sg(I, J) :- up(I, U), sg(U, V), down(V, J).
            sg(I, J) :- flat(I, J).
            ?- sg(0, Y).
            """
        )
        db = family()
        reference = evaluate(program, db).answers()
        assert evaluate_counting(counting(program), db).answers() == reference


class TestRestrictions:
    def test_requires_bound_first_argument(self):
        with pytest.raises(TransformError):
            counting(parse("sg(X, Y) :- flat(X, Y). ?- sg(X, Y)."))

    def test_requires_query(self):
        with pytest.raises(TransformError):
            counting(same_generation().with_query(None))

    def test_requires_single_recursive_rule(self):
        program = parse(
            """
            sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
            sg(X, Y) :- left(X, U), sg(U, V), right(V, Y).
            sg(X, Y) :- flat(X, Y).
            ?- sg(0, Y).
            """
        )
        with pytest.raises(TransformError):
            counting(program)

    def test_requires_exit_rule(self):
        program = parse(
            """
            sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
            ?- sg(0, Y).
            """
        )
        with pytest.raises(TransformError):
            counting(program)

    def test_rejects_nonlinear(self):
        program = parse(
            """
            t(X, Y) :- t(X, Z), t(Z, Y).
            t(X, Y) :- e(X, Y).
            ?- t(0, Y).
            """
        )
        with pytest.raises(TransformError):
            counting(program)

    def test_rejects_extra_predicates(self):
        program = parse(
            """
            sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
            sg(X, Y) :- flat(X, Y).
            other(X) :- w(X).
            ?- sg(0, Y).
            """
        )
        with pytest.raises(TransformError):
            counting(program)

    def test_rejects_wrong_chain_shape(self):
        program = parse(
            """
            sg(X, Y) :- up(X, U), sg(U, V), down(Y, W).
            sg(X, Y) :- flat(X, Y).
            ?- sg(0, Y).
            """
        )
        with pytest.raises(TransformError):
            counting(program)
