"""Tests for the Magic Sets rewriting and its composition with the
existential optimizer (the paper's orthogonality claim)."""

import pytest

from repro.datalog import Database, TransformError, parse
from repro.engine import EngineOptions, evaluate
from repro.core.pipeline import optimize
from repro.rewriting.magic import bf_adornment, magic_sets
from repro.workloads.graphs import chain, layered_dag, random_digraph


TC_BOUND = parse(
    """
    tc(X, Y) :- edge(X, Y).
    tc(X, Y) :- edge(X, Z), tc(Z, Y).
    ?- tc(0, Y).
    """
)


class TestBfAdornment:
    def test_constants_bound(self):
        from repro.datalog import atom

        assert bf_adornment(atom("p", 1, "X"), frozenset()) == "bf"

    def test_bound_variables(self):
        from repro.datalog import atom
        from repro.datalog.terms import Variable

        assert bf_adornment(atom("p", "X", "Y"), frozenset({Variable("X")})) == "bf"


class TestMagicSets:
    def test_rewrite_shape(self):
        result = magic_sets(TC_BOUND)
        assert result.changed
        preds = result.program.idb_predicates()
        assert "magic_tc@bf" in preds
        assert "tc@bf" in preds
        assert result.query_predicate == "tc@bf"

    def test_seed_fact(self):
        result = magic_sets(TC_BOUND)
        seeds = [r for r in result.program.rules if not r.body]
        assert len(seeds) == 1
        assert str(seeds[0]) == "magic_tc@bf(0)."

    @pytest.mark.parametrize(
        "edges",
        [chain(30), random_digraph(25, 60, seed=4), layered_dag(5, 5, seed=2)],
        ids=["chain", "random", "dag"],
    )
    def test_answers_preserved(self, edges):
        db = Database.from_dict({"edge": edges})
        original = evaluate(TC_BOUND, db).answers()
        rewritten = evaluate(magic_sets(TC_BOUND).program, db).answers()
        assert original == rewritten

    def test_restricts_computation(self):
        # query from the tail of a chain: magic computes O(1) facts
        program = parse(
            """
            tc(X, Y) :- edge(X, Y).
            tc(X, Y) :- edge(X, Z), tc(Z, Y).
            ?- tc(28, Y).
            """
        )
        db = Database.from_dict({"edge": chain(30)})
        orig = evaluate(program, db).stats
        magic = evaluate(magic_sets(program).program, db).stats
        assert magic.facts_derived < orig.facts_derived / 5

    def test_unbound_query_unchanged(self):
        program = TC_BOUND.with_query(parse("?- tc(X, Y). x(X) :- y.").query)
        result = magic_sets(program)
        assert not result.changed
        assert result.program is program

    def test_requires_query(self):
        with pytest.raises(TransformError):
            magic_sets(TC_BOUND.with_query(None))

    def test_requires_derived_query(self):
        program = parse("tc(X, Y) :- edge(X, Y). ?- edge(1, Y).")
        with pytest.raises(TransformError):
            magic_sets(program)

    def test_second_argument_bound(self):
        program = parse(
            """
            tc(X, Y) :- edge(X, Y).
            tc(X, Y) :- edge(X, Z), tc(Z, Y).
            ?- tc(X, 29).
            """
        )
        db = Database.from_dict({"edge": chain(30)})
        a1 = evaluate(program, db).answers()
        a2 = evaluate(magic_sets(program).program, db).answers()
        assert a1 == a2

    def test_nonlinear_recursion(self):
        program = parse(
            """
            t(X, Y) :- e(X, Y).
            t(X, Y) :- t(X, Z), t(Z, Y).
            ?- t(0, Y).
            """
        )
        db = Database.from_dict({"e": random_digraph(15, 35, seed=9)})
        a1 = evaluate(program, db).answers()
        a2 = evaluate(magic_sets(program).program, db).answers()
        assert a1 == a2


class TestOrthogonality:
    """The paper: existential optimization and Magic Sets compose."""

    def program(self):
        # bound source, needed target, existential tag
        return parse(
            """
            reach(X, Y, T) :- edge(X, Y), tag(Y, T).
            reach(X, Y, T) :- edge(X, Z), reach(Z, Y, T).
            ?- reach(0, Y, _).
            """
        )

    def db(self, seed=0):
        edges = random_digraph(20, 45, seed=seed)
        return Database.from_dict(
            {"edge": edges, "tag": [(i, i % 3) for i in range(20)]}
        )

    def test_composition_preserves_answers(self):
        program = self.program()
        opt = optimize(program)
        composed = magic_sets(opt.program)
        for seed in range(3):
            db = self.db(seed)
            reference = opt.reference_answers(db)
            got = evaluate(
                composed.program,
                db,
                EngineOptions(cut_predicates=opt.cut_predicates),
            ).answers()
            assert reference == got

    def test_composition_reduces_arity_and_restricts(self):
        program = self.program()
        opt = optimize(program)
        arities = opt.program.arities()
        # T projected out of the recursion
        recursive = [p for p in arities if p.startswith("reach@")]
        assert recursive and all(arities[p] == 2 for p in recursive)
        composed = magic_sets(opt.program)
        assert composed.changed
