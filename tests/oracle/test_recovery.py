"""The recovery oracle: crash, recover, compare against from-scratch.

A durable :class:`~repro.engine.incremental.IncrementalSession` claims
that after a crash at **any** point, :func:`~repro.engine.recovery.recover`
rebuilds exactly the state a from-scratch evaluation over the *accepted*
base facts would produce — bit-identical per-predicate fact sets, query
answers, and reported fact counts.  This suite drives random update
scripts with an armed crash point (before/after the WAL append, a torn
final record, mid-snapshot, a truncated snapshot), lets the injected
:class:`~repro.engine.faults.WalCrash` kill the session with exactly the
disk damage a real crash would leave, then recovers from the damaged
files and checks the claim — across curated families, the strategy
matrix, and 200 fixed random programs x random crash points.

The accepted-batch ledger is the WAL contract itself: a batch is
accepted once its record is durable.  ``before-append`` and a torn
record mean the crashed batch was *not* accepted (the record never
fully landed); ``after-append``, ``mid-snapshot`` and
``truncated-snapshot`` crash after the append, so the batch must
survive.  The recovered session must also keep working: each test
applies one more batch after recovery and re-checks.

Like the differential IVM oracle, the suite honours the suite-wide
``REPRO_ORACLE_BASE`` overlays, so CI sweeps the crash matrix under
no-columnar / no-scc / no-kernel engines through these same tests.
"""

import os
import random
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datalog import Database
from repro.engine import (
    DurabilityConfig,
    FaultPlan,
    IncrementalSession,
    WalCrash,
    evaluate,
    recover,
)
from repro.workloads.edb import random_edb
from repro.workloads.families import all_families

from ..property.strategies import random_programs
from .harness import STRATEGIES, engine_options

FAMILIES = all_families()

CRASH_POINTS = (
    "before-append",
    "after-append",
    "torn-record",
    "mid-snapshot",
    "truncated-snapshot",
)

#: crash points that fire only after the record is durably appended:
#: the crashed batch counts as accepted and must survive recovery
DURABLE_CRASH = frozenset(
    {"after-append", "mid-snapshot", "truncated-snapshot"}
)


def _script(program, rng, domain, steps):
    """Same shape as the IVM oracle's script: per step one insert or
    retract batch on one base predicate, retractions biased toward
    rows that exist."""
    arities = program.arities()
    preds = sorted(program.edb_predicates()) or sorted(arities)
    for _ in range(steps):
        kind = rng.choice(("insert", "retract"))
        pred = rng.choice(preds)
        arity = arities[pred]
        batch = {
            tuple(rng.randrange(domain) for _ in range(arity))
            for _ in range(rng.randint(1, 3))
        }
        yield kind, pred, batch


def _check_recovered(session, program, accepted, opts, context):
    """Recovered state == from-scratch over the accepted base facts."""
    arities = program.arities()
    ref = Database()
    for pred, rows in accepted.items():
        arity = arities.get(pred)
        if arity is None:
            if not rows:
                continue
            arity = len(next(iter(rows)))
        ref.ensure(pred, arity).update(rows)
    scratch = evaluate(program, ref, opts)
    for pred in sorted(set(arities) | set(accepted)):
        got = session.facts(pred)
        want = scratch.db.rows(pred)
        assert got == want, (
            f"{context}: predicate {pred!r} diverged after recovery: "
            f"only-recovered={sorted(got - want)[:5]} "
            f"only-scratch={sorted(want - got)[:5]}"
        )
    assert session.answers() == scratch.answers(), (
        f"{context}: answers diverged after recovery"
    )
    for pred in program.idb_predicates():
        assert session.stats.fact_counts.get(pred, 0) == len(
            scratch.db.rows(pred)
        ), f"{context}: fact_counts[{pred!r}] wrong after recovery"


def _run_crash_script(
    program,
    overrides,
    *,
    seed,
    crash_point,
    crash_seq,
    rows=10,
    domain=5,
    steps=5,
    snapshot_every=2,
):
    """Drive a durable session into an injected crash, recover, verify."""
    armed = engine_options(
        {
            **overrides,
            "fault_plan": FaultPlan(
                wal_crash=crash_point, wal_crash_seq=crash_seq
            ),
        }
    )
    clean = engine_options(overrides)
    edb = random_edb(program, rows=rows, domain=domain, seed=seed)
    accepted = {p: set(edb.rows(p)) for p in edb.predicates()}
    rng = random.Random(seed * 7901 + 13)
    with tempfile.TemporaryDirectory() as d:
        config = DurabilityConfig(
            wal_path=os.path.join(d, "session.wal"),
            snapshot_every=snapshot_every,
        )
        session = IncrementalSession(program, edb, armed, durable=config)
        crashed = None
        for step, (kind, pred, batch) in enumerate(
            _script(program, rng, domain, steps)
        ):
            if kind == "retract" and accepted.get(pred) and rng.random() < 0.7:
                batch = set(batch) | set(
                    rng.sample(
                        sorted(accepted[pred]), min(2, len(accepted[pred]))
                    )
                )
            try:
                if kind == "insert":
                    session.insert({pred: batch})
                else:
                    session.retract({pred: batch})
            except WalCrash:
                crashed = (step, kind, pred, batch)
                break
            if kind == "insert":
                accepted.setdefault(pred, set()).update(batch)
            else:
                accepted.get(pred, set()).difference_update(batch)
        if crashed is not None and crash_point in DURABLE_CRASH:
            # the record was durable before the crash: the batch is
            # accepted and must survive recovery
            _, kind, pred, batch = crashed
            if kind == "insert":
                accepted.setdefault(pred, set()).update(batch)
            else:
                accepted.get(pred, set()).difference_update(batch)

        recovered, report = recover(program, config, clean)
        context = (
            f"crash={crash_point}:{crash_seq} fired={crashed is not None} "
            f"source={report.source} anchor={report.snapshot_seq} "
            f"replayed={report.replayed_batches}"
        )
        _check_recovered(recovered, program, accepted, clean, context)

        # the recovered session is live: one more batch must land and
        # keep the same equivalence
        arities = program.arities()
        preds = sorted(program.edb_predicates()) or sorted(arities)
        pred = preds[seed % len(preds)]
        extra = {
            tuple(rng.randrange(domain) for _ in range(arities[pred]))
            for _ in range(2)
        }
        recovered.insert({pred: extra})
        accepted.setdefault(pred, set()).update(extra)
        _check_recovered(
            recovered, program, accepted, clean, context + " +post-batch"
        )
        recovered.close()
        session.close()
        return report


@pytest.mark.parametrize("point", CRASH_POINTS)
@pytest.mark.parametrize(
    "name", ["right_linear_tc", "win_move_stratified", "sibling_components"]
)
def test_recovery_on_curated_families(name, point):
    for crash_seq in (1, 2, 4):
        _run_crash_script(
            FAMILIES[name], {}, seed=0, crash_point=point, crash_seq=crash_seq
        )


@pytest.mark.parametrize("name", sorted(FAMILIES))
def test_recovery_every_family_torn_and_after(name):
    """Every curated family through the two highest-value crash points
    (one excluding, one including the crashed batch)."""
    for point in ("torn-record", "after-append"):
        _run_crash_script(
            FAMILIES[name], {}, seed=1, crash_point=point, crash_seq=2
        )


@pytest.mark.parametrize("label", sorted(STRATEGIES))
def test_recovery_strategy_matrix(label):
    """Crash + recovery agree with from-scratch under every engine
    overlay (the CI REPRO_ORACLE_BASE sweep layers more underneath)."""
    _run_crash_script(
        FAMILIES["right_linear_tc"],
        STRATEGIES[label],
        seed=0,
        crash_point="after-append",
        crash_seq=3,
    )


def test_recovery_clean_shutdown():
    """No crash at all: recovery of a cleanly closed session is exact
    (the armed seq never fires — beyond the script's appends)."""
    _run_crash_script(
        FAMILIES["right_linear_tc"],
        {},
        seed=2,
        crash_point="before-append",
        crash_seq=10_000,
    )


@given(
    random_programs(),
    st.integers(min_value=0, max_value=3),
    st.sampled_from(CRASH_POINTS),
    st.integers(min_value=1, max_value=5),
)
@settings(
    max_examples=200,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_recovery_on_random_programs(program, seed, point, crash_seq):
    """>= 200 fixed random programs x random crash points: recovered
    state is bit-identical to from-scratch over the accepted batches.
    Any WAL framing bug, snapshot decode skew, replay divergence, or
    compaction that drops a needed suffix record diverges here."""
    program.validate()
    _run_crash_script(
        program, {}, seed=seed, crash_point=point, crash_seq=crash_seq, steps=4
    )
