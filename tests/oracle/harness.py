"""The differential-testing oracle: one program, many evaluators.

Every engine in the repo claims to compute the same thing — the answer
set of a query over a database.  The oracle exploits that redundancy:
evaluate a program under every applicable strategy, before and after
the optimization pipeline, and assert the answer sets are identical.
Any single unsound component (an index that drops rows, a delta plan
that misses a derivation, a scheduler that runs a unit too early, a
pipeline pass that changes the query) breaks the agreement and is
reported with the strategy that diverged.

Strategies covered:

``naive``
    Bottom-up, full re-evaluation each round.
``scc-scheduler``
    The default production engine: SCC-condensation scheduling over
    delta-rule specialization, hash indexes, and compiled rule kernels.
``seminaive-monolithic``
    The same engine with scheduling disabled (``use_scc=False``, the
    CLI's ``--no-scc``): each stratum runs as one monolithic semi-naive
    fixpoint — the pre-scheduler engine, so unit scheduling is
    differentially tested against the loop it replaced.
``tuple-kernel``
    The scheduled engine with the columnar batch kernels disabled
    (``use_columnar=False``, the CLI's ``--no-columnar``), so every
    batch kernel is differentially tested against the tuple kernel it
    replaced.
``seminaive-interp``
    The scheduled engine on the plan interpreter (``use_kernels=False``,
    the CLI's ``--no-kernel``), so every generated kernel is
    differentially tested against the interpreter it replaced.
``seminaive-scan``
    The scheduled semi-naive loops forced onto full scans
    (``use_indexes=False``, the CLI's ``--no-index``), so index probe
    answering is differentially tested against plain filtering.
``seminaive-scan-interp``
    Scans and the interpreter together — the seed engine's behaviour
    plus scheduling, covering the scan-mode codegen as well.
``greedy-planner``
    The scheduled engine with the cost-based join planner disabled
    (``use_cost_planner=False``, the CLI's ``--no-cost-planner``), so
    every DP-chosen join order — and every adaptive inter-round
    replan — is differentially tested against the greedy orders it
    replaced.
``eager-replan``
    The cost planner with re-planning forced on every round
    (``replan_rounds=1``), stressing the delta-plan swap path as hard
    as the fixpoint allows.
``topdown``
    The tabled top-down (QSQR) evaluator — a completely independent
    implementation; skipped for programs with negation, which it does
    not support.

Each strategy also runs on the *optimized* program (answers projected
onto the original query's needed positions), so the pipeline is tested
against every engine, not just the default one.

The ``REPRO_ORACLE_BASE`` environment variable overlays base engine
options under every strategy (strategy-specific overrides win), e.g.
``REPRO_ORACLE_BASE=no-kernel,parallel=4`` re-runs the whole oracle
suite with the interpreter and a 4-thread unit scheduler, and
``REPRO_ORACLE_BASE=no-columnar`` sweeps it on the tuple kernels with
the batch plane off.  CI uses this to sweep the engine flag matrix
without duplicating the suite.
"""

from __future__ import annotations

import os

from repro.core import optimize
from repro.datalog import Database, Program
from repro.engine import EngineOptions, evaluate
from repro.engine.topdown import evaluate_topdown

__all__ = [
    "STRATEGIES",
    "BASE_OVERRIDES",
    "engine_options",
    "strategy_answers",
    "assert_all_agree",
]

#: label -> EngineOptions overrides for the bottom-up engine
STRATEGIES: dict[str, dict] = {
    "naive": {"strategy": "naive"},
    "scc-scheduler": {},
    "seminaive-monolithic": {"use_scc": False},
    "tuple-kernel": {"use_columnar": False},
    "seminaive-interp": {"use_kernels": False},
    "seminaive-scan": {"use_indexes": False},
    "seminaive-scan-interp": {"use_indexes": False, "use_kernels": False},
    "greedy-planner": {"use_cost_planner": False},
    "eager-replan": {"replan_rounds": 1},
}


def _base_overrides() -> dict:
    """Parse ``REPRO_ORACLE_BASE`` (comma-joined flags) once at import."""
    out: dict = {}
    spec = os.environ.get("REPRO_ORACLE_BASE", "")
    for token in filter(None, (t.strip() for t in spec.split(","))):
        if token == "no-scc":
            out["use_scc"] = False
        elif token == "no-kernel":
            out["use_kernels"] = False
        elif token == "no-index":
            out["use_indexes"] = False
        elif token == "no-columnar":
            out["use_columnar"] = False
        elif token == "no-cost-planner":
            out["use_cost_planner"] = False
        elif token.startswith("parallel="):
            out["parallel"] = int(token.split("=", 1)[1])
        else:
            raise ValueError(f"unknown REPRO_ORACLE_BASE token {token!r}")
    return out


BASE_OVERRIDES: dict = _base_overrides()


def engine_options(overrides: dict) -> EngineOptions:
    """Strategy overrides layered over the suite-wide base overrides."""
    return EngineOptions(**{**BASE_OVERRIDES, **overrides})


def strategy_answers(program: Program, db: Database) -> dict[str, frozenset]:
    """Answer sets of *program* over *db* per evaluation strategy."""
    out = {
        label: evaluate(program, db, engine_options(overrides)).answers()
        for label, overrides in STRATEGIES.items()
    }
    if not program.has_negation():
        out["topdown"] = evaluate_topdown(program, db).answers
    return out


def _assert_agree(answers: dict[str, frozenset], context: str) -> None:
    baseline_label, baseline = next(iter(answers.items()))
    for label, got in answers.items():
        assert got == baseline, (
            f"{context}: strategy {label!r} computed {len(got)} answers "
            f"but {baseline_label!r} computed {len(baseline)}; "
            f"only-in-{label}={sorted(got - baseline)[:5]} "
            f"only-in-{baseline_label}={sorted(baseline - got)[:5]}"
        )


def assert_all_agree(program: Program, db: Database) -> frozenset:
    """The full differential check; returns the agreed answer set.

    1. every strategy agrees on the *original* program;
    2. every bottom-up strategy agrees on the *optimized* program;
    3. optimized answers equal the original answers projected onto the
       query's needed positions (``reference_answers``).
    """
    pre = strategy_answers(program, db)
    _assert_agree(pre, "pre-optimizer")

    # validate=True arms the pass-contract sanitizer: every differential
    # run also checks each pipeline pass against its published invariant.
    result = optimize(program, validate=True)
    post = {
        label: result.answers(db, **{**BASE_OVERRIDES, **overrides})
        for label, overrides in STRATEGIES.items()
    }
    _assert_agree(post, "post-optimizer")

    reference = result.reference_answers(db)
    assert post["scc-scheduler"] == reference, (
        f"optimizer changed the answers: optimized={len(post['scc-scheduler'])} "
        f"reference={len(reference)}"
    )
    return reference
