"""The differential-testing oracle: one program, many evaluators.

Every engine in the repo claims to compute the same thing — the answer
set of a query over a database.  The oracle exploits that redundancy:
evaluate a program under every applicable strategy, before and after
the optimization pipeline, and assert the answer sets are identical.
Any single unsound component (an index that drops rows, a delta plan
that misses a derivation, a pipeline pass that changes the query)
breaks the agreement and is reported with the strategy that diverged.

Strategies covered:

``naive``
    Bottom-up, full re-evaluation each round.
``seminaive``
    Bottom-up with delta-rule specialization, hash indexes, and
    compiled rule kernels — the default production engine.
``seminaive-interp``
    The same engine on the plan interpreter (``use_kernels=False``,
    the CLI's ``--no-kernel``), so every generated kernel is
    differentially tested against the interpreter it replaced.
``seminaive-scan``
    The same semi-naive loop forced onto full scans
    (``use_indexes=False``, the CLI's ``--no-index``), so index probe
    answering is differentially tested against plain filtering.
``seminaive-scan-interp``
    Scans and the interpreter together — the seed engine's behaviour,
    covering the scan-mode codegen as well.
``topdown``
    The tabled top-down (QSQR) evaluator — a completely independent
    implementation; skipped for programs with negation, which it does
    not support.

Each strategy also runs on the *optimized* program (answers projected
onto the original query's needed positions), so the pipeline is tested
against every engine, not just the default one.
"""

from __future__ import annotations

from repro.core import optimize
from repro.datalog import Database, Program
from repro.engine import EngineOptions, evaluate
from repro.engine.topdown import evaluate_topdown

__all__ = ["STRATEGIES", "strategy_answers", "assert_all_agree"]

#: label -> EngineOptions overrides for the bottom-up engine
STRATEGIES: dict[str, dict] = {
    "naive": {"strategy": "naive"},
    "seminaive": {},
    "seminaive-interp": {"use_kernels": False},
    "seminaive-scan": {"use_indexes": False},
    "seminaive-scan-interp": {"use_indexes": False, "use_kernels": False},
}


def strategy_answers(program: Program, db: Database) -> dict[str, frozenset]:
    """Answer sets of *program* over *db* per evaluation strategy."""
    out = {
        label: evaluate(program, db, EngineOptions(**overrides)).answers()
        for label, overrides in STRATEGIES.items()
    }
    if not program.has_negation():
        out["topdown"] = evaluate_topdown(program, db).answers
    return out


def _assert_agree(answers: dict[str, frozenset], context: str) -> None:
    baseline_label, baseline = next(iter(answers.items()))
    for label, got in answers.items():
        assert got == baseline, (
            f"{context}: strategy {label!r} computed {len(got)} answers "
            f"but {baseline_label!r} computed {len(baseline)}; "
            f"only-in-{label}={sorted(got - baseline)[:5]} "
            f"only-in-{baseline_label}={sorted(baseline - got)[:5]}"
        )


def assert_all_agree(program: Program, db: Database) -> frozenset:
    """The full differential check; returns the agreed answer set.

    1. every strategy agrees on the *original* program;
    2. every bottom-up strategy agrees on the *optimized* program;
    3. optimized answers equal the original answers projected onto the
       query's needed positions (``reference_answers``).
    """
    pre = strategy_answers(program, db)
    _assert_agree(pre, "pre-optimizer")

    result = optimize(program)
    post = {
        label: result.answers(db, **overrides)
        for label, overrides in STRATEGIES.items()
    }
    _assert_agree(post, "post-optimizer")

    reference = result.reference_answers(db)
    assert post["seminaive"] == reference, (
        f"optimizer changed the answers: optimized={len(post['seminaive'])} "
        f"reference={len(reference)}"
    )
    return reference
