"""Differential oracle for the SCC scheduler vs the monolithic loop.

The scheduler (`use_scc=True`, the default) and the monolithic
per-stratum fixpoint (`use_scc=False`, the CLI's ``--no-scc``) must
reach the same least fixpoint: identical answers, identical per-
predicate fact counts, and provenance covering exactly the same derived
facts.  The comparison runs over every engine combination (compiled
kernels and the interpreter, hash indexes and full scans) on the
curated families and on 200 fixed random programs.

Provenance *justifications* are compared by key set and per-fact
soundness, not bit-for-bit: which rule first derives a fact is a
schedule artifact (the monolithic loop interleaves all rules per round,
the scheduler completes lower units first), so the recorded witness may
legitimately differ while both remain valid derivations.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import EngineOptions, evaluate
from repro.workloads.edb import random_edb
from repro.workloads.families import all_families

from ..property.strategies import random_programs

FAMILIES = all_families()

#: kernel/interpreter x index/scan — the scheduler must agree with the
#: monolithic loop under every engine combination, not just the default
ENGINE_COMBOS = {
    "kernel-indexed": {},
    "interp-indexed": {"use_kernels": False},
    "kernel-scan": {"use_indexes": False},
    "interp-scan": {"use_kernels": False, "use_indexes": False},
}


def assert_scheduler_agrees(program, db, **combo):
    """Full-state agreement between the scheduled and monolithic engines."""
    scheduled = evaluate(
        program, db, EngineOptions(record_provenance=True, **combo)
    )
    monolithic = evaluate(
        program, db, EngineOptions(record_provenance=True, use_scc=False, **combo)
    )
    assert scheduled.answers() == monolithic.answers()
    assert scheduled.stats.fact_counts == monolithic.stats.fact_counts
    # same derived facts justified (first-witness bodies may differ)
    assert set(scheduled.provenance) == set(monolithic.provenance)
    for (predicate, row) in scheduled.provenance:
        # soundness of the scheduler's recorded witnesses: each one
        # expands to a derivation tree grounded in the database
        tree = scheduled.derivation(predicate, row)
        assert tree.predicate == predicate and tree.row == row
    return scheduled, monolithic


@pytest.mark.parametrize("combo", sorted(ENGINE_COMBOS))
@pytest.mark.parametrize("name", sorted(FAMILIES))
def test_scheduler_vs_monolithic_on_families(name, combo):
    program = FAMILIES[name]
    db = random_edb(program, rows=14, domain=7, seed=1)
    assert_scheduler_agrees(program, db, **ENGINE_COMBOS[combo])


@pytest.mark.parametrize("name", sorted(FAMILIES))
def test_parallel_scheduler_vs_monolithic_on_families(name):
    program = FAMILIES[name]
    db = random_edb(program, rows=14, domain=7, seed=2)
    scheduled, _ = assert_scheduler_agrees(program, db, parallel=4)
    assert scheduled.stats.units_scheduled >= 1


@given(random_programs(), st.integers(min_value=0, max_value=3))
@settings(
    max_examples=200,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_scheduler_vs_monolithic_on_random_programs(program, seed):
    """200 fixed random programs: any unit built from a wrong SCC, a
    depth ordering that runs a consumer before its producer, or an
    early exit that fires too soon diverges from the monolithic loop."""
    program.validate()
    db = random_edb(program, rows=10, domain=5, seed=seed)
    assert_scheduler_agrees(program, db)
