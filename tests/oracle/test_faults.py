"""Oracle property under faults and resource governance.

The robustness contract: a governed or fault-injected run must end in
exactly one of three ways —

1. the **exact** oracle answer set (recoverable faults degrade a rung
   but never change answers; generous limits never trip),
2. a **flagged partial subset** (``on_limit="partial"``: the result
   says it is a lower bound and every answer it does report is true),
3. a **structured error** (:class:`ResourceExhausted` carrying partial
   stats, or the injected genuine error surfacing verbatim).

Never a silently wrong answer set, and never a superset — bottom-up
derivation only ever adds true consequences, so even an aborted run's
facts are sound.

``REPRO_ORACLE_BASE`` overlays engine flags (no-kernel, no-scc,
parallel=N, ...) so CI sweeps this suite across the same matrix as the
differential oracle.
"""

from __future__ import annotations

import pytest

from repro.datalog.errors import EvaluationError
from repro.engine import (
    FaultPlan,
    IncrementalSession,
    InjectedUnitError,
    ResourceExhausted,
    evaluate,
)
from repro.workloads.edb import random_edb
from repro.workloads.families import all_families

from .harness import engine_options

FAMILIES = all_families()

#: families exercising every engine shape: plain recursion, ≥3 sibling
#: units at one condensation depth (parallel batches), and stratified
#: negation (multi-stratum scheduling)
WORKLOADS = ["right_linear_tc", "sibling_components", "win_move_stratified"]

FAULT_PLANS = {
    "none": FaultPlan(),
    "columnar": FaultPlan(columnar=True),
    "columnar-stacked": FaultPlan(columnar=True, index_build=True),
    "kernel-all": FaultPlan(kernel_compile=frozenset(["*"])),
    "kernel-one": FaultPlan(kernel_compile=frozenset(["tc"])),
    "index": FaultPlan(index_build=True),
    "scheduler": FaultPlan(scheduler=True),
    "worker-death-0": FaultPlan(worker_death=0),
    "worker-death-2": FaultPlan(worker_death=2),
    "unit-error-0": FaultPlan(unit_error=0),
    "slow-unit": FaultPlan(slow_unit=0, slow_s=0.001),
    "stacked": FaultPlan(
        kernel_compile=frozenset(["*"]), index_build=True, worker_death=1
    ),
}

GOVERNOR_CONFIGS = {
    "ungoverned": {},
    "generous": {
        "deadline_s": 300.0,
        "max_facts": 10**9,
        "max_delta_rows": 10**9,
        "max_iterations": 10**6,
    },
    "tight-facts-raise": {"max_facts": 4, "on_limit": "raise"},
    "tight-facts-partial": {"max_facts": 4, "on_limit": "partial"},
    "tight-deadline-raise": {"deadline_s": 0.0, "on_limit": "raise"},
    "tight-deadline-partial": {"deadline_s": 0.0, "on_limit": "partial"},
    "tight-delta": {"max_delta_rows": 3, "on_limit": "partial"},
    "tight-iterations": {"max_iterations": 2, "on_limit": "partial"},
}


def workload(name, seed=0):
    program = FAMILIES[name]
    return program, random_edb(program, rows=14, domain=7, seed=seed)


def oracle_answers(name, seed=0):
    program, db = workload(name, seed)
    return evaluate(program, db).answers()


def assert_property(program, db, opts, oracle, context):
    """One governed/faulted run ends exact, flagged-partial, or
    structured-error — never silently wrong, never a superset."""
    try:
        result = evaluate(program, db, opts)
    except ResourceExhausted as exc:
        # outcome 3a: structured limit error with partial accounting
        assert exc.reason, context
        assert exc.stats is not None, context
        return
    except InjectedUnitError:
        # outcome 3b: the injected genuine defect surfaced verbatim
        return
    answers = result.answers()
    if result.is_partial:
        # outcome 2: flagged lower bound — sound, possibly incomplete
        assert result.stats.aborted_reason, context
        assert answers <= oracle, (
            f"{context}: partial result is not a subset of the oracle "
            f"(extra={sorted(answers - oracle)[:5]})"
        )
    else:
        # outcome 1: unflagged runs must be exact, faults or not
        assert answers == oracle, (
            f"{context}: unflagged answers differ from oracle "
            f"(extra={sorted(answers - oracle)[:5]}, "
            f"missing={sorted(oracle - answers)[:5]})"
        )


@pytest.mark.parametrize("plan_name", sorted(FAULT_PLANS))
@pytest.mark.parametrize("workload_name", WORKLOADS)
def test_faults_preserve_oracle_property(workload_name, plan_name):
    program, db = workload(workload_name)
    oracle = oracle_answers(workload_name)
    plan = FAULT_PLANS[plan_name]
    opts = engine_options({"fault_plan": plan} if plan.any() else {})
    assert_property(
        program, db, opts, oracle, f"{workload_name}/{plan_name}"
    )


@pytest.mark.parametrize("config_name", sorted(GOVERNOR_CONFIGS))
@pytest.mark.parametrize("workload_name", WORKLOADS)
def test_governor_preserves_oracle_property(workload_name, config_name):
    program, db = workload(workload_name)
    oracle = oracle_answers(workload_name)
    opts = engine_options(dict(GOVERNOR_CONFIGS[config_name]))
    assert_property(
        program, db, opts, oracle, f"{workload_name}/{config_name}"
    )


@pytest.mark.parametrize("workload_name", WORKLOADS)
def test_faults_under_tight_budget(workload_name):
    """Faults and limits together: degradation retries must respect
    the budget, and the combined outcome still lands in the triad."""
    program, db = workload(workload_name)
    oracle = oracle_answers(workload_name)
    for plan_name in ("kernel-all", "worker-death-0", "stacked"):
        opts = engine_options(
            {
                "fault_plan": FAULT_PLANS[plan_name],
                "max_facts": 6,
                "on_limit": "partial",
            }
        )
        assert_property(
            program, db, opts, oracle,
            f"{workload_name}/{plan_name}+tight",
        )


@pytest.mark.parametrize("workload_name", WORKLOADS)
def test_parallel_faulted_runs_are_exact(workload_name):
    """Recoverable faults under a 4-thread scheduler still produce the
    exact fixpoint, repeatedly (10×: interleaving-independent)."""
    program, db = workload(workload_name)
    oracle = oracle_answers(workload_name)
    plan = FaultPlan(kernel_compile=frozenset(["*"]), worker_death=0)
    opts = engine_options({"parallel": 4, "fault_plan": plan})
    for _ in range(10):
        result = evaluate(program, db, opts)
        assert result.answers() == oracle
        assert not result.is_partial


def _maintenance_batches(program):
    """A fixed insert + retract pair over the program's first EDB
    predicate, sized to force real propagation."""
    arities = program.arities()
    pred = sorted(program.edb_predicates())[0]
    arity = arities[pred]
    ins = {pred: [tuple(50 + j for j in range(arity)),
                  tuple(51 + j for j in range(arity))]}
    rem = {pred: [tuple(50 + j for j in range(arity)),
                  tuple(j for j in range(arity))]}
    return pred, ins, rem


def _scratch_facts(program, base_rows):
    # the maintained state is engine-invariant, so the reference runs
    # under default options regardless of the session's faulted ones
    from repro.datalog import Database

    db = Database()
    arities = program.arities()
    for pred in sorted(program.edb_predicates()):
        db.ensure(pred, arities[pred]).update(base_rows.get(pred, ()))
    result = evaluate(program, db, engine_options({}))
    return {p: result.db.rows(p) for p in sorted(arities)}


@pytest.mark.parametrize("workload_name", WORKLOADS)
def test_worker_death_during_maintenance_degrades_and_stays_exact(
    workload_name,
):
    """The ladder case: a worker dies inside a maintenance batch (the
    per-batch injector re-arms every one-shot fault).  The batch must
    retry on the parallel->sequential rung, record it, and land on the
    exact maintained state."""
    program, db = workload(workload_name)
    plan = FaultPlan(worker_death=0)
    opts = engine_options({"fault_plan": plan, "parallel": 4})
    session = IncrementalSession(program, db, opts)
    base = {p: set(db.rows(p)) for p in db.predicates()}
    pred, ins, rem = _maintenance_batches(program)
    stats = session.insert(ins)
    base[pred].update(map(tuple, ins[pred]))
    assert stats.faults_injected >= 1
    assert "parallel->sequential" in stats.degradations
    for p, want in _scratch_facts(program, base).items():
        assert session.facts(p) == want, f"{workload_name}: {p} diverged"
    stats = session.retract(rem)
    base[pred].difference_update(map(tuple, rem[pred]))
    assert stats.faults_injected >= 1
    for p, want in _scratch_facts(program, base).items():
        assert session.facts(p) == want, f"{workload_name}: {p} diverged"


@pytest.mark.parametrize("workload_name", WORKLOADS)
def test_scheduler_fault_during_maintenance_takes_recompute_rung(
    workload_name,
):
    """A scheduler fault during maintenance degrades one rung further
    down the ladder — incremental->recompute: the affected cone is
    recomputed from scratch, same state, more work, and the rung is
    recorded per batch."""
    program, db = workload(workload_name)
    opts = engine_options({"fault_plan": FaultPlan(scheduler=True)})
    session = IncrementalSession(program, db, opts)
    base = {p: set(db.rows(p)) for p in db.predicates()}
    pred, ins, rem = _maintenance_batches(program)
    for batch, apply in ((ins, set.update), (rem, set.difference_update)):
        stats = (
            session.insert(batch) if apply is set.update
            else session.retract(batch)
        )
        apply(base[pred], map(tuple, batch[pred]))
        assert stats.degradations.get("incremental->recompute") == 1
        for p, want in _scratch_facts(program, base).items():
            assert session.facts(p) == want, f"{workload_name}: {p} diverged"


@pytest.mark.parametrize("workload_name", WORKLOADS)
def test_faulted_governed_maintenance_keeps_the_triad(workload_name):
    """Faults plus a tight per-batch budget: every batch outcome lands
    in the triad — exact, flagged sound partial, or structured error —
    never a silent divergence."""
    program, db = workload(workload_name)
    pred, ins, rem = _maintenance_batches(program)
    for plan_name in ("worker-death-0", "scheduler", "stacked"):
        opts = engine_options(
            {
                "fault_plan": FAULT_PLANS[plan_name],
                "max_facts": 6,
                "on_limit": "partial",
            }
        )
        session = IncrementalSession(program, db, opts)
        base = {p: set(db.rows(p)) for p in db.predicates()}
        for batch, kind in ((ins, "insert"), (rem, "retract")):
            stats = getattr(session, kind)(batch)
            if kind == "insert":
                base[pred].update(map(tuple, batch[pred]))
            else:
                base[pred].difference_update(map(tuple, batch[pred]))
            want = _scratch_facts(program, base)
            if stats.aborted_reason is None and not session.is_partial:
                for p in want:
                    assert session.facts(p) == want[p], (
                        f"{workload_name}/{plan_name}: unflagged {p} diverged"
                    )
            else:
                # flagged: sound lower bound, never a superset
                for p in want:
                    assert session.facts(p) <= want[p], (
                        f"{workload_name}/{plan_name}: partial {p} overshoots"
                    )
        # recovery: refresh under generous options restores exactness
        session.options = engine_options({})
        session.refresh()
        want = _scratch_facts(program, base)
        for p in want:
            assert session.facts(p) == want[p], (
                f"{workload_name}/{plan_name}: refresh did not restore {p}"
            )


def test_bad_fault_spec_is_structured():
    from repro.engine import parse_fault_specs

    with pytest.raises(EvaluationError):
        parse_fault_specs(["no-such-fault"])
