"""Differential oracle for the cost-based planner: cost vs greedy.

Join order is a pure work optimization — under set semantics the
semi-naive fixpoint derives exactly the same facts whatever order each
body is probed in.  This suite pins that invariant *harder* than the
strategy-agreement oracle: not just equal answer sets, but bit-identical
**fact sets per predicate** and equal ``fact_counts``, across curated
families and 200 fixed random programs, with the adaptive replanner
both at its default cadence and forced to re-plan every round.

(Round counts are deliberately *not* compared: facts derived during a
round are immediately visible to later index probes of the same round,
so how far one naive round reaches legitimately depends on probe
order — the fixpoint, not the rounds, is the planner's contract.)

Like every oracle module it honours ``REPRO_ORACLE_BASE``, so CI's
flag matrix sweeps the planner differential across the kernel /
index / columnar / scheduler axes too.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import evaluate
from repro.workloads.edb import random_edb
from repro.workloads.families import all_families

from ..property.strategies import random_programs
from .harness import engine_options

FAMILIES = all_families()

#: planner lanes checked pairwise against the greedy baseline
LANES = {
    "greedy": {"use_cost_planner": False},
    "cost": {"use_cost_planner": True},
    "cost-eager-replan": {"use_cost_planner": True, "replan_rounds": 1},
    "cost-no-replan": {"use_cost_planner": True, "replan_rounds": 0},
}


def _lane_results(program, db):
    out = {}
    for lane, overrides in LANES.items():
        result = evaluate(program, db, engine_options(overrides))
        facts = {
            p: result.facts(p) for p in sorted(result.stats.fact_counts)
        }
        out[lane] = (
            result.answers(),
            facts,
            dict(result.stats.fact_counts),
        )
    return out


def _assert_lanes_identical(program, db, context):
    lanes = _lane_results(program, db)
    baseline = lanes["greedy"]
    for lane, got in lanes.items():
        for what, a, b in zip(
            ("answers", "facts", "fact_counts"), baseline, got
        ):
            assert a == b, (
                f"{context}: lane {lane!r} diverged from greedy "
                f"on {what}"
            )


@pytest.mark.parametrize("name", sorted(FAMILIES))
@pytest.mark.parametrize("seed", [0, 1])
def test_planner_lanes_on_curated_families(name, seed):
    program = FAMILIES[name]
    db = random_edb(program, rows=14, domain=7, seed=seed)
    _assert_lanes_identical(program, db, f"{name}/seed={seed}")


@given(random_programs(), st.integers(min_value=0, max_value=3))
@settings(
    max_examples=200,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_planner_lanes_on_random_programs(program, seed):
    """200 fixed random programs: the DP's orders and the replanner's
    mid-fixpoint swaps never change what is derived, only the work."""
    program.validate()
    db = random_edb(program, rows=10, domain=5, seed=seed)
    _assert_lanes_identical(program, db, f"random/seed={seed}")
