"""Differential oracle suite: all evaluators agree, pre and post
optimizer, on curated families and on random programs.

The random half runs with a fixed Hypothesis profile
(``derandomize=True``) so CI and ``make check`` execute the same 200+
cases every time — the oracle is a regression gate, not a fuzzer; the
open-ended exploration lives in tests/property.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.workloads.edb import random_edb
from repro.workloads.families import all_families
from repro.workloads.paper_examples import example1_program

from ..property.strategies import random_programs
from .harness import STRATEGIES, assert_all_agree, strategy_answers

FAMILIES = all_families()


@pytest.mark.parametrize("name", sorted(FAMILIES))
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_oracle_on_curated_families(name, seed):
    program = FAMILIES[name]
    db = random_edb(program, rows=14, domain=7, seed=seed)
    assert_all_agree(program, db)


def test_oracle_on_example1():
    program = example1_program()
    db = random_edb(program, rows=20, domain=8, seed=0)
    assert_all_agree(program, db)


def test_strategy_catalog_is_exercised():
    """The oracle really runs every advertised strategy (plus topdown
    on negation-free programs) — guard against a silently skipped
    engine making the agreement vacuous."""
    program = FAMILIES["right_linear_tc"]
    db = random_edb(program, rows=10, domain=5, seed=0)
    answers = strategy_answers(program, db)
    assert set(answers) == set(STRATEGIES) | {"topdown"}
    negated = FAMILIES["win_move_stratified"]
    db2 = random_edb(negated, rows=10, domain=5, seed=0)
    assert set(strategy_answers(negated, db2)) == set(STRATEGIES)


@given(random_programs(), st.integers(min_value=0, max_value=3))
@settings(
    max_examples=200,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_oracle_on_random_programs(program, seed):
    """>= 200 fixed random programs through every evaluator x pre/post
    optimizer.  Any unsound index, delta plan, join order, existential
    cut, or pipeline pass breaks the agreement."""
    program.validate()
    db = random_edb(program, rows=10, domain=5, seed=seed)
    assert_all_agree(program, db)
