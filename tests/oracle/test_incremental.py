"""Differential IVM oracle: incremental maintenance vs from-scratch.

An :class:`~repro.engine.incremental.IncrementalSession` claims that
after any sequence of insert/retract batches its database equals what a
from-scratch evaluation over the updated EDB would produce — answers,
per-predicate fact sets and counts, and (when recorded) a valid
provenance justification for every derived fact.  This suite drives
random update scripts against curated families and 200 fixed random
programs and checks that claim after **every** batch, under the
suite-wide ``REPRO_ORACLE_BASE`` overlays (CI sweeps kernel/interp x
index/scan x scc/monolithic x parallel through the same tests) and,
in-process, across every named strategy overlay.

Provenance is checked for *validity*, not identity: the engine records
the first justification found, which legitimately depends on the order
facts were (re)derived — but every recorded witness must be a real
derivation step over present facts, and every non-given derived fact
must have one.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datalog import Database
from repro.engine import IncrementalSession, evaluate
from repro.workloads.edb import random_edb
from repro.workloads.families import all_families

from ..property.strategies import random_programs
from .harness import STRATEGIES, engine_options

FAMILIES = all_families()


def _script(program, rng, domain, steps):
    """A deterministic random update script: per step, one insert or
    retract batch of 1-3 rows on one base predicate (retractions biased
    toward rows that exist, so deletion paths actually run)."""
    arities = program.arities()
    preds = sorted(program.edb_predicates()) or sorted(arities)
    for _ in range(steps):
        kind = rng.choice(("insert", "retract"))
        pred = rng.choice(preds)
        arity = arities[pred]
        batch = {
            tuple(rng.randrange(domain) for _ in range(arity))
            for _ in range(rng.randint(1, 3))
        }
        yield kind, pred, batch


def _check_state(session, program, cur, opts, context):
    """The oracle's core assertion: session state == from-scratch."""
    arities = program.arities()
    ref = Database()
    for pred, rows in cur.items():
        arity = arities.get(pred)
        if arity is None:
            if not rows:
                continue
            arity = len(next(iter(rows)))
        ref.ensure(pred, arity).update(rows)
    scratch = evaluate(program, ref, opts)
    for pred in sorted(set(program.arities()) | set(cur)):
        got = session.facts(pred)
        want = scratch.db.rows(pred)
        assert got == want, (
            f"{context}: predicate {pred!r} diverged: "
            f"only-incremental={sorted(got - want)[:5]} "
            f"only-scratch={sorted(want - got)[:5]}"
        )
    assert session.answers() == scratch.answers(), f"{context}: answers diverged"
    # fact counts reported by the last batch match the real fixpoint
    for pred in program.idb_predicates():
        assert session.last_stats.fact_counts.get(pred, 0) == len(
            scratch.db.rows(pred)
        ), f"{context}: fact_counts[{pred!r}] stale"


def _check_provenance(session, program):
    """Every recorded justification is a valid derivation step over
    present facts, and every non-given derived fact has one."""
    rules = program.rules
    given = {
        pred: session._protected(pred) for pred in program.idb_predicates()
    }
    for (pred, row), just in session.provenance.items():
        assert row in session.facts(pred), f"stale provenance for {pred}{row}"
        assert 0 <= just.rule_index < len(rules)
        assert rules[just.rule_index].head.predicate == pred
        for body_pred, body_row in just.body:
            assert body_row in session.facts(body_pred), (
                f"justification of {pred}{row} cites absent "
                f"{body_pred}{body_row}"
            )
    for pred in program.idb_predicates():
        for row in session.facts(pred) - given[pred]:
            assert (pred, row) in session.provenance, (
                f"derived fact {pred}{row} has no justification"
            )


def _run_script(program, overrides, *, seed, rows=10, domain=5, steps=6,
                record_provenance=False):
    opts = engine_options(
        {**overrides, "record_provenance": record_provenance}
    )
    edb = random_edb(program, rows=rows, domain=domain, seed=seed)
    session = IncrementalSession(program, edb, opts)
    cur = {p: set(edb.rows(p)) for p in edb.predicates()}
    rng = random.Random(seed * 6029 + 17)
    for step, (kind, pred, batch) in enumerate(
        _script(program, rng, domain, steps)
    ):
        if kind == "retract" and cur.get(pred) and rng.random() < 0.7:
            batch = set(batch) | set(
                rng.sample(sorted(cur[pred]), min(2, len(cur[pred])))
            )
        if kind == "insert":
            session.insert({pred: batch})
            cur.setdefault(pred, set()).update(batch)
        else:
            session.retract({pred: batch})
            cur.get(pred, set()).difference_update(batch)
        context = f"step {step} ({kind} {pred} x{len(batch)})"
        _check_state(session, program, cur, opts, context)
        if record_provenance:
            _check_provenance(session, program)
    return session


@pytest.mark.parametrize("name", sorted(FAMILIES))
@pytest.mark.parametrize("seed", [0, 1])
def test_ivm_on_curated_families(name, seed):
    _run_script(FAMILIES[name], {}, seed=seed)


@pytest.mark.parametrize("label", sorted(STRATEGIES))
@pytest.mark.parametrize(
    "name", ["right_linear_tc", "win_move_stratified", "sibling_components"]
)
def test_ivm_strategy_matrix(label, name):
    """Maintenance agrees with from-scratch under every engine overlay
    (the CI REPRO_ORACLE_BASE sweep layers more underneath)."""
    _run_script(FAMILIES[name], STRATEGIES[label], seed=0)


@pytest.mark.parametrize("name", ["right_linear_tc", "bill_of_materials"])
def test_ivm_provenance_stays_valid(name):
    _run_script(FAMILIES[name], {}, seed=2, record_provenance=True)


@pytest.mark.parametrize("parallel", [2, 4])
def test_ivm_under_parallel_scheduler(parallel):
    _run_script(FAMILIES["sibling_components"], {"parallel": parallel}, seed=1)


@given(random_programs(), st.integers(min_value=0, max_value=3))
@settings(
    max_examples=200,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_ivm_on_random_programs(program, seed):
    """>= 200 fixed random programs x random update scripts, checked
    against a from-scratch evaluation after every batch.  Any unsound
    delta seeding, overdeletion, rederivation, negation cone, or
    shared-relation aliasing diverges here."""
    program.validate()
    _run_script(program, {}, seed=seed, steps=4)
