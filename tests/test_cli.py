"""Tests for the command-line interface."""

import pytest

from repro.cli import main

PROGRAM = """
    query(X) :- reach(X, Y).
    reach(X, Y) :- edge(X, Z), reach(Z, Y).
    reach(X, Y) :- edge(X, Y).
    ?- query(X).
"""

FACTS = """
    edge(1, 2).
    edge(2, 3).
    edge(7, 8).
"""

CHAIN = """
    a(X, Y) :- e(X, Z), a(Z, Y).
    a(X, Y) :- e(X, Y).
    ?- a(X, Y).
"""


@pytest.fixture
def files(tmp_path):
    program = tmp_path / "program.dl"
    program.write_text(PROGRAM)
    facts = tmp_path / "facts.dl"
    facts.write_text(FACTS)
    chain = tmp_path / "chain.dl"
    chain.write_text(CHAIN)
    return program, facts, chain


class TestOptimize:
    def test_describe_output(self, files, capsys):
        program, _, _ = files
        assert main(["optimize", str(program)]) == 0
        out = capsys.readouterr().out
        assert "adorned" in out and "final" in out

    def test_quiet_final_only(self, files, capsys):
        program, _, _ = files
        assert main(["optimize", str(program), "-q"]) == 0
        out = capsys.readouterr().out
        assert "query@n(X) :- edge(X, Y)." in out
        assert "adorned" not in out

    def test_no_deletion_flag(self, files, capsys):
        program, _, _ = files
        assert main(["optimize", str(program), "-q", "--no-deletion"]) == 0
        out = capsys.readouterr().out
        assert "query@n" in out

    def test_missing_file(self, capsys):
        assert main(["optimize", "/nonexistent.dl"]) == 2
        assert "error" in capsys.readouterr().err


class TestRun:
    def test_plain_run(self, files, capsys):
        program, facts, _ = files
        assert main(["run", str(program), str(facts)]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert sorted(out) == ["1", "2", "7"]

    def test_optimized_run_same_answers(self, files, capsys):
        program, facts, _ = files
        main(["run", str(program), str(facts)])
        plain = capsys.readouterr().out
        main(["run", str(program), str(facts), "-O"])
        optimized = capsys.readouterr().out
        assert sorted(plain.splitlines()) == sorted(optimized.splitlines())

    def test_stats_to_stderr(self, files, capsys):
        program, facts, _ = files
        assert main(["run", str(program), str(facts), "--stats"]) == 0
        captured = capsys.readouterr()
        assert "iters=" in captured.err

    def test_facts_file_with_rules_rejected(self, files, capsys):
        program, _, _ = files
        assert main(["run", str(program), str(program)]) == 2
        assert "ground facts" in capsys.readouterr().err

    def test_program_file_with_facts_rejected(self, files, tmp_path, capsys):
        _, facts, _ = files
        mixed = tmp_path / "mixed.dl"
        mixed.write_text(PROGRAM + FACTS)
        assert main(["run", str(mixed), str(facts)]) == 2
        assert "facts" in capsys.readouterr().err


class TestGovernedRun:
    """The resource-governor flags: exit code 3 on a tripped limit
    under ``--on-limit raise``, flagged lower-bound output under
    ``--on-limit partial``, fault injection, and spec validation."""

    def test_zero_deadline_exits_3(self, files, capsys):
        program, facts, _ = files
        assert main(["run", str(program), str(facts), "--deadline", "0"]) == 3
        err = capsys.readouterr().err
        assert "ResourceExhausted" in err and "deadline" in err
        assert "partial work before abort" in err

    def test_max_facts_exits_3(self, files, capsys):
        program, facts, _ = files
        assert main(["run", str(program), str(facts), "--max-facts", "1"]) == 3
        err = capsys.readouterr().err
        assert "max_facts" in err

    def test_partial_is_flagged_lower_bound(self, files, capsys):
        program, facts, _ = files
        rc = main(
            ["run", str(program), str(facts),
             "--max-facts", "1", "--on-limit", "partial"]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "PARTIAL RESULT" in captured.err
        assert "lower bound" in captured.err
        # every printed answer must be a true answer of the full run
        capsys.readouterr()
        main(["run", str(program), str(facts)])
        full = set(capsys.readouterr().out.splitlines())
        assert set(captured.out.splitlines()) <= full

    def test_generous_limits_change_nothing(self, files, capsys):
        program, facts, _ = files
        rc = main(
            ["run", str(program), str(facts),
             "--deadline", "3600", "--max-facts", "1000000",
             "--max-delta-rows", "1000000"]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert sorted(captured.out.strip().splitlines()) == ["1", "2", "7"]
        assert "PARTIAL" not in captured.err

    def test_injected_fault_degrades_not_wrong(self, files, capsys):
        program, facts, _ = files
        rc = main(
            ["run", str(program), str(facts), "--stats",
             "--inject-fault", "kernel-compile", "--inject-fault", "index-build"]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert sorted(captured.out.strip().splitlines()) == ["1", "2", "7"]
        assert "degraded" in captured.err

    def test_bad_fault_spec_exits_2(self, files, capsys):
        program, facts, _ = files
        rc = main(
            ["run", str(program), str(facts), "--inject-fault", "no-such"]
        )
        assert rc == 2
        assert "fault" in capsys.readouterr().err


class TestGrammar:
    def test_chain_program_report(self, files, capsys):
        _, _, chain = files
        assert main(["grammar", str(chain)]) == 0
        out = capsys.readouterr().out
        assert "a -> e a" in out
        assert "self-embedding: False" in out
        assert "monadic" in out

    def test_words_listing(self, files, capsys):
        _, _, chain = files
        assert main(["grammar", str(chain), "--words", "3"]) == 0
        out = capsys.readouterr().out
        assert "  e e e" in out

    def test_non_chain_program_errors(self, files, capsys):
        program, _, _ = files
        assert main(["grammar", str(program)]) == 2
        assert "chain" in capsys.readouterr().err


class TestExplain:
    def test_derivation_tree(self, files, capsys):
        program, facts, _ = files
        assert main(["explain", str(program), str(facts), "reach", "1,3"]) == 0
        out = capsys.readouterr().out
        assert "reach(1, 3)" in out and "[rule" in out
        assert "edge" in out

    def test_underived_fact(self, files, capsys):
        program, facts, _ = files
        assert main(["explain", str(program), str(facts), "reach", "3,1"]) == 1
        assert "not derived" in capsys.readouterr().err


class TestJsonReport:
    def test_json_output(self, files, capsys):
        import json

        program, _, _ = files
        assert main(["optimize", str(program), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["final_rules"] == ["query@n(X) :- edge(X, Y)."]
        assert report["query"] == "query(X)"
        assert report["unfolded_predicates"] == ["reach@nd"]
        assert any(
            "subsumed" in d["reason"] or "sagiv" in d["reason"]
            for d in report["deleted_rules"]
        )

    def test_report_dict_shape(self):
        from repro.core import optimize
        from repro.workloads.paper_examples import example2_program

        report = optimize(example2_program()).report_dict()
        assert report["boolean_predicates"]
        assert isinstance(report["adorned_rules"], list)


class TestSubsumptionLogging:
    def test_describe_mentions_subsumption(self):
        from repro.core import optimize
        from repro.datalog import parse

        program = parse(
            """
            p(X) :- e(X, Y).
            p(X) :- e(X, Y), g(Y).
            ?- p(X).
            """
        )
        result = optimize(program)
        assert result.subsumed
        assert "theta-subsumption" in result.describe()


DIRTY = """
    p(X, Y) :- e(X).
    p(X) :- e(X).
    dead(X) :- e(X).
    ?- p(X).
"""

WARN_ONLY = """
    p(X) :- e(X).
    p(Y) :- e(Y).
    ?- p(X).
"""


class TestLint:
    @pytest.fixture
    def lint_files(self, tmp_path):
        clean = tmp_path / "clean.dl"
        clean.write_text(PROGRAM)
        dirty = tmp_path / "dirty.dl"
        dirty.write_text(DIRTY)
        warn = tmp_path / "warn.dl"
        warn.write_text(WARN_ONLY)
        facts = tmp_path / "facts.dl"
        facts.write_text(FACTS)
        return clean, dirty, warn, facts

    def test_clean_program_exits_zero(self, lint_files, capsys):
        clean, _, _, _ = lint_files
        assert main(["lint", str(clean)]) == 0
        out = capsys.readouterr().out
        # the reach query drops a column, so the optimizer opportunity
        # is reported as an info — infos never affect the exit code
        assert "info[DL010] existential-position" in out
        assert out.strip().splitlines()[-1] == "0 error(s), 0 warning(s), 1 info(s)"

    def test_infos_do_not_fail_strict(self, lint_files, capsys):
        clean, _, _, _ = lint_files
        assert main(["lint", str(clean), "--strict"]) == 0

    def test_errors_exit_two_with_rendered_diagnostics(self, lint_files, capsys):
        _, dirty, _, _ = lint_files
        assert main(["lint", str(dirty)]) == 2
        out = capsys.readouterr().out
        assert "error[DL001] unsafe-rule" in out
        assert "error[DL002] arity-mismatch" in out
        assert str(dirty) + ":" in out  # diagnostics carry the file name

    def test_warnings_pass_by_default_fail_strict(self, lint_files, capsys):
        _, _, warn, _ = lint_files
        assert main(["lint", str(warn)]) == 0
        capsys.readouterr()
        assert main(["lint", str(warn), "--strict"]) == 2
        out = capsys.readouterr().out
        assert "warning[DL008] duplicate-rule" in out

    def test_json_format(self, lint_files, capsys):
        import json

        _, dirty, _, _ = lint_files
        assert main(["lint", str(dirty), "--format", "json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        codes = {d["code"] for d in payload["diagnostics"]}
        assert "DL001" in codes and "DL002" in codes
        assert payload["counts"]["error"] >= 2
        assert payload["source"] == str(dirty)

    def test_facts_file_defines_edb(self, tmp_path, capsys):
        program = tmp_path / "p.dl"
        program.write_text("p(X) :- ghost(X).\n?- p(X).")
        facts = tmp_path / "f.dl"
        facts.write_text("e(1).")
        # without facts the EDB is unknown: ghost is assumed stored
        assert main(["lint", str(program)]) == 0
        capsys.readouterr()
        # with facts the EDB is known and ghost is flagged
        assert main(["lint", str(program), str(facts), "--strict"]) == 2
        out = capsys.readouterr().out
        assert "warning[DL006] undefined-body-predicate" in out
        assert "ghost" in out

    def test_missing_file(self, capsys):
        assert main(["lint", "/nonexistent.dl"]) == 2
        assert "error" in capsys.readouterr().err

    def test_facts_lint_as_info_not_parse_error(self, tmp_path, capsys):
        program = tmp_path / "p.dl"
        program.write_text("e(1, 2).\np(X) :- e(X, Y).\n?- p(X).")
        assert main(["lint", str(program)]) == 0
        assert "info[DL015] fact-in-program" in capsys.readouterr().out


class TestValidateFlag:
    def test_optimize_validate_clean(self, files, capsys):
        program, _, _ = files
        assert main(["optimize", str(program), "--validate", "-q"]) == 0

    def test_run_validate_clean(self, files, capsys):
        program, facts, _ = files
        assert main(["run", str(program), str(facts), "-O", "--validate"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert sorted(out) == ["1", "2", "7"]


class TestDiagnosticWarnings:
    def test_run_warns_on_undefined_body_predicate(self, tmp_path, capsys):
        program = tmp_path / "p.dl"
        program.write_text("p(X) :- e(X), ghost(X).\n?- p(X).")
        facts = tmp_path / "f.dl"
        facts.write_text("e(1).")
        assert main(["run", str(program), str(facts)]) == 0
        err = capsys.readouterr().err
        assert "DL006" in err and "ghost" in err

    def test_run_quiet_on_fully_defined_program(self, files, capsys):
        program, facts, _ = files
        assert main(["run", str(program), str(facts)]) == 0
        assert "DL" not in capsys.readouterr().err


def _serve(argv, lines):
    """Run ``repro serve`` with scripted stdin (the ``input`` hook the
    parser defaults to None is how tests inject a line source)."""
    from repro.cli import build_parser

    parser = build_parser()
    args = parser.parse_args(["serve", *map(str, argv)])
    args.input = iter([line + "\n" for line in lines])
    return args.fn(args)


class TestServe:
    def test_basic_batches_and_query(self, files, capsys):
        program, facts, _ = files
        rc = _serve([program, facts], ["+edge(3, 9).", "?"])
        assert rc == 0
        out = capsys.readouterr().out.splitlines()
        assert out[0].startswith("ok ")
        assert sorted(out[1:]) == ["1", "2", "3", "7"]

    def test_malformed_line_is_structured_error(self, files, capsys):
        """Satellite: garbage must answer ``err ...`` on stdout, and the
        session must keep serving afterwards — never a crash."""
        program, facts, _ = files
        rc = _serve(
            [program, facts],
            ["+edge(1, ", "+edge((1,2)).", "!!!", "+edge(3, 9).", "?"],
        )
        assert rc == 0
        out = capsys.readouterr().out.splitlines()
        assert len([l for l in out if l.startswith("err ")]) == 3
        assert any(l.startswith("ok ") for l in out)
        assert "3" in out  # the good batch after the garbage landed

    def test_undefined_predicate_rejected(self, files, capsys):
        program, facts, _ = files
        rc = _serve([program, facts], ["+ghost(1).", "?"])
        assert rc == 0
        out = capsys.readouterr().out.splitlines()
        assert out[0].startswith("err ReproError: undefined predicate(s) ghost")
        assert sorted(out[1:]) == ["1", "2", "7"]

    def test_arity_mismatch_rejected(self, files, capsys):
        program, facts, _ = files
        rc = _serve([program, facts], ["+edge(1, 2, 3).", "?"])
        assert rc == 0
        out = capsys.readouterr().out.splitlines()
        assert out[0].startswith("err ")
        assert "arity" in out[0]

    def test_rule_in_batch_rejected(self, files, capsys):
        program, facts, _ = files
        rc = _serve([program, facts], ["+p(X) :- edge(X, Y)."])
        assert rc == 0
        out = capsys.readouterr().out
        assert "err ReproError: update batches must contain only ground" in out

    def test_unknown_command_rejected(self, files, capsys):
        program, facts, _ = files
        rc = _serve([program, facts], [".frobnicate"])
        assert rc == 0
        assert "err ReproError: unrecognized command" in capsys.readouterr().out

    def test_checkpoint_requires_wal(self, files, capsys):
        program, facts, _ = files
        rc = _serve([program, facts], [".checkpoint", ".recover"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "err ReproError: .checkpoint requires --wal" in out
        assert "err ReproError: .recover requires --wal" in out

    def test_durable_checkpoint_and_recover(self, files, tmp_path, capsys):
        program, facts, _ = files
        wal = tmp_path / "serve.wal"
        rc = _serve(
            [program, facts, "--wal", wal],
            ["+edge(3, 9).", ".checkpoint", ".recover", "?"],
        )
        assert rc == 0
        out = capsys.readouterr().out.splitlines()
        assert out[0].startswith("ok ")
        assert out[1] == "ok checkpoint seq=1"
        assert out[2].startswith("ok recovered source=replay replayed=")
        assert sorted(out[3:]) == ["1", "2", "3", "7"]

    def test_restart_recovers_state(self, files, tmp_path, capsys):
        """A second serve over the same --wal resumes exactly where the
        first exited — the facts file is ignored on recovery."""
        program, facts, _ = files
        wal = tmp_path / "serve.wal"
        assert _serve([program, facts, "--wal", wal], ["+edge(3, 9)."]) == 0
        capsys.readouterr()
        assert _serve([program, "--wal", wal], ["?"]) == 0
        captured = capsys.readouterr()
        assert sorted(captured.out.splitlines()) == ["1", "2", "3", "7"]
        assert "recovered source=" in captured.err

    def test_rejected_lines_never_reach_the_wal(self, files, tmp_path, capsys):
        """WAL consistency under garbage: rejected lines leave no log
        record, so recovery equals the live session exactly."""
        program, facts, _ = files
        wal = tmp_path / "serve.wal"
        rc = _serve(
            [program, facts, "--wal", wal],
            ["+ghost(1).", "+edge(1,", "+edge(3, 9).", "-edge(7, 8)."],
        )
        assert rc == 0
        capsys.readouterr()
        from repro.engine import read_wal

        records = read_wal(str(wal)).records
        assert [r["kind"] for r in records] == ["insert", "retract"]
        assert _serve([program, "--wal", wal], ["?"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert sorted(out) == ["1", "2", "3"]

    def test_main_entry_serves_durably(self, files, tmp_path, capsys):
        """End-to-end through main(): flags parse and thread through."""
        import repro.cli as cli

        program, facts, _ = files
        wal = tmp_path / "serve.wal"
        lines = iter(["+edge(3, 9).\n", ".checkpoint\n", "?\n"])
        real = cli.build_parser

        def patched():
            parser = real()
            original = parser.parse_args

            def parse_args(argv=None):
                args = original(argv)
                if getattr(args, "fn", None) is cli._cmd_serve:
                    args.input = lines
                return args

            parser.parse_args = parse_args
            return parser

        cli.build_parser = patched
        try:
            rc = main(
                [
                    "serve", str(program), str(facts),
                    "--wal", str(wal),
                    "--fsync", "always",
                    "--snapshot-every", "1",
                    "--on-flag-drift", "scratch",
                ]
            )
        finally:
            cli.build_parser = real
        assert rc == 0
        out = capsys.readouterr().out.splitlines()
        assert out[0].startswith("ok ")
        assert "ok checkpoint seq=1" in out


MISMATCH = """
    a(1).
    b('x').
    p(X) :- a(X), b(X).
    ?- p(X).
"""


class TestAnalyze:
    @pytest.fixture
    def analyze_files(self, tmp_path):
        program = tmp_path / "program.dl"
        program.write_text(PROGRAM)
        facts = tmp_path / "facts.dl"
        facts.write_text(FACTS)
        mismatch = tmp_path / "mismatch.dl"
        mismatch.write_text(MISMATCH)
        return program, facts, mismatch

    def test_text_report_with_domain_summary(self, analyze_files, capsys):
        program, facts, _ = analyze_files
        assert main(["analyze", str(program), str(facts)]) == 0
        out = capsys.readouterr().out
        assert "domains:" in out
        assert "measured" in out

    def test_json_covers_all_three_domains(self, analyze_files, capsys):
        import json

        program, facts, _ = analyze_files
        assert main(["analyze", str(program), str(facts), "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert set(data["domains"]) == {"sorts", "cardinality", "boundedness"}
        assert data["measured"] is True
        # the stored EDB relation carries a measured sketch...
        edge = data["domains"]["cardinality"]["edge"]
        assert edge["measured"] is True
        # ...the derived predicates carry sorts and boundedness verdicts
        assert "reach" in data["domains"]["sorts"]
        assert data["domains"]["boundedness"]["reach"]["derivable"] is True

    def test_json_without_facts_is_synthetic(self, analyze_files, capsys):
        import json

        program, _, _ = analyze_files
        assert main(["analyze", str(program), "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["measured"] is False
        assert data["domains"]["cardinality"]["edge"]["measured"] is False

    def test_sort_mismatch_warns_and_fails_strict(self, analyze_files, capsys):
        _, _, mismatch = analyze_files
        assert main(["analyze", str(mismatch)]) == 0
        out = capsys.readouterr().out
        assert "DL019" in out
        assert main(["analyze", str(mismatch), "--strict"]) == 2

    def test_profile_save_load_round_trip(self, analyze_files, tmp_path, capsys):
        import json

        program, facts, _ = analyze_files
        profiles = tmp_path / "profiles.json"
        assert main(
            ["analyze", str(program), str(facts),
             "--save-profiles", str(profiles)]
        ) == 0
        saved = json.loads(profiles.read_text())
        assert saved["version"] == 1
        assert saved["sketches"]["edge"]["measured"] is True
        capsys.readouterr()
        # re-analyze without the facts file: the loaded sketches keep
        # the cardinality domain measured
        assert main(
            ["analyze", str(program), "--format", "json",
             "--load-profiles", str(profiles)]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["domains"]["cardinality"]["edge"]["measured"] is True

    def test_missing_file(self, capsys):
        assert main(["analyze", "/nonexistent.dl"]) == 2
        assert "error" in capsys.readouterr().err
