"""End-to-end reproduction of every worked example of the paper.

One test class per example (or example group); each asserts (a) the
transformation the paper shows, syntactically, and (b) query
equivalence on random databases.  This file is the machine-checkable
version of the experiment index in DESIGN.md.
"""


from repro.datalog import parse
from repro.datalog.analysis import recursive_predicates
from repro.engine import EngineOptions, evaluate
from repro.core import (
    adorn,
    chase_deletable,
    delete_rules,
    lemma51_deletable,
    lemma53_deletable,
    optimize,
    push_projections,
    rule_deletable_uniform,
    split_components,
)
from repro.core.folding import fold_program
from repro.workloads import paper_examples as pe
from repro.workloads.edb import random_edb


def normalize(x):
    return sorted(
        line.strip() for line in str(x).strip().splitlines() if line.strip()
    )


def assert_adorned_equivalent(a1, a2, seeds=range(4), rows=20, domain=8, cuts=frozenset()):
    p1, p2 = a1.to_program(), a2.to_program()
    for seed in seeds:
        db = random_edb(p1, rows=rows, domain=domain, seed=seed)
        x1 = evaluate(p1, db).answers()
        x2 = evaluate(p2, db, EngineOptions(cut_predicates=cuts)).answers()
        assert x1 == x2, seed


class TestExample1:
    """Adorning the right-linear TC query (section 2)."""

    def test_adornment_verbatim(self):
        adorned = adorn(pe.example1_program())
        assert normalize(adorned) == normalize(pe.example1_adorned_text())

    def test_adorned_program_equivalent(self):
        program = pe.example1_program()
        adorned = adorn(program).to_program()
        for seed in range(4):
            db = random_edb(program, rows=25, domain=10, seed=seed)
            assert (
                evaluate(program, db).answers()
                == evaluate(adorned, db).answers()
            )


class TestExample2:
    """Connected components → boolean subqueries (section 3.1)."""

    def test_split_structure(self):
        split = split_components(adorn(pe.example2_program()))
        assert len(split.booleans) == 2
        # B2 covers {q3, q4}, B3 covers {q5}
        bodies = {
            frozenset(lit.atom.predicate for lit in r.body)
            for r in split.program.rules
            if r.head.atom.predicate in split.booleans
        }
        assert frozenset({"q3", "q4@n"}) in bodies
        assert frozenset({"q5"}) in bodies

    def test_full_pipeline_equivalent(self):
        result = optimize(pe.example2_program())
        for seed in range(4):
            db = random_edb(result.original, rows=15, domain=6, seed=seed)
            assert result.answers(db) == result.reference_answers(db)

    def test_cut_retires_boolean_rules(self):
        result = optimize(pe.example2_program())
        db = random_edb(result.original, rows=15, domain=6, seed=0)
        stats = result.evaluate(db).stats
        assert stats.rules_retired >= 1


class TestExample3:
    """Projection pushing: binary TC becomes unary (section 3.2)."""

    def test_projected_verbatim(self):
        projected = push_projections(adorn(pe.example1_program()))
        assert normalize(projected) == normalize(pe.example3_expected_text())

    def test_arity_reduced_2_to_1(self):
        projected = push_projections(adorn(pe.example1_program()))
        assert projected.to_program().arities()["a@nd"] == 1


class TestExample3aAnd4:
    """Sagiv's uniform-equivalence deletion of the recursive rule."""

    def test_recursive_rule_deletable(self):
        projected = push_projections(adorn(pe.example1_program())).to_program()
        assert rule_deletable_uniform(projected, 1)

    def test_example3a_blocking_variant(self):
        blocked = parse(
            """
            query(X) :- a(X).
            a(X) :- p(X, Z), a(Z).
            a(X) :- p1(X, Z).
            ?- query(X).
            """
        )
        assert not rule_deletable_uniform(blocked, 1)

    def test_pipeline_removes_recursion_entirely(self):
        result = optimize(pe.example1_program())
        assert recursive_predicates(result.program) == frozenset()


class TestExample5:
    """Left-linear TC: uniform equivalence deletes nothing."""

    def test_adornment_matches_paper(self):
        adorned = push_projections(adorn(pe.example5_program()))
        assert normalize(adorned) == normalize(pe.example5_adorned_text())

    def test_no_rule_sagiv_deletable(self):
        program = pe.adorned_from_text(pe.example5_adorned_text()).to_program()
        assert all(
            not rule_deletable_uniform(program, ri)
            for ri in range(len(program.rules))
        )


class TestExample6:
    """Uniform query equivalence reduces left-linear TC to one rule."""

    def test_chase_sequence_matches_paper(self):
        program = pe.adorned_from_text(pe.example5_adorned_text())
        report = delete_rules(program, use_sagiv=False)
        assert normalize(report.program) == normalize(pe.example6_optimized_text())
        # paper order: recursive a@nn rule, exit a@nn rule, then cascade
        reasons = [d.reason for d in report.deleted]
        assert sum("chase" in r for r in reasons) == 2
        assert sum("unproductive" in r for r in reasons) == 1

    def test_pipeline_end_to_end(self):
        result = optimize(pe.example5_program())
        assert normalize(result.final) == normalize(pe.example6_optimized_text())
        for seed in range(4):
            db = random_edb(result.original, rows=25, domain=10, seed=seed)
            assert result.answers(db) == result.reference_answers(db)


class TestExample7:
    """Summary deletions, cascade, and the documented incompleteness."""

    def test_rule5_lemma51_via_unit_rule(self):
        reason = lemma51_deletable(pe.example7_adorned(), 5)
        assert reason is not None and "p@nn" in reason

    def test_rule6_lemma51_via_trivial_unit(self):
        reason = lemma51_deletable(pe.example7_adorned(), 6)
        assert reason is not None and "p@nd" in reason

    def test_reduction_matches_paper(self):
        report = delete_rules(
            pe.example7_adorned(), method="lemma51", use_chase=False, use_sagiv=False
        )
        assert normalize(report.program) == normalize(pe.example7_reduced_text())

    def test_redundant_rule_not_caught_by_summaries(self):
        # "even though the second rule can be discarded, the above
        # procedure for deleting rules is incapable of doing this"
        reduced = pe.adorned_from_text(pe.example7_reduced_text())
        for ri in range(len(reduced.rules)):
            assert lemma53_deletable(reduced, ri) is None

    def test_equivalence(self):
        program = pe.example7_adorned()
        report = delete_rules(
            program, method="lemma51", use_chase=False, use_sagiv=False
        )
        assert_adorned_equivalent(program, report.program)


class TestExample8:
    """Deletion chain in the presence of non-query recursion."""

    def test_full_chain(self):
        report = delete_rules(
            pe.example8_adorned(), method="lemma51", use_chase=False, use_sagiv=False
        )
        reasons = [d.reason for d in report.deleted]
        assert any("lemma5.1" in r for r in reasons)
        assert any("unproductive" in r for r in reasons)
        assert any("unreachable" in r for r in reasons)
        assert len(report.program) == 2

    def test_emptiness_detected_at_compile_time(self):
        report = delete_rules(pe.example8_empty_adorned(), use_sagiv=False)
        assert len(report.program) == 0

    def test_equivalence(self):
        program = pe.example8_adorned()
        report = delete_rules(program, method="lemma51")
        assert_adorned_equivalent(program, report.program)


class TestExample9And11:
    """Summary incompleteness and the folding fix."""

    def test_summaries_blind_without_fold(self):
        program = pe.example9_adorned()
        assert all(
            lemma53_deletable(program, ri) is None
            for ri in range(len(program.rules))
        )

    def test_rule_really_is_deletable(self):
        # (via the chase, which implements the uniform-query-equivalence
        # reasoning of the paper's section 6 discussion)
        assert chase_deletable(pe.example9_adorned(), 3) is not None

    def test_fold_enables_lemma51(self):
        program = pe.example9_adorned()
        ri, bis, name = pe.example9_fold_spec()
        folded = fold_program(program, ri, bis, name)
        recursive_index = next(
            i
            for i, r in enumerate(folded.program.rules)
            if r.head.atom.predicate == "p@nn" and name in str(r)
        )
        assert lemma51_deletable(folded.program, recursive_index) is not None

    def test_fold_plus_delete_equivalent(self):
        program = pe.example9_adorned()
        ri, bis, name = pe.example9_fold_spec()
        folded = fold_program(program, ri, bis, name).program
        report = delete_rules(folded, method="lemma51", use_chase=False, use_sagiv=False)
        assert report.count >= 1
        assert_adorned_equivalent(program, report.program)


class TestExample10:
    """Lemma 5.3 succeeds where Lemma 5.1 fails."""

    def test_lemma51_fails_on_last_rule(self):
        assert lemma51_deletable(pe.example10_adorned(), 4) is None

    def test_lemma53_succeeds_on_last_rule(self):
        assert lemma53_deletable(pe.example10_adorned(), 4) is not None

    def test_driver_equivalence(self):
        program = pe.example10_adorned()
        report = delete_rules(program, method="lemma53", use_chase=False, use_sagiv=False)
        assert report.count >= 1
        assert_adorned_equivalent(program, report.program)


class TestExample12:
    """The section-6 transformation beyond projection pushing."""

    def test_transformed_equivalent(self):
        orig = pe.example12_original()
        trans = pe.example12_transformed()
        for seed in range(5):
            db = random_edb(orig, rows=25, domain=8, seed=seed)
            assert evaluate(orig, db).answers() == evaluate(trans, db).answers()

    def test_arity_reduced(self):
        assert pe.example12_original().arities()["p"] == 3
        assert pe.example12_transformed().arities()["pp"] == 2

    def test_projection_pushing_alone_cannot_reduce(self):
        # in the original, Z is needed inside the recursion (joins c),
        # so the recursive predicate keeps all three arguments; only a
        # non-recursive query wrapper gets the nnd form.
        projected = push_projections(adorn(pe.example12_original())).to_program()
        arities = projected.arities()
        recursive = recursive_predicates(projected)
        assert recursive == {"p@nnn"}
        assert arities["p@nnn"] == 3

    def test_transformed_is_faster_in_facts(self):
        orig = pe.example12_original()
        trans = pe.example12_transformed()
        db = random_edb(orig, rows=60, domain=10, seed=1)
        s1 = evaluate(orig, db).stats
        s2 = evaluate(trans, db).stats
        assert s2.facts_derived <= s1.facts_derived
