"""Work monotonicity of the indexed engine against the scan baseline.

The indexed semi-naive engine must never do more join work than the
pre-index seed engine (semi-naive over full scans, today reachable via
``use_indexes=False``): its ``rows_scanned + index_probes`` is bounded
by the scan engine's ``rows_scanned`` on every workload — an index
probe replaces at least one scanned row.

The expected counter values are frozen in
``tests/data/work_baseline.json`` so silent regressions (a planner
change that degrades an order, an index that stops being used) fail
loudly.  To regenerate after an *intentional* engine change, run::

    PYTHONPATH=src python tests/integration/test_work_monotonicity.py

which rewrites the JSON from the current engines (the workload
definitions below are the single source of truth).
"""

import json
from pathlib import Path

import pytest

from repro.engine import EngineOptions, evaluate
from repro.workloads.edb import random_edb
from repro.workloads.families import all_families

BASELINE_PATH = Path(__file__).parent.parent / "data" / "work_baseline.json"

CASES = [
    "right_linear_tc",
    "left_linear_tc",
    "nonlinear_tc",
    "same_generation",
    "payload2",
    "two_level_chain",
]
ROWS, DOMAIN, SEED = 20, 8, 3


def _run_case(name):
    program = all_families()[name]
    db = random_edb(program, rows=ROWS, domain=DOMAIN, seed=SEED)
    indexed = evaluate(program, db)
    scan = evaluate(program, db, EngineOptions(use_indexes=False))
    return indexed, scan


def _baseline() -> dict:
    with open(BASELINE_PATH) as f:
        return json.load(f)


@pytest.mark.parametrize("name", CASES)
def test_indexed_join_work_bounded_by_scan_rows(name):
    indexed, scan = _run_case(name)
    assert indexed.answers() == scan.answers()
    assert indexed.stats.join_work <= scan.stats.rows_scanned, (
        f"{name}: indexed engine did {indexed.stats.join_work} join work "
        f"vs {scan.stats.rows_scanned} rows for the scan baseline"
    )


@pytest.mark.parametrize("name", CASES)
def test_work_counters_match_frozen_baseline(name):
    """Exact pin: both engines reproduce the recorded counters.

    A failure here means engine work characteristics changed — fine if
    intentional (regenerate the baseline, see module docstring), a
    regression if not.
    """
    baseline = _baseline()[name]
    indexed, scan = _run_case(name)
    assert scan.stats.rows_scanned == baseline["scan_rows_scanned"], name
    assert indexed.stats.rows_scanned == baseline["indexed_rows_scanned"], name
    assert indexed.stats.index_probes == baseline["indexed_index_probes"], name
    assert indexed.stats.join_work == baseline["indexed_join_work"], name


def test_baseline_covers_all_cases():
    baseline = _baseline()
    assert set(CASES) <= set(baseline), sorted(set(CASES) - set(baseline))
    meta = baseline["_meta"]
    assert (meta["rows"], meta["domain"], meta["seed"]) == (ROWS, DOMAIN, SEED)


def _regenerate():  # pragma: no cover - manual tool
    out = {
        "_meta": {
            "rows": ROWS,
            "domain": DOMAIN,
            "seed": SEED,
            "note": "scan = seminaive with use_indexes=False (the pre-index "
            "seed engine); regenerate per the instructions in "
            "tests/integration/test_work_monotonicity.py",
        }
    }
    for name in CASES:
        indexed, scan = _run_case(name)
        out[name] = {
            "scan_rows_scanned": scan.stats.rows_scanned,
            "indexed_rows_scanned": indexed.stats.rows_scanned,
            "indexed_index_probes": indexed.stats.index_probes,
            "indexed_join_work": indexed.stats.join_work,
        }
        print(name, out[name])
    with open(BASELINE_PATH, "w") as f:
        json.dump(out, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {BASELINE_PATH}")


if __name__ == "__main__":  # pragma: no cover
    _regenerate()
